"""E6 — the paper's headline claim.

"If a memory with 32-bit words is tested with March C−, time complexity
of the transparent word-oriented test transformed by the proposed
scheme is only about 56% or 19% of the transparent word-oriented test
converted by the scheme reported in [12] or [13], respectively."
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.core.complexity import headline_ratios
from repro.library import catalog


def generate():
    return headline_ratios(catalog.get("March C-"), 32)


def test_headline_ratios(benchmark):
    h = benchmark(generate)

    table = render_table(
        ["Scheme", "TCM", "TCP", "Total", "This work / scheme"],
        [
            ("This work", f"{h.this_work.tcm}n", f"{h.this_work.tcp}n",
             f"{h.this_work.total}n", "—"),
            ("Scheme 1 [12] measured", f"{h.scheme1.tcm}n", f"{h.scheme1.tcp}n",
             f"{h.scheme1.total}n", f"{h.vs_scheme1:.1%}"),
            ("Scheme 1 [12] formula", f"{h.scheme1_formula.tcm}n",
             f"{h.scheme1_formula.tcp}n", f"{h.scheme1_formula.total}n",
             f"{h.vs_scheme1_formula:.1%}"),
            ("Scheme 2 [13] (TOMT)", f"{h.tomt.tcm}n", "0",
             f"{h.tomt.total}n", f"{h.vs_tomt:.1%}"),
        ],
        title="Headline — March C-, 32-bit words (paper: ~56% and ~19%)",
    )
    save_artifact("headline_ratios", table)

    # Exact totals of the proposed scheme.
    assert h.this_work.tcm == 35
    assert h.this_work.tcp == 21
    assert h.this_work.total == 56

    # Paper: "about 56%" vs Scheme 1.  Measured executable construction
    # gives ~55%, the paper-consistent closed form ~59%.
    assert 0.50 <= h.vs_scheme1 <= 0.62
    assert 0.50 <= h.vs_scheme1_formula <= 0.62

    # Paper: "about 19%" vs TOMT.
    assert 0.17 <= h.vs_tomt <= 0.21
