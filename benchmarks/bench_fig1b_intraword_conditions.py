"""E5 — Figure 1(b): intra-word two-bit write/read conditions.

Figure 1(b) shows the joint states of two bits inside one word; the
Section 5 argument is that SMarch covers the two solid conditions
(both bits at d and both at ~d) and ATMarch's checkerboards add mixed
conditions.  We enumerate, for every ordered bit pair, which of the
four write-then-read patterns each test covers, and quantify the
orientation property discussed in EXPERIMENTS.md: the ``log2 b``
checkerboards pick exactly one mixed orientation per pair (3 of 4
conditions), while Scheme 1 — writing both polarities of every
background — covers all 4 at 2–5x the cost.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.analysis.states import intra_word_conditions
from repro.baselines.scheme1 import scheme1_transform
from repro.core.twm import (
    nontransparent_word_reference,
    solid_background_test,
    twm_transform,
)
from repro.library import catalog

WIDTH = 8


def generate():
    test = catalog.get("March C-")
    smarch, _ = solid_background_test(test)
    return {
        "SMarch only": intra_word_conditions(smarch, WIDTH),
        "SMarch+AMarch (ref)": intra_word_conditions(
            nontransparent_word_reference(test, WIDTH), WIDTH
        ),
        "TWMarch (this work)": intra_word_conditions(
            twm_transform(test, WIDTH).twmarch, WIDTH, initial=0
        ),
        "Scheme 1 [12]": intra_word_conditions(
            scheme1_transform(test, WIDTH).transparent, WIDTH, initial=0
        ),
    }


def test_fig1b_intraword_conditions(benchmark):
    conditions = benchmark(generate)

    n_pairs = WIDTH * (WIDTH - 1)
    rows = []
    for name, cond in conditions.items():
        histogram = {k: 0 for k in (2, 3, 4)}
        for pats in cond.covered.values():
            histogram[len(pats)] += 1
        rows.append(
            (
                name,
                n_pairs,
                histogram[2],
                histogram[3],
                histogram[4],
                "yes" if cond.all_pairs_full else "no",
            )
        )
    table = render_table(
        [
            "Test",
            "Ordered bit pairs",
            "2/4 conditions",
            "3/4 conditions",
            "4/4 conditions",
            "all pairs full",
        ],
        rows,
        title="Figure 1(b) — intra-word write/read condition coverage (b=8)",
    )
    save_artifact("fig1b_intraword_conditions", table)

    # SMarch alone: only the two solid conditions per pair.
    assert all(
        pats == {(0, 0), (1, 1)}
        for pats in conditions["SMarch only"].covered.values()
    )

    # ATMarch adds exactly one mixed orientation per pair.
    ref = conditions["SMarch+AMarch (ref)"]
    assert ref.pairs_with(3) == n_pairs
    assert not ref.all_pairs_full

    # The transparent TWMarch covers exactly the same conditions as its
    # non-transparent reference — the Section 5 equality at the
    # condition level.
    assert (
        conditions["TWMarch (this work)"].covered
        == ref.covered
    )

    # Scheme 1's both-polarity backgrounds reach all four conditions.
    assert conditions["Scheme 1 [12]"].all_pairs_full
