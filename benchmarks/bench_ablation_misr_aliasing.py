"""A1 — ablation: MISR width vs aliasing of the two-phase controller.

The transparent schemes compared in the paper (except TOMT) rely on
signature compaction, which the paper notes "[has] the problem of
aliasing".  This ablation quantifies it: we sweep the MISR width and
count, over an exhaustive SAF+TF universe, how many faulty read streams
collapse onto the fault-free signature.  Expected shape: aliasing
decays roughly as 2^-width and disappears for practical widths.
"""

import itertools

from conftest import save_artifact

from repro.analysis.coverage import aliasing_flow
from repro.analysis.reports import render_table
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.injection import enumerate_stuck_at, enumerate_transition

N_WORDS, WIDTH = 8, 4
MISR_WIDTHS = (1, 2, 3, 4, 8, 16)


def generate():
    twm = twm_transform(catalog.get("March C-"), WIDTH)
    faults = list(
        itertools.chain(
            enumerate_stuck_at(N_WORDS, WIDTH),
            enumerate_transition(N_WORDS, WIDTH),
        )
    )
    results = []
    for misr_width in MISR_WIDTHS:
        flow = aliasing_flow(
            twm.twmarch,
            twm.prediction,
            N_WORDS,
            WIDTH,
            misr_width=misr_width,
            initial=None,
            seed=5,
        )
        stream_hits = signature_hits = aliased = 0
        for fault in faults:
            stream, signature = flow(fault)
            stream_hits += stream
            signature_hits += signature
            aliased += stream and not signature
        results.append(
            (misr_width, len(faults), stream_hits, signature_hits, aliased)
        )
    return results


def test_ablation_misr_aliasing(benchmark):
    results = benchmark.pedantic(generate, rounds=1, iterations=1)

    rows = [
        (
            w,
            total,
            stream,
            signature,
            aliased,
            f"{aliased / total:.2%}",
        )
        for w, total, stream, signature, aliased in results
    ]
    table = render_table(
        [
            "MISR width",
            "Faults",
            "Stream-detected",
            "Signature-detected",
            "Aliased",
            "Alias rate",
        ],
        rows,
        title=(
            "Ablation A1 — MISR width vs aliasing "
            f"(March C- TWMarch, {N_WORDS}x{WIDTH}, SAF+TF universe)"
        ),
    )
    save_artifact("ablation_misr_aliasing", table)

    by_width = {w: row for w, *row in results}
    # Every fault in this universe perturbs the read stream.
    for _, stream, _, _ in by_width.values():
        assert stream == 2 * N_WORDS * WIDTH * 2

    # A 1-bit register aliases; a 16-bit register must not (here).
    assert by_width[1][3] > 0
    assert by_width[16][3] == 0

    # Aliasing is (weakly) monotonically repaired by width on this sweep.
    alias_counts = [by_width[w][3] for w in MISR_WIDTHS]
    assert alias_counts[0] >= alias_counts[-1]
    assert all(a >= alias_counts[-1] for a in alias_counts)
