"""Bench-regression gate: fail CI when the engine speedup collapses.

``BENCH_engine.json`` (repo root) is the tracked perf trajectory of the
engine subsystem.  This gate compares a freshly produced copy against
the committed baseline and fails when any batch-vs-reference speedup
ratio of the base workload drops below ``--threshold`` (default 0.7)
times its baseline value — i.e. the batch engine lost more than 30% of
its relative advantage.  Ratios are compared, not absolute seconds, so
the gate is robust to slow or noisy CI hosts: both engines run on the
same machine in the same job.

Usage::

    cp BENCH_engine.json /tmp/baseline.json
    python benchmarks/bench_engine_speedup.py --jobs 2
    python benchmarks/check_bench_regression.py \
        --baseline /tmp/baseline.json --fresh BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_THRESHOLD = 0.7


def speedup_ratios(payload: dict) -> dict[str, float]:
    """``{workload/mode: speedup}`` for every ratio the gate watches."""
    ratios: dict[str, float] = {}
    for workload_name, workload in payload.get("workloads", {}).items():
        for mode_name, mode in workload.get("modes", {}).items():
            for key in ("speedup_batch_vs_reference",):
                if key in mode:
                    ratios[f"{workload_name}/{mode_name}"] = mode[key]
    return ratios


def check(baseline: dict, fresh: dict, threshold: float) -> list[str]:
    """Human-readable failures (empty when the gate passes)."""
    failures = []
    if not fresh.get("checks", {}).get("all_vectors_identical", False):
        failures.append(
            "fresh benchmark reports non-identical coverage vectors "
            "(checks.all_vectors_identical is false)"
        )
    baseline_ratios = speedup_ratios(baseline)
    fresh_ratios = speedup_ratios(fresh)
    if not baseline_ratios:
        failures.append("baseline carries no speedup ratios to compare")
    for leg, base_value in sorted(baseline_ratios.items()):
        fresh_value = fresh_ratios.get(leg)
        if fresh_value is None:
            failures.append(f"{leg}: ratio missing from fresh benchmark")
            continue
        floor = threshold * base_value
        if fresh_value < floor:
            failures.append(
                f"{leg}: speedup {fresh_value:.2f}x is below "
                f"{threshold:.0%} of baseline {base_value:.2f}x "
                f"(floor {floor:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        required=True,
        help="committed BENCH_engine.json to compare against",
    )
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        required=True,
        help="freshly produced BENCH_engine.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="minimum fresh/baseline ratio fraction (default %(default)s)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    failures = check(baseline, fresh, args.threshold)

    fresh_ratios = speedup_ratios(fresh)
    baseline_ratios = speedup_ratios(baseline)
    for leg in sorted(set(baseline_ratios) | set(fresh_ratios)):
        base_value = baseline_ratios.get(leg)
        fresh_value = fresh_ratios.get(leg)
        base_text = "-" if base_value is None else f"{base_value:.2f}x"
        fresh_text = "-" if fresh_value is None else f"{fresh_value:.2f}x"
        print(f"  {leg}: baseline {base_text} -> fresh {fresh_text}")

    if failures:
        print("bench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"bench-regression gate passed ({len(baseline_ratios)} ratios)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
