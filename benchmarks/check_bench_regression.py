"""Bench-regression gate: fail CI when the engine speedup collapses.

``BENCH_engine.json`` (repo root) is the tracked perf trajectory of the
engine subsystem.  This gate compares a freshly produced copy against
the committed baseline and fails when:

* any ``speedup_batch_vs_reference`` ratio — of **every** base-workload
  oracle leg: compare, signature, aliasing and aliasing_narrow — drops
  below ``--threshold`` (default 0.7) times its baseline value, i.e.
  the batch engine lost more than 30% of its relative advantage.
  Ratios are compared, not absolute seconds, so the gate is robust to
  slow or noisy CI hosts: both engines run on the same machine in the
  same job;
* any scaled-workload ``speedup_jobs_vs_batch`` ratio falls below the
  absolute ``--jobs-floor`` (default 1.2x) — the persistent-worker
  runner must *beat* single-process batch, not merely match it.  These
  assertions are **skipped with an explicit note when the fresh run's
  ``cpu_count`` is 1**: process sharding cannot exceed 1x on a
  single-CPU host, so the jobs legs are reported but not gated there;
* the megaword workload's ``min_speedup_packed_vs_perfault`` falls
  below the absolute ``--megaword-floor`` (default 10x), its sampled
  verdicts disagree with the per-fault path, or its reference
  spot-checks disagree — the packed class kernels must both beat and
  bit-match per-fault dispatch at ``>= 2^20`` words.  Skipped with a
  note when the *baseline* has no megaword leg yet (first landing) or
  the fresh run used ``--skip-megaword``;
* the chaos workload — the scaled compare campaign under an injected
  worker crash, raising chunk and corrupt chunk — did not recover to a
  report bit-identical to the undisturbed single-process run
  (``checks.chaos_recovered`` / ``recovered_bit_identical`` false), or
  recovery silently degraded chunks to in-process execution instead of
  re-dispatching them.  Skipped with a note when the fresh run carries
  no chaos leg (pre-supervision bench);
* with ``--soak BENCH_soak.json``, the soak-runtime trajectory: the
  sequential leg's ``scenarios_per_sec`` must stay at or above the
  absolute ``--soak-floor`` (default 3.0/s), and every recovery check
  (``deterministic``, ``reports_identical``, ``chaos_recovered``,
  ``checkpoint_resume_identical``) must be true.  Skipped with a note
  when ``--soak`` is not passed (pre-soak bench).

The lease supervision on the *clean* path costs bounded bookkeeping
per chunk (lease construction, deadline checks, ``connection.wait``
polling) measured at well under 5% of campaign wall-clock; that is
absorbed by the existing relative gates (the 0.7x
batch-vs-reference fraction and the 1.2x jobs floor leave far more
headroom than supervision consumes), so no gate above was loosened
for it and no separate overhead gate is needed.

Usage::

    cp BENCH_engine.json /tmp/baseline.json
    python benchmarks/bench_engine_speedup.py --jobs 2
    python benchmarks/check_bench_regression.py \
        --baseline /tmp/baseline.json --fresh BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_THRESHOLD = 0.7
DEFAULT_JOBS_FLOOR = 1.2
DEFAULT_MEGAWORD_FLOOR = 10.0
DEFAULT_SOAK_FLOOR = 3.0

# Every one of these must be true in BENCH_soak.json's checks block:
# they are the soak runtime's recovery guarantees, not perf numbers.
SOAK_CHECKS = (
    "deterministic",
    "reports_identical",
    "chaos_recovered",
    "checkpoint_resume_identical",
)

# The batch-vs-reference gate covers every oracle leg of the base
# workload — signature and aliasing included, not just compare.
BATCH_MODES = ("compare", "signature", "aliasing", "aliasing_narrow")


def speedup_ratios(payload: dict, key: str) -> dict[str, float]:
    """``{workload/mode: ratio}`` for one speedup key of the payload."""
    ratios: dict[str, float] = {}
    for workload_name, workload in payload.get("workloads", {}).items():
        for mode_name, mode in workload.get("modes", {}).items():
            if key in mode:
                ratios[f"{workload_name}/{mode_name}"] = mode[key]
    return ratios


def check(
    baseline: dict,
    fresh: dict,
    threshold: float,
    jobs_floor: float,
    megaword_floor: float = DEFAULT_MEGAWORD_FLOOR,
) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` — failures empty when the gate passes."""
    failures: list[str] = []
    notes: list[str] = []
    if not fresh.get("checks", {}).get("all_vectors_identical", False):
        failures.append(
            "fresh benchmark reports non-identical coverage vectors "
            "(checks.all_vectors_identical is false)"
        )
    if fresh.get("checks", {}).get("mixed_aliasing_reused_contexts") is False:
        failures.append(
            "mixed-mode aliasing campaign rebuilt session contexts "
            "(checks.mixed_aliasing_reused_contexts is false) — the "
            "signature/aliasing context sharing regressed"
        )

    # -- batch vs reference: every oracle leg ---------------------------
    baseline_ratios = speedup_ratios(baseline, "speedup_batch_vs_reference")
    fresh_ratios = speedup_ratios(fresh, "speedup_batch_vs_reference")
    if not baseline_ratios:
        failures.append("baseline carries no speedup ratios to compare")
    gated_modes = {leg.split("/", 1)[1] for leg in baseline_ratios}
    missing_modes = [m for m in BATCH_MODES if m not in gated_modes]
    if missing_modes:
        failures.append(
            "baseline is missing batch-vs-reference legs for modes: "
            + ", ".join(missing_modes)
        )
    for leg, base_value in sorted(baseline_ratios.items()):
        fresh_value = fresh_ratios.get(leg)
        if fresh_value is None:
            failures.append(f"{leg}: ratio missing from fresh benchmark")
            continue
        floor = threshold * base_value
        if fresh_value < floor:
            failures.append(
                f"{leg}: speedup {fresh_value:.2f}x is below "
                f"{threshold:.0%} of baseline {base_value:.2f}x "
                f"(floor {floor:.2f}x)"
            )

    # -- jobs vs batch: absolute floor, skipped on 1-CPU hosts ----------
    jobs_ratios = speedup_ratios(fresh, "speedup_jobs_vs_batch")
    cpu_count = fresh.get("cpu_count") or 1
    if cpu_count < 2:
        notes.append(
            "cpu_count == 1: skipping the speedup_jobs_vs_batch "
            f"assertions ({len(jobs_ratios)} legs reported, not gated) — "
            "process sharding cannot exceed 1x on a single-CPU host"
        )
    else:
        if not jobs_ratios:
            failures.append(
                "fresh benchmark carries no speedup_jobs_vs_batch legs "
                f"to gate (cpu_count={cpu_count})"
            )
        for leg, value in sorted(jobs_ratios.items()):
            if value < jobs_floor:
                failures.append(
                    f"{leg}: persistent-worker speedup {value:.2f}x is "
                    f"below the {jobs_floor:.2f}x floor "
                    f"(cpu_count={cpu_count})"
                )

    # -- megaword: packed class kernels vs per-fault dispatch -----------
    if baseline.get("workloads", {}).get("megaword") is None:
        notes.append(
            "baseline has no megaword workload yet: the packed-kernel "
            "assertions gate once a baseline with the leg is committed"
        )
    elif (mega := fresh.get("workloads", {}).get("megaword")) is None:
        notes.append(
            "fresh run skipped the megaword leg (--skip-megaword): "
            "packed-kernel assertions not gated"
        )
    else:
        value = mega.get("min_speedup_packed_vs_perfault")
        if value is None:
            failures.append(
                "megaword: min_speedup_packed_vs_perfault missing from "
                "fresh benchmark"
            )
        elif value < megaword_floor:
            failures.append(
                f"megaword: packed-kernel speedup {value:.2f}x is below "
                f"the {megaword_floor:.2f}x floor"
            )
        if not mega.get("sampled_verdicts_identical", False):
            failures.append(
                "megaword: sampled packed verdicts disagree with the "
                "per-fault dispatch path"
            )
        if not mega.get("reference_spotcheck_identical", False):
            failures.append(
                "megaword: reference interpreter spot-checks disagree "
                "with the packed verdicts"
            )

    # -- chaos: supervised recovery must stay bit-identical -------------
    # Correctness-only: recovery wall-clock is dominated by the injected
    # faults themselves, so no timing floor is gated here.
    if (chaos := fresh.get("workloads", {}).get("chaos")) is None:
        notes.append(
            "fresh run carries no chaos workload: supervised-recovery "
            "assertions not gated (pre-supervision bench?)"
        )
    else:
        if not chaos.get("recovered_bit_identical", False):
            failures.append(
                "chaos: supervised campaign under injected faults is not "
                "bit-identical to the undisturbed single-process run "
                "(recovered_bit_identical is false)"
            )
        if fresh.get("checks", {}).get("chaos_recovered") is False:
            failures.append(
                "chaos: checks.chaos_recovered is false — the runner "
                "degraded or mis-merged instead of recovering"
            )
        ft = chaos.get("fault_tolerance") or {}
        if ft.get("degraded_chunks", 0):
            failures.append(
                "chaos: recovery degraded "
                f"{ft['degraded_chunks']} chunk(s) to in-process "
                "execution — retries should have re-dispatched them"
            )
    return failures, notes


def check_soak(
    soak: dict, soak_floor: float = DEFAULT_SOAK_FLOOR
) -> list[str]:
    """Failures of the soak-runtime leg (``BENCH_soak.json``)."""
    failures: list[str] = []
    sequential = soak.get("legs", {}).get("sequential")
    if sequential is None:
        failures.append("soak: benchmark carries no sequential leg")
    else:
        value = sequential.get("scenarios_per_sec", 0.0)
        if value < soak_floor:
            failures.append(
                f"soak: sequential throughput {value:.2f} scenarios/s is "
                f"below the {soak_floor:.2f}/s floor"
            )
    checks = soak.get("checks", {})
    for name in SOAK_CHECKS:
        if not checks.get(name, False):
            failures.append(
                f"soak: checks.{name} is false — a recovery path is no "
                "longer bit-identical"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        required=True,
        help="committed BENCH_engine.json to compare against",
    )
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        required=True,
        help="freshly produced BENCH_engine.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="minimum fresh/baseline batch-vs-reference ratio fraction "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--jobs-floor",
        type=float,
        default=DEFAULT_JOBS_FLOOR,
        help="absolute minimum jobs-vs-batch speedup on multi-core "
        "hosts (default %(default)s; skipped when cpu_count == 1)",
    )
    parser.add_argument(
        "--megaword-floor",
        type=float,
        default=DEFAULT_MEGAWORD_FLOOR,
        help="absolute minimum packed-kernel vs per-fault speedup of "
        "the megaword workload (default %(default)s; skipped when the "
        "baseline has no megaword leg)",
    )
    parser.add_argument(
        "--soak",
        type=pathlib.Path,
        default=None,
        help="freshly produced BENCH_soak.json to gate alongside the "
        "engine trajectory (default: soak leg skipped with a note)",
    )
    parser.add_argument(
        "--soak-floor",
        type=float,
        default=DEFAULT_SOAK_FLOOR,
        help="absolute minimum sequential scenarios/second of the soak "
        "benchmark (default %(default)s)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    failures, notes = check(
        baseline, fresh, args.threshold, args.jobs_floor,
        args.megaword_floor,
    )
    soak = None
    if args.soak is None:
        notes.append(
            "no --soak benchmark passed: soak-runtime assertions not "
            "gated (pre-soak bench?)"
        )
    else:
        soak = json.loads(args.soak.read_text(encoding="utf-8"))
        failures.extend(check_soak(soak, args.soak_floor))

    for key in ("speedup_batch_vs_reference", "speedup_jobs_vs_batch"):
        fresh_ratios = speedup_ratios(fresh, key)
        baseline_ratios = speedup_ratios(baseline, key)
        for leg in sorted(set(baseline_ratios) | set(fresh_ratios)):
            base_value = baseline_ratios.get(leg)
            fresh_value = fresh_ratios.get(leg)
            base_text = "-" if base_value is None else f"{base_value:.2f}x"
            fresh_text = "-" if fresh_value is None else f"{fresh_value:.2f}x"
            print(f"  {key} {leg}: baseline {base_text} -> fresh {fresh_text}")
    for payload, label in ((baseline, "baseline"), (fresh, "fresh")):
        mega = payload.get("workloads", {}).get("megaword")
        if mega is not None:
            print(
                f"  min_speedup_packed_vs_perfault megaword ({label}): "
                f"{mega.get('min_speedup_packed_vs_perfault')}x"
            )
    if (chaos := fresh.get("workloads", {}).get("chaos")) is not None:
        ft = chaos.get("fault_tolerance") or {}
        print(
            "  chaos recovery (fresh): "
            f"bit_identical={chaos.get('recovered_bit_identical')} "
            f"retries={ft.get('retries', 0)} "
            f"respawns={ft.get('respawns', 0)} "
            f"degraded={ft.get('degraded_chunks', 0)}"
        )
    if soak is not None:
        sequential = soak.get("legs", {}).get("sequential", {})
        soak_checks = soak.get("checks", {})
        print(
            "  soak (fresh): "
            f"{sequential.get('scenarios_per_sec', 0.0):.2f} scenarios/s "
            f"(floor {args.soak_floor:.2f}/s), "
            + " ".join(
                f"{name}={soak_checks.get(name)}" for name in SOAK_CHECKS
            )
        )
    for note in notes:
        print(f"note: {note}")

    if failures:
        print("bench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench-regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
