"""A3 — ablation: idle-window density vs online-test behaviour.

The paper motivates short transparent tests with: "shorter test time
can reduce the probability of interference of normal system operation,
since transparent tests usually are executed in idle state of systems."
This ablation simulates periodic online testing under workloads of
varying idle density and compares the proposed TWMarch against the
Scheme 1 test: the shorter test completes more sessions, aborts less
often per completion, and finds an injected fault sooner.
"""

import random

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.baselines.scheme1 import scheme1_transform
from repro.bist.scheduler import OnlineTestScheduler, random_workload
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.faults import Cell, StuckAtFault
from repro.memory.injection import FaultyMemory

N_WORDS, WIDTH = 2, 32
CYCLES = 30_000
IDLE_FRACTIONS = (0.95, 0.8, 0.6)


def run_one(test, prediction, idle_fraction, seed):
    memory = FaultyMemory(N_WORDS, WIDTH)
    memory.randomize(random.Random(seed))
    sched = OnlineTestScheduler(
        memory,
        test,
        prediction,
        ops_per_idle_cycle=2,
        rng=random.Random(seed + 1),
    )
    workload = random_workload(
        N_WORDS, WIDTH, idle_fraction=idle_fraction, write_fraction=0.02
    )

    def inject(mem):
        mem.inject(StuckAtFault(Cell(1, 7), 1))

    report = sched.run(workload, CYCLES, fault_at=(CYCLES // 4, inject))
    return report


def generate():
    twm = twm_transform(catalog.get("March C-"), WIDTH)
    s1 = scheme1_transform(catalog.get("March C-"), WIDTH)
    rows = []
    for idle in IDLE_FRACTIONS:
        for label, test, prediction in (
            ("TWMarch", twm.twmarch, twm.prediction),
            ("Scheme 1", s1.transparent, s1.prediction),
        ):
            report = run_one(test, prediction, idle, seed=17)
            rows.append(
                (
                    f"{idle:.0%}",
                    label,
                    report.sessions_completed,
                    report.sessions_aborted,
                    report.detection_latency,
                )
            )
    return rows


def test_ablation_scheduler(benchmark):
    rows = benchmark.pedantic(generate, rounds=1, iterations=1)

    table = render_table(
        ["Idle fraction", "Test", "Sessions done", "Aborts", "Detection latency"],
        [
            (idle, label, done, aborts, lat if lat is not None else "miss")
            for idle, label, done, aborts, lat in rows
        ],
        title=(
            "Ablation A3 — idle density vs online transparent testing "
            f"(March C-, b={WIDTH}, {CYCLES} cycles, SAF injected at 25%)"
        ),
    )
    save_artifact("ablation_scheduler", table)

    by_key = {(idle, label): row for idle, label, *row in rows}

    for idle in ("95%", "80%", "60%"):
        twm_done = by_key[(idle, "TWMarch")][0]
        s1_done = by_key[(idle, "Scheme 1")][0]
        # The shorter test never completes fewer sessions.
        assert twm_done >= s1_done

    # At the highest idle density both run, TWM detects the fault.
    assert by_key[("95%", "TWMarch")][0] > 0
    assert by_key[("95%", "TWMarch")][2] is not None

    # Busier systems complete fewer sessions (interference claim).
    assert (
        by_key[("60%", "TWMarch")][0] <= by_key[("95%", "TWMarch")][0]
    )
