"""E-ext — extension fault models: read-disturb and decoder faults.

Beyond the Section 2 fault universe, the simulator models RDF/DRDF
(read-disturb, plain and deceptive) and address-decoder faults; this
benchmark reproduces the textbook detection results on both the
bit-oriented tests and their TWM_TA transparent word transforms:

* every March test detects plain RDF and the AF classes;
* March C− is blind to *deceptive* RDF (the damaged value is only ever
  observed after an intervening write) while the double-read tests
  March SS and March RAW detect 100 %;
* **emergent bonus of TWM_TA**: the transparent word transform of March
  C− detects 100 % DRDF even though the bit-oriented original detects
  none — ATMarch's element-boundary reads (`..., r c; ⇕(r c, ...)`)
  form back-to-back reads of every word with no intervening write,
  which is precisely the DRDF detection condition.
"""

from conftest import save_artifact

from repro.analysis.coverage import compare_flow, run_campaign
from repro.analysis.reports import render_table
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.injection import (
    enumerate_address_faults,
    enumerate_read_disturb,
)

N_WORDS = 6
WIDTH = 4
TESTS = ("March C-", "March SS", "March RAW")


def generate():
    universe_bit = {
        "RDF": list(enumerate_read_disturb(N_WORDS, 1, deceptive=False)),
        "DRDF": list(enumerate_read_disturb(N_WORDS, 1, deceptive=True)),
        "AF": list(enumerate_address_faults(N_WORDS)),
    }
    universe_word = {
        "RDF": list(enumerate_read_disturb(N_WORDS, WIDTH, deceptive=False)),
        "DRDF": list(enumerate_read_disturb(N_WORDS, WIDTH, deceptive=True)),
        "AF": list(enumerate_address_faults(N_WORDS)),
    }

    rows = []
    for name in TESTS:
        bit_flow = compare_flow(catalog.get(name), N_WORDS, 1, initial=0)
        bit_rep = run_campaign(bit_flow, universe_bit)
        twm = twm_transform(catalog.get(name), WIDTH)
        word_flow = compare_flow(
            twm.twmarch, N_WORDS, WIDTH, initial=None, seed=9
        )
        word_rep = run_campaign(word_flow, universe_word)
        for cls in ("RDF", "DRDF", "AF"):
            rows.append(
                (
                    name,
                    cls,
                    f"{bit_rep.classes[cls].percent:.1f}%",
                    f"{word_rep.classes[cls].percent:.1f}%",
                )
            )
    return rows


def test_extension_rdf_af(benchmark):
    rows = benchmark.pedantic(generate, rounds=1, iterations=1)

    table = render_table(
        ["Test", "Fault class", "Bit-oriented", "TWMarch (transparent word)"],
        rows,
        title=(
            "Extension — read-disturb and address-decoder fault coverage "
            f"({N_WORDS} words; word tests at b={WIDTH})"
        ),
    )
    save_artifact("extension_rdf_af", table)

    by_key = {(test, cls): (bit, word) for test, cls, bit, word in rows}

    # Everyone catches plain RDF and the decoder faults.
    for name in TESTS:
        assert by_key[(name, "RDF")] == ("100.0%", "100.0%")
        assert by_key[(name, "AF")][0] == "100.0%"

    # The classic DRDF split at the bit level...
    assert by_key[("March C-", "DRDF")][0] == "0.0%"
    assert by_key[("March SS", "DRDF")][0] == "100.0%"
    assert by_key[("March RAW", "DRDF")][0] == "100.0%"
    # ...and the emergent repair by ATMarch's element-boundary reads.
    assert by_key[("March C-", "DRDF")][1] == "100.0%"
    assert by_key[("March SS", "DRDF")][1] == "100.0%"
