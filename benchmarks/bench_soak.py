"""Soak-runtime benchmark: scenario throughput and recovery guarantees.

One scenario matrix (tests x geometries x arrival rates x fault mixes)
runs through four legs:

* **sequential** — ``jobs=1`` through :func:`repro.soak.run_soak_campaign`;
  the scenarios-per-second headline the CI gate floors.  The same leg
  runs twice and checks the two report lists are equal — the
  determinism contract every other leg's bit-identity claim rests on.
* **jobs** — the same matrix sharded across worker processes; reports
  must be bit-identical to the sequential leg.
* **chaos** — the jobs leg under an injected worker crash and a corrupt
  chunk (``repro.engine.chaos.FaultPlan``): the supervised runner must
  retry/respawn its way back to bit-identical reports, and the leg
  records the fault-tolerance accounting.
* **checkpoint** — the matrix run in two invocations (``max_batches=1``
  then a resume from the banked JSON checkpoint), simulating a killed
  and restarted soak; the stitched reports must again be bit-identical.

Results are written as machine-readable JSON to ``BENCH_soak.json`` at
the repository root (the tracked perf trajectory) and mirrored to
``benchmarks/out/soak.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_soak.py
    PYTHONPATH=src python benchmarks/bench_soak.py --cycles 40000 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import time

from repro.engine import FaultPlan, RetryPolicy
from repro.soak import run_soak_campaign, scenario_matrix

ROOT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_soak.json"
MIRROR_OUT = pathlib.Path(__file__).parent / "out" / "soak.json"


def build_matrix(args):
    return scenario_matrix(
        tests=tuple(t.strip() for t in args.tests.split(",") if t.strip()),
        geometries=((8, 8), (16, 8)),
        rates=(2.0, 4.0),
        mixes=("mixed", "permanent"),
        cycles=args.cycles,
        seed=args.seed,
    )


def leg(campaign, n_scenarios: int) -> dict:
    seconds = max(campaign.seconds, 1e-9)
    return {
        "scenarios": campaign.scenarios,
        "seconds": round(seconds, 6),
        "scenarios_per_sec": round(n_scenarios / seconds, 2),
        "cycles_per_sec": round(
            sum(r.cycles for r in campaign.reports) / seconds, 1
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", default="March C-")
    parser.add_argument("--cycles", type=int, default=12_000,
                        help="simulated uptime per scenario")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=2,
                        help="sequential-leg repeats (best-of wall clock)")
    parser.add_argument(
        "--jobs", type=int, default=max(2, min(4, os.cpu_count() or 1)),
        help="worker processes for the sharded legs",
    )
    args = parser.parse_args(argv)

    matrix = build_matrix(args)
    n = len(matrix)
    payload = {
        "workload": "soak scenario matrix "
        "(tests x geometries x rates x mixes, Poisson arrivals)",
        "n_scenarios": n,
        "cycles_per_scenario": args.cycles,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "legs": {},
        "checks": {},
    }

    # -- sequential: throughput headline + the determinism contract -----
    base = None
    best = None
    for _ in range(max(2, args.repeats)):
        campaign = run_soak_campaign(matrix, jobs=1)
        if best is None or campaign.seconds < best.seconds:
            best = campaign
        if base is None:
            base = campaign
    deterministic = best.reports == base.reports
    payload["legs"]["sequential"] = leg(best, n)

    # -- jobs: sharded sweep, bit-identical merge -----------------------
    par = run_soak_campaign(matrix, jobs=args.jobs)
    jobs_identical = par.reports == base.reports
    payload["legs"]["jobs"] = leg(par, n)
    payload["legs"]["jobs"]["reports_identical"] = jobs_identical

    # -- chaos: crash + corrupt recovery, bit-identical -----------------
    chaos = run_soak_campaign(
        matrix,
        jobs=args.jobs,
        chaos=FaultPlan.parse("crash:soak:0,corrupt:soak:1"),
        retry=RetryPolicy(max_attempts=3, base_delay=0.0),
    )
    ft = chaos.fault_tolerance
    chaos_recovered = (
        chaos.reports == base.reports
        and ft is not None
        and ft.crashes >= 1
        and ft.corrupt_chunks >= 1
        and ft.degraded_chunks == 0
    )
    payload["legs"]["chaos"] = leg(chaos, n)
    payload["legs"]["chaos"]["plan"] = "crash:soak:0,corrupt:soak:1"
    payload["legs"]["chaos"]["fault_tolerance"] = (
        ft.as_dict() if ft is not None else None
    )
    payload["legs"]["chaos"]["recovered_bit_identical"] = chaos_recovered

    # -- checkpoint: killed-and-resumed run, bit-identical --------------
    with tempfile.TemporaryDirectory() as tmp:
        bank = pathlib.Path(tmp) / "soak-checkpoint.json"
        started = time.perf_counter()
        partial = run_soak_campaign(
            matrix, jobs=1, checkpoint=bank, batch_size=max(1, n // 3),
            max_batches=1,
        )
        resumed = run_soak_campaign(
            matrix, jobs=1, checkpoint=bank, batch_size=max(1, n // 3)
        )
        checkpoint_seconds = time.perf_counter() - started
    resume_identical = (
        not partial.completed
        and resumed.completed
        and resumed.resumed_scenarios == partial.scenarios
        and resumed.reports == base.reports
    )
    payload["legs"]["checkpoint"] = {
        "seconds": round(checkpoint_seconds, 6),
        "banked_then_resumed": partial.scenarios,
        "resume_identical": resume_identical,
    }

    ok = deterministic and jobs_identical and chaos_recovered and (
        resume_identical
    )
    payload["checks"] = {
        "deterministic": deterministic,
        "reports_identical": jobs_identical,
        "chaos_recovered": chaos_recovered,
        "checkpoint_resume_identical": resume_identical,
        "single_core_note": (
            "jobs legs cannot exceed 1x on a single-CPU host"
            if (os.cpu_count() or 1) < 2
            else None
        ),
    }

    text = json.dumps(payload, indent=2) + "\n"
    ROOT_OUT.write_text(text, encoding="utf-8")
    MIRROR_OUT.parent.mkdir(exist_ok=True)
    MIRROR_OUT.write_text(text, encoding="utf-8")
    print(text, end="")
    if not ok:
        print("ERROR: a soak recovery leg failed its bit-identity check")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
