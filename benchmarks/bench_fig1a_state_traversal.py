"""E4 — Figure 1(a): the 18-step two-cell state traversal of March C−.

Figure 1(a) shows all fault-free states of two arbitrary cells/words
(i at the lower address, j at the higher) and claims that a March test
with 100 % coupling-fault coverage — March C− being the example — walks
its two cells through the full read/write state sequence 1..18.  We
replay March C− on a two-cell memory, print the traversal, and assert
the full condition coverage that the Section 5 inter-word argument
relies on.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.analysis.states import (
    pair_condition_coverage,
    state_sequence,
    two_cell_trace,
)
from repro.core.twm import twm_transform
from repro.library import catalog


def generate():
    trace = two_cell_trace(catalog.get("March C-"))
    return trace, pair_condition_coverage(trace)


def test_fig1a_state_traversal(benchmark):
    trace, coverage = benchmark(generate)

    # Drop the two init writes; the remaining 18 ops are the figure.
    steps = trace[2:]
    rows = [
        (idx + 1, e.label(), f"({e.state[0]},{e.state[1]})")
        for idx, e in enumerate(steps)
    ]
    table = render_table(
        ["Step", "Operation", "State (v_i, v_j)"],
        rows,
        title="Figure 1(a) — March C- two-cell traversal (steps 1..18)",
    )
    save_artifact("fig1a_state_traversal", table)

    assert len(steps) == 18

    # All four joint states are visited.
    assert set(state_sequence(steps)) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    # All eight single-cell write transitions are exercised.
    transitions = set()
    prev = (0, 0)
    for e in steps:
        if e.kind == "w" and e.state != prev:
            transitions.add((prev, e.state))
        prev = e.state
    assert len(transitions) == 8

    # Full inter-word CF condition coverage (the Section 5 argument).
    assert coverage.complete
    assert len(coverage.cfid) == 8
    assert len(coverage.cfin) == 4
    assert len(coverage.cfst) == 8

    # The transparent word-level image walks the same joint states.
    twm = twm_transform(catalog.get("March C-"), 1).twmarch
    t_trace = two_cell_trace(twm, initial=(0, 0))
    assert set(state_sequence(t_trace)) == {(0, 0), (0, 1), (1, 0), (1, 1)}
