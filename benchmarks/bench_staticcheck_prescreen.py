"""Prescreen throughput benchmark: the synthesis-loop fast path.

``repro.staticcheck.prescreen`` is the gatekeeper a bounded-exhaustive
march-test synthesizer calls on every enumerated candidate, so its
throughput bounds the reachable candidate space.  This benchmark
enumerates a realistic candidate swarm **outside the timed region**
(parse cost is the enumerator's, not the prescreen's), then measures
the accept/reject/score rate over it and asserts the ISSUE floor of
10k candidates/sec.

The swarm mixes the solid and transparent uniform-mask alphabets over
1–2 elements of 1–3 ops — the same distribution the agreement test in
``tests/test_staticcheck_predictor.py`` locks against the validators
and the abstract-replay predictor.

Results land in ``benchmarks/out/staticcheck_prescreen.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_staticcheck_prescreen.py
    PYTHONPATH=src python benchmarks/bench_staticcheck_prescreen.py \
        --candidates 20000 --floor 10000
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import random
import time

from repro.core.notation import parse_march
from repro.staticcheck import prescreen

OUT = pathlib.Path(__file__).parent / "out" / "staticcheck_prescreen.json"

SOLID = ("r0", "r1", "w0", "w1")
TRANSPARENT = ("rc", "r~c", "wc", "w~c")


def build_swarm(count: int, seed: int) -> list:
    """Enumerate+parse *count* candidates (untimed)."""
    rng = random.Random(seed)
    pools = []
    for alphabet in (SOLID, TRANSPARENT):
        seqs = []
        for n in range(1, 4):
            seqs.extend(itertools.product(alphabet, repeat=n))
        pools.append(
            [
                f"{order}({','.join(seq)})"
                for order in ("up", "down", "any")
                for seq in seqs
            ]
        )
    candidates = []
    while len(candidates) < count:
        elements = rng.choice(pools)
        n_elements = rng.randint(1, 2)
        notation = "; ".join(rng.choice(elements) for _ in range(n_elements))
        candidates.append(parse_march(notation, name="cand"))
    return candidates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--candidates", type=int, default=50_000)
    parser.add_argument("--floor", type=float, default=10_000.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    swarm = build_swarm(args.candidates, args.seed)

    best_rate = 0.0
    accepted = claimed = 0
    for _ in range(args.repeats):
        accepted = claimed = 0
        t0 = time.perf_counter()
        for candidate in swarm:
            result = prescreen(candidate)
            if result.ok:
                accepted += 1
                if result.claims:
                    claimed += 1
        elapsed = time.perf_counter() - t0
        best_rate = max(best_rate, len(swarm) / elapsed)

    payload = {
        "candidates": len(swarm),
        "accepted": accepted,
        "with_claims": claimed,
        "repeats": args.repeats,
        "best_rate_per_sec": round(best_rate, 1),
        "floor_per_sec": args.floor,
    }
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"prescreen: {len(swarm)} candidates, {accepted} accepted "
        f"({claimed} with claims), best {best_rate:,.0f}/sec "
        f"(floor {args.floor:,.0f}/sec)"
    )
    if best_rate < args.floor:
        print(f"FAIL: rate below the {args.floor:,.0f}/sec floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
