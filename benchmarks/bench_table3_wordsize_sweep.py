"""E3 — Table 3: word-size sweeps, complexity *and* coverage.

Part 1 (the paper's table): March C− and March U swept over word sizes
16..128 bits, total test complexity (TCM + TCP) per scheme, asserting
the paper's qualitative growth claims.

Part 2 (the engine's sweep): a Table-3-style *coverage* width sweep of
the TWMarch over the standard+extension fault universe, run two ways
and raced:

* ``campaign`` leg — the classic path: one full batch-engine campaign
  per width (how width sweeps ran before the symbolic engine);
* ``symbolic`` leg — one width-generic ``detect_symbolic`` evaluation
  of the whole fault population plus one cheap ``concretize(width)``
  projection per fault per width.

The two legs must produce bit-identical coverage rows at every swept
width (including the acceptance widths 4/8/16/32), and the one-shot
symbolic sweep must be ≥ 5x faster than the per-width-campaign leg —
the sweep is an amortized evaluation, not N campaigns.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.analysis.sweep import campaign_width_sweep, symbolic_width_sweep
from repro.core.complexity import table3_rows
from repro.core.twm import twm_transform
from repro.library import catalog

WIDTHS = (16, 32, 64, 128)

# Coverage-sweep workload: Table-3-style widths plus the low widths the
# acceptance contract pins; the memory is sized so per-fault campaign
# work (quadratic AF class, coupling subsets) dominates per-width cost.
SWEEP_WIDTHS = (4, 8, 16, 32, 64, 128)
GATED_WIDTHS = (4, 8, 16, 32)
SWEEP_WORDS = 64
SWEEP_SEED = 3
SWEEP_MIN_SPEEDUP = 5.0


def generate():
    return table3_rows(
        [catalog.get("March C-"), catalog.get("March U")], widths=WIDTHS
    )


def test_table3_wordsize_sweep(benchmark):
    rows = benchmark(generate)

    rendered = [
        (
            row.test,
            f"{row.width} bits",
            f"{row.scheme1_measured.total}n ({row.scheme1_formula.total}n)",
            f"{row.tomt.total}n",
            f"{row.this_work.total}n",
            f"{row.ratio_vs_scheme1:.0%}",
            f"{row.ratio_vs_tomt:.0%}",
        )
        for row in rows
    ]
    table = render_table(
        [
            "Test",
            "Word size",
            "[12] measured (formula)",
            "[13]",
            "This work",
            "vs [12]",
            "vs [13]",
        ],
        rendered,
        title="Table 3 — test complexity for different word sizes (TCM+TCP)",
    )
    save_artifact("table3_wordsize_sweep", table)

    assert len(rows) == 8
    for row in rows:
        # The proposed scheme wins everywhere.
        assert row.this_work.total < row.scheme1_measured.total
        assert row.this_work.total < row.scheme1_formula.total
        assert row.this_work.total < row.tomt.total

    # Growth shape: doubling b adds a constant (7 ops: 5 TCM + 2 TCP...)
    # for this work, but ~N+Q ops for Scheme 1 and ~9b ops for TOMT.
    by_test = {}
    for row in rows:
        by_test.setdefault(row.test, []).append(row)
    for series in by_test.values():
        series.sort(key=lambda r: r.width)
        deltas_this = [
            b.this_work.total - a.this_work.total
            for a, b in zip(series, series[1:])
        ]
        assert len(set(deltas_this)) == 1  # additive: constant per doubling
        assert deltas_this[0] == 8  # 5 (ATMarch) + 3 (prediction reads)
        deltas_s1 = [
            b.scheme1_measured.total - a.scheme1_measured.total
            for a, b in zip(series, series[1:])
        ]
        assert all(d > deltas_this[0] for d in deltas_s1)
        deltas_tomt = [
            b.tomt.total - a.tomt.total for a, b in zip(series, series[1:])
        ]
        assert deltas_tomt == [9 * 16, 9 * 32, 9 * 64]

    # Paper's worked example (March U, 8-bit) as an extra row-level check.
    from repro.core.complexity import twm_cost

    assert twm_cost(catalog.get("March U"), 8).tcm == 29


def _coverage_sweep_legs():
    """Run both drivers over the identical workload; the second
    symbolic pass measures the amortized (warm-shape-cache) regime the
    sweep exists for, mirroring best-of-N timing of the campaign leg."""
    march = twm_transform(catalog.get("March C-"), max(SWEEP_WIDTHS)).twmarch
    symbolic = symbolic_width_sweep(
        march, SWEEP_WORDS, widths=SWEEP_WIDTHS, seed=SWEEP_SEED
    )
    warm = symbolic_width_sweep(
        march, SWEEP_WORDS, widths=SWEEP_WIDTHS, seed=SWEEP_SEED
    )
    symbolic.seconds = min(symbolic.seconds, warm.seconds)
    campaign = campaign_width_sweep(
        march, SWEEP_WORDS, widths=SWEEP_WIDTHS, seed=SWEEP_SEED
    )
    rerun = campaign_width_sweep(
        march, SWEEP_WORDS, widths=SWEEP_WIDTHS, seed=SWEEP_SEED
    )
    campaign.seconds = min(campaign.seconds, rerun.seconds)
    return symbolic, campaign


def test_table3_coverage_width_sweep_symbolic_one_shot(benchmark):
    symbolic, campaign = benchmark(_coverage_sweep_legs)

    save_artifact(
        "table3_coverage_width_sweep",
        symbolic.render()
        + "\n\n"
        + campaign.render()
        + f"\n\nspeedup symbolic one-shot vs per-width campaigns: "
        f"{campaign.seconds / symbolic.seconds:.2f}x",
    )

    # Identity: every row (class x width) agrees between one symbolic
    # evaluation + projections and N independent batch campaigns.
    assert symbolic.row_map() == campaign.row_map()
    for width in GATED_WIDTHS:
        assert width in symbolic.widths
        assert symbolic.coverage_vector(width) == campaign.coverage_vector(
            width
        )

    # The Table 2 claim, visible in sweep data: every class's coverage
    # rate is width-independent for the fixed fault population.
    assert symbolic.width_independent_classes == sorted(
        {row.class_name for row in symbolic.rows}
    )

    # Amortization: the sweep is one evaluation, not N campaigns.
    speedup = campaign.seconds / symbolic.seconds
    assert speedup >= SWEEP_MIN_SPEEDUP, (
        f"symbolic one-shot sweep only {speedup:.2f}x faster than "
        f"per-width campaigns (floor {SWEEP_MIN_SPEEDUP}x)"
    )
