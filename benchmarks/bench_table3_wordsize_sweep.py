"""E3 — Table 3: test complexity vs word size for the three schemes.

The paper's Table 3 sweeps March C− and March U over word sizes 16, 32,
64 and 128 bits and reports total test complexity (TCM + TCP) per
scheme.  We regenerate the table from exact counts of the generated
tests and assert the paper's qualitative claims:

* the proposed scheme is the shortest everywhere;
* Scheme 1 grows multiplicatively with ``log2 b`` while the proposed
  scheme grows only additively (it is "only slightly related" to the
  bit-oriented test);
* TOMT grows linearly in ``b`` and dominates for wide words.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.core.complexity import table3_rows
from repro.library import catalog

WIDTHS = (16, 32, 64, 128)


def generate():
    return table3_rows(
        [catalog.get("March C-"), catalog.get("March U")], widths=WIDTHS
    )


def test_table3_wordsize_sweep(benchmark):
    rows = benchmark(generate)

    rendered = [
        (
            row.test,
            f"{row.width} bits",
            f"{row.scheme1_measured.total}n ({row.scheme1_formula.total}n)",
            f"{row.tomt.total}n",
            f"{row.this_work.total}n",
            f"{row.ratio_vs_scheme1:.0%}",
            f"{row.ratio_vs_tomt:.0%}",
        )
        for row in rows
    ]
    table = render_table(
        [
            "Test",
            "Word size",
            "[12] measured (formula)",
            "[13]",
            "This work",
            "vs [12]",
            "vs [13]",
        ],
        rendered,
        title="Table 3 — test complexity for different word sizes (TCM+TCP)",
    )
    save_artifact("table3_wordsize_sweep", table)

    assert len(rows) == 8
    for row in rows:
        # The proposed scheme wins everywhere.
        assert row.this_work.total < row.scheme1_measured.total
        assert row.this_work.total < row.scheme1_formula.total
        assert row.this_work.total < row.tomt.total

    # Growth shape: doubling b adds a constant (7 ops: 5 TCM + 2 TCP...)
    # for this work, but ~N+Q ops for Scheme 1 and ~9b ops for TOMT.
    by_test = {}
    for row in rows:
        by_test.setdefault(row.test, []).append(row)
    for series in by_test.values():
        series.sort(key=lambda r: r.width)
        deltas_this = [
            b.this_work.total - a.this_work.total
            for a, b in zip(series, series[1:])
        ]
        assert len(set(deltas_this)) == 1  # additive: constant per doubling
        assert deltas_this[0] == 8  # 5 (ATMarch) + 3 (prediction reads)
        deltas_s1 = [
            b.scheme1_measured.total - a.scheme1_measured.total
            for a, b in zip(series, series[1:])
        ]
        assert all(d > deltas_this[0] for d in deltas_s1)
        deltas_tomt = [
            b.tomt.total - a.tomt.total for a, b in zip(series, series[1:])
        ]
        assert deltas_tomt == [9 * 16, 9 * 32, 9 * 64]

    # Paper's worked example (March U, 8-bit) as an extra row-level check.
    from repro.core.complexity import twm_cost

    assert twm_cost(catalog.get("March U"), 8).tcm == 29
