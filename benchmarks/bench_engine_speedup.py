"""Engine speedup benchmark: reference vs batch vs batch+jobs, all oracles.

Two workloads of the E7 coverage campaign (TWMarch of the chosen test,
the Section 2 universe plus the RDF/DRDF/AF extension classes):

* **base** — small enough for the op-by-op reference interpreter; runs
  ``reference`` and ``batch`` through the compare oracle, the two-phase
  MISR signature oracle and the pair-verdict aliasing oracle, checking
  bit-identical coverage (and aliasing) vectors and reporting the batch
  speedup.  The aliasing legs carry an aliasing-rate column (the
  percentage of stream-detected faults the MISR signature missed).
* **scaled** — the production-sized memory (>= 64 words by default)
  that only the batch paths can afford; runs single-process ``batch``
  against ``batch + jobs`` (persistent-worker campaign runner) per
  oracle, checking that sharding leaves the reports bit-identical, and
  a ``batch_jobs_warm`` leg that reuses one runner across repeats so
  the fully-amortized regime (0 context builds) is measured too.
* **mixed** — compare + signature + aliasing back to back through one
  shared runner: the signature and aliasing oracles share a single
  session context, so the aliasing campaign reports (near-)zero
  context builds — at most one per worker the pool scheduler never
  handed a signature chunk, and exactly zero in-process.
* **chaos** — the scaled compare campaign at ``jobs`` under an
  injected worker crash, a raising chunk and a corrupt chunk
  (``repro.engine.chaos.FaultPlan``): the supervised runner must
  retry/respawn its way to a report **bit-identical** to the
  undisturbed single-process run, and the leg records the full
  fault-tolerance accounting (retries, respawns, lost wall-clock).
* **megaword** — the packed class-kernel headline at ``>= 2^20``
  words: each single-cell class (SAF/TF/RDF/DRDF, millions of faults)
  is answered by one :meth:`detect_class` bitset pass over the
  campaign context's packed planes, raced against the per-fault
  dispatch rate measured on an evenly-strided fault sample through the
  *same warm context* (whole-class per-fault dispatch is exactly what
  the packed pass replaces — at this size it would take tens of
  minutes).  Sampled verdicts are checked bit-identical between the
  two paths, and a few low-address detected faults are replayed
  through the stop-on-mismatch reference interpreter as ground truth.

Every leg carries the campaign-context cache columns
(``context_builds`` / ``context_cache_hits`` / ``context_cache_misses``
/ ``context_build_seconds``), proving context construction is a cached,
per-worker cost — at most one build per distinct context per process —
instead of a per-chunk one.

The batch runs also instrument the engine's reference fallback to
prove that no fault class of the standard universe is routed through
the interpreter anymore (the AF fast path closed the last gap).

Results are written as machine-readable JSON to ``BENCH_engine.json``
at the repository root (the tracked perf trajectory) and mirrored to
``benchmarks/out/engine_speedup.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py
    PYTHONPATH=src python benchmarks/bench_engine_speedup.py \
        --scaled-words 128 --jobs 8 --repeats 3
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import time
from unittest import mock

from repro.analysis.coverage import (
    _initial_words,
    aliasing_flow,
    compare_flow,
    run_campaign,
    signature_flow,
)
from repro.analysis.reports import counter_rows, render_table
from repro.core.twm import twm_transform
from repro.engine import (
    CampaignRunner,
    FaultPlan,
    RetryPolicy,
    compile_march,
)
from repro.engine import batch as batch_module
from repro.library import catalog
from repro.memory.injection import (
    ReadDisturbClass,
    StuckAtClass,
    TransitionClass,
    standard_fault_universe,
)

ROOT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"
MIRROR_OUT = pathlib.Path(__file__).parent / "out" / "engine_speedup.json"


class _FallbackCounter:
    """Counts (and forwards) the batch engine's reference fallbacks."""

    def __init__(self) -> None:
        self.calls = 0
        self._compare = batch_module._CampaignContext._fallback
        # The signature-only fallback delegates to the pair fallback,
        # so wrapping the pair entry point counts both the signature
        # and the aliasing oracle exactly once per fallback.
        self._signature = batch_module._SignatureContext._fallback_pair

    def __enter__(self) -> "_FallbackCounter":
        counter = self

        def compare(ctx, fault):
            counter.calls += 1
            return counter._compare(ctx, fault)

        def signature(ctx, fault):
            counter.calls += 1
            return counter._signature(ctx, fault)

        self._patches = [
            mock.patch.object(
                batch_module._CampaignContext, "_fallback", compare
            ),
            mock.patch.object(
                batch_module._SignatureContext, "_fallback_pair", signature
            ),
        ]
        for patch in self._patches:
            patch.start()
        return self

    def __exit__(self, *exc_info) -> None:
        for patch in self._patches:
            patch.stop()


def build_workload(args, n_words: int, *, streaming: bool = True):
    twm = twm_transform(catalog.get(args.test), args.width)
    # The scaled/mixed legs pass ``streaming=False``: class descriptors
    # always run inline (sharding them would multiply the context
    # rebuild cost), so the jobs legs must hand the runner materialized
    # lists or ``speedup_jobs_vs_batch`` would measure inline execution
    # instead of the sharded transport it gates.
    universe = standard_fault_universe(
        n_words,
        args.width,
        max_inter_pairs=args.max_inter_pairs,
        rng=random.Random(0),
        include_rdf=True,
        include_af=True,
        streaming=streaming,
    )
    flows = {
        "compare": compare_flow(
            twm.twmarch, n_words, args.width, initial=None, seed=args.seed
        ),
        "signature": signature_flow(
            twm.twmarch,
            twm.prediction,
            n_words,
            args.width,
            misr_width=args.misr_width,
            initial=None,
            seed=args.seed,
        ),
        "aliasing": aliasing_flow(
            twm.twmarch,
            twm.prediction,
            n_words,
            args.width,
            misr_width=args.misr_width,
            initial=None,
            seed=args.seed,
        ),
        # A deliberately narrow register aliases at a measurable rate,
        # so the aliasing-rate column is exercised with non-zero values
        # (a 16-bit MISR aliases at ~2**-16 — rarely within one run).
        "aliasing_narrow": aliasing_flow(
            twm.twmarch,
            twm.prediction,
            n_words,
            args.width,
            misr_width=args.narrow_misr_width,
            initial=None,
            seed=args.seed,
        ),
    }
    return twm, universe, flows


def measure(flow, universe, engine, jobs, repeats, runner=None):
    """Best-of-*repeats* wall-clock plus the *last* repeat's report.

    The last report is what the leg's context columns describe: for a
    fresh runner per repeat every report carries the same counters,
    and with a shared *runner* only the last repeat shows the warm
    (fully amortized, zero-build) regime the leg exists to measure —
    the first repeat's cold counters must not leak in just because it
    happened to be the fastest.
    """
    best = float("inf")
    report = None
    for _ in range(repeats):
        started = time.perf_counter()
        report = (
            run_campaign(flow, universe, runner=runner)
            if runner is not None
            else run_campaign(flow, universe, engine=engine, jobs=jobs)
        )
        best = min(best, time.perf_counter() - started)
    return best, report


def leg(seconds: float, n_faults: int, total_ops: int, report=None) -> dict:
    out = {
        "seconds": round(seconds, 6),
        "faults_per_sec": round(n_faults / seconds, 1),
        "ops_per_sec": round(total_ops / seconds, 1),
    }
    if report is not None and report.has_pair_verdicts:
        # Aliasing-rate column: stream-detected faults the signature
        # missed, as a percentage of the whole universe.
        out["aliased_percent"] = round(report.aliased_percent, 4)
    if report is not None and report.context_stats is not None:
        # Campaign-context cache columns: the amortization trajectory
        # (builds -> 0 once every worker holds its contexts).
        stats = report.context_stats
        out["context_builds"] = stats.builds
        out["context_cache_hits"] = stats.hits
        out["context_cache_misses"] = stats.misses
        out["context_build_seconds"] = round(stats.build_seconds, 6)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--test", default="March C-")
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--words", type=int, default=8,
                        help="base workload size (reference-affordable)")
    parser.add_argument("--scaled-words", type=int, default=128,
                        help="scaled workload size (batch paths only); the "
                        "AF class grows quadratically, so this is where "
                        "per-fault subset work dominates and sharding pays")
    parser.add_argument("--max-inter-pairs", type=int, default=24)
    parser.add_argument("--misr-width", type=int, default=16)
    parser.add_argument("--narrow-misr-width", type=int, default=2,
                        help="MISR width of the aliasing_narrow leg; "
                        "narrow registers alias measurably, proving the "
                        "aliasing-rate column is live")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--megaword-words", type=int, default=1 << 20,
        help="memory size of the megaword packed-kernel leg",
    )
    parser.add_argument(
        "--megaword-classes", default="SAF,TF,RDF,DRDF",
        help="single-cell classes raced at megaword size (subset of "
        "SAF,TF,RDF,DRDF)",
    )
    parser.add_argument(
        "--megaword-samples", type=int, default=64,
        help="evenly-strided faults per class timed through the "
        "per-fault dispatch path (the whole class would take tens of "
        "minutes there — which is the point)",
    )
    parser.add_argument(
        "--megaword-spotchecks", type=int, default=2,
        help="low-address detected faults per class replayed through "
        "the reference interpreter as ground truth",
    )
    parser.add_argument(
        "--skip-megaword", action="store_true",
        help="skip the megaword leg (quick local runs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=max(2, min(4, os.cpu_count() or 1)),
        help="worker processes for the batch+jobs legs (>= 2 so the "
        "sharded runner is always exercised)",
    )
    args = parser.parse_args(argv)

    payload = {
        "workload": f"TWMarch {args.test} coverage campaign "
        "(Section 2 universe + RDF/DRDF/AF)",
        "width": args.width,
        "misr_width": args.misr_width,
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "workloads": {},
        "checks": {},
    }
    ok = True

    # -- base workload: reference vs batch, both oracles ----------------
    twm, universe, flows = build_workload(args, args.words)
    program = compile_march(twm.twmarch, args.width)
    n_faults = sum(len(faults) for faults in universe.values())
    # March operations an interpretive sweep must execute: every fault
    # replays the whole test over the whole memory (signature mode adds
    # the prediction pass on top; we keep the same op basis so the two
    # oracles' throughput numbers stay comparable).
    total_ops = n_faults * program.op_count * args.words
    base = {
        "n_words": args.words,
        "n_faults": n_faults,
        "op_count_per_address": program.op_count,
        "total_march_ops": total_ops,
        "modes": {},
    }
    for mode, flow in flows.items():
        ref_seconds, ref_report = measure(
            flow, universe, "reference", 1, args.repeats
        )
        with _FallbackCounter() as fallbacks:
            bat_seconds, bat_report = measure(
                flow, universe, "batch", 1, args.repeats
            )
        identical = (
            ref_report.coverage_vector() == bat_report.coverage_vector()
            and ref_report.aliasing_vector() == bat_report.aliasing_vector()
        )
        ok &= identical and fallbacks.calls == 0
        base["modes"][mode] = {
            "reference": leg(ref_seconds, n_faults, total_ops, ref_report),
            "batch": leg(bat_seconds, n_faults, total_ops, bat_report),
            "speedup_batch_vs_reference": round(ref_seconds / bat_seconds, 2),
            "vectors_identical": identical,
            "batch_reference_fallbacks": fallbacks.calls,
        }
    payload["workloads"]["base"] = base

    # -- scaled workload: batch vs batch+jobs, both oracles -------------
    _, universe, flows = build_workload(
        args, args.scaled_words, streaming=False
    )
    n_faults = sum(len(faults) for faults in universe.values())
    total_ops = n_faults * program.op_count * args.scaled_words
    scaled = {
        "n_words": args.scaled_words,
        "n_faults": n_faults,
        "total_march_ops": total_ops,
        "modes": {},
    }
    for mode, flow in flows.items():
        if mode == "aliasing_narrow":
            continue  # shards exactly like "aliasing"; skip the rerun
        # The counter only sees this process, so it wraps the
        # single-process leg; the jobs leg executes the identical
        # per-chunk code path in its workers.
        with _FallbackCounter() as fallbacks:
            bat_seconds, bat_report = measure(
                flow, universe, "batch", 1, args.repeats
            )
        par_seconds, par_report = measure(
            flow, universe, "batch", args.jobs, args.repeats
        )
        # Persistent-worker leg: one runner (one pool, one set of
        # worker context caches) across every repeat — after the first
        # repeat the workers rebuild nothing.
        with CampaignRunner("batch", args.jobs) as shared:
            shared.bind(flow.work_unit(), universe)
            warm_seconds, warm_report = measure(
                flow, universe, None, None, max(2, args.repeats),
                runner=shared,
            )
        identical = (
            bat_report.coverage_vector() == par_report.coverage_vector()
            and bat_report.aliasing_vector() == par_report.aliasing_vector()
            and bat_report.undetected == par_report.undetected
            and bat_report.coverage_vector() == warm_report.coverage_vector()
            and bat_report.aliasing_vector() == warm_report.aliasing_vector()
            and bat_report.undetected == warm_report.undetected
        )
        ok &= identical and fallbacks.calls == 0
        scaled["modes"][mode] = {
            "batch": leg(bat_seconds, n_faults, total_ops, bat_report),
            "batch_jobs": leg(par_seconds, n_faults, total_ops, par_report),
            "batch_jobs_warm": leg(
                warm_seconds, n_faults, total_ops, warm_report
            ),
            "speedup_jobs_vs_batch": round(bat_seconds / par_seconds, 2),
            "speedup_warm_jobs_vs_batch": round(
                bat_seconds / warm_seconds, 2
            ),
            "reports_identical": identical,
            "batch_reference_fallbacks": fallbacks.calls,
        }
    payload["workloads"]["scaled"] = scaled

    # -- mixed workload: three oracles through one persistent runner ----
    # The signature and aliasing oracles share one session context, so
    # after the signature campaign the aliasing campaign must build
    # nothing anywhere — the amortization claim, as a checked number.
    mixed_modes = ("compare", "signature", "aliasing")
    mixed = {
        "n_words": args.scaled_words,
        "n_faults": n_faults,
        "modes": {},
    }
    aliasing_builds = None
    with _FallbackCounter() as fallbacks, CampaignRunner(
        "batch", args.jobs
    ) as shared:
        shared.bind(
            [flows[m].work_unit() for m in mixed_modes], universe
        )
        started = time.perf_counter()
        for mode in mixed_modes:
            calls_before = fallbacks.calls
            mixed_report = run_campaign(flows[mode], universe, runner=shared)
            mixed["modes"][mode] = leg(
                max(mixed_report.seconds, 1e-9),
                n_faults,
                total_ops,
                mixed_report,
            )
            # The counter sees this process (the inline/small-class
            # path of the shared runner); worker chunks run the
            # identical per-chunk code, as in the jobs legs above.
            mixed["modes"][mode]["batch_reference_fallbacks"] = (
                fallbacks.calls - calls_before
            )
            if mode == "aliasing":
                aliasing_builds = mixed_report.context_stats.builds
        mixed["seconds_total"] = round(time.perf_counter() - started, 6)
    mixed["aliasing_context_builds"] = aliasing_builds
    # A cache regression here is a *context* failure, not a verdict one
    # — reported via its own checks field, never folded into
    # all_vectors_identical.  Tolerance: pool scheduling does not
    # guarantee every worker received a signature chunk, so a cold
    # worker may legitimately build its session context once during
    # the aliasing campaign; the per-worker amortization contract is
    # "at most one build per worker", i.e. <= jobs in total.
    mixed_ok = aliasing_builds <= args.jobs
    payload["workloads"]["mixed"] = mixed

    # -- chaos workload: supervised recovery under injected faults ------
    # Same scaled compare campaign, but the first SAF chunk kills its
    # worker, the first TF chunk raises, and the first RDF chunk returns
    # a truncated verdict vector.  No hang event: the deadline path is
    # covered by the test suite and a 600s sleep has no place in a
    # bench.  base_delay=0 keeps retries instant — the leg times the
    # supervision machinery (detection, respawn, re-dispatch, merge),
    # not the backoff schedule.
    chaos_plan = FaultPlan.parse("crash:SAF:0,error:TF:0,corrupt:RDF:0")
    chaos_retry = RetryPolicy(max_attempts=3, base_delay=0.0)
    clean_seconds, clean_report = measure(
        flows["compare"], universe, "batch", 1, args.repeats
    )
    with CampaignRunner(
        "batch", args.jobs, retry=chaos_retry, chaos=chaos_plan
    ) as supervised:
        supervised.bind(flows["compare"].work_unit(), universe)
        started = time.perf_counter()
        chaos_report = run_campaign(
            flows["compare"], universe, runner=supervised
        )
        chaos_seconds = time.perf_counter() - started
    ft = chaos_report.fault_tolerance
    recovered = (
        clean_report.coverage_vector() == chaos_report.coverage_vector()
        and clean_report.undetected == chaos_report.undetected
        and ft is not None
        and ft.crashes >= 1
        and ft.chunk_errors >= 1
        and ft.corrupt_chunks >= 1
        and ft.degraded_chunks == 0
    )
    ok &= recovered
    payload["workloads"]["chaos"] = {
        "n_words": args.scaled_words,
        "n_faults": n_faults,
        "plan": "crash:SAF:0,error:TF:0,corrupt:RDF:0",
        "clean_batch_seconds": round(clean_seconds, 6),
        "chaos_jobs_seconds": round(chaos_seconds, 6),
        "fault_tolerance": ft.as_dict() if ft is not None else None,
        "recovered_bit_identical": recovered,
    }
    if ft is not None and ft.any:
        print(
            render_table(
                ["fault-tolerance counter", "value"],
                counter_rows(ft.as_dict()),
                title="chaos leg: supervised recovery accounting",
            )
        )

    # -- megaword workload: packed class kernels at >= 2^20 words -------
    mega_ok = True
    if not args.skip_megaword:
        n = args.megaword_words
        available = {
            "SAF": StuckAtClass(n, args.width),
            "TF": TransitionClass(n, args.width),
            "RDF": ReadDisturbClass(n, args.width, deceptive=False),
            "DRDF": ReadDisturbClass(n, args.width, deceptive=True),
        }
        mega_names = [
            c.strip() for c in args.megaword_classes.split(",") if c.strip()
        ]
        unknown = [c for c in mega_names if c not in available]
        if unknown:
            parser.error(
                f"--megaword-classes: unknown {', '.join(unknown)} "
                f"(choose from {', '.join(available)})"
            )
        words = _initial_words(n, args.width, None, args.seed)
        started = time.perf_counter()
        ctx = batch_module._CampaignContext(
            compile_march(twm.twmarch, args.width), n, words, True
        )
        ctx_seconds = time.perf_counter() - started
        reference_flow = compare_flow(
            twm.twmarch, n, args.width, initial=words
        )
        mega = {
            "n_words": n,
            "context_build_seconds": round(ctx_seconds, 6),
            "perfault_samples_per_class": args.megaword_samples,
            "classes": {},
        }
        sampled_identical = True
        spot_identical = True
        spot_total = 0
        for cname in mega_names:
            fault_class = available[cname]
            started = time.perf_counter()
            packed = ctx.detect_class(fault_class)
            packed_seconds = max(time.perf_counter() - started, 1e-9)
            n_class = len(fault_class)
            stride = max(1, n_class // args.megaword_samples)
            sample_idx = list(range(0, n_class, stride))
            sample_idx = sample_idx[: args.megaword_samples]
            samples = [fault_class[i] for i in sample_idx]
            started = time.perf_counter()
            per_verdicts = [ctx.detect(fault) for fault in samples]
            per_seconds = max(time.perf_counter() - started, 1e-9)
            identical = per_verdicts == [packed[i] for i in sample_idx]
            sampled_identical &= identical
            packed_rate = n_class / packed_seconds
            per_rate = len(samples) / per_seconds
            mega["classes"][cname] = {
                "n_faults": n_class,
                "packed_seconds": round(packed_seconds, 6),
                "packed_faults_per_sec": round(packed_rate, 1),
                "perfault_faults_per_sec": round(per_rate, 1),
                "speedup_packed_vs_perfault": round(
                    packed_rate / per_rate, 2
                ),
                "sampled_verdicts_identical": identical,
            }
            # Ground truth: the first few *detected* samples sit at the
            # lowest sampled addresses, so the stop-on-mismatch
            # interpreter terminates within the first march elements.
            spots = [
                fault
                for i, fault in zip(sample_idx, samples)
                if packed[i]
            ][: args.megaword_spotchecks]
            for fault in spots:
                spot_total += 1
                spot_identical &= reference_flow(fault) is True
        mega["min_speedup_packed_vs_perfault"] = min(
            c["speedup_packed_vs_perfault"]
            for c in mega["classes"].values()
        )
        mega["sampled_verdicts_identical"] = sampled_identical
        mega["reference_spotchecks"] = spot_total
        mega["reference_spotcheck_identical"] = spot_identical
        mega_ok = sampled_identical and spot_identical
        ok &= mega_ok
        payload["workloads"]["megaword"] = mega

    payload["checks"] = {
        "all_vectors_identical": ok,
        "af_fast_path": all(
            w["modes"][m]["batch_reference_fallbacks"] == 0
            for w in payload["workloads"].values()
            for m in w.get("modes", ())
        ),
        # The mixed run's aliasing campaign reused the session contexts
        # the signature campaign built (allowing one cold build per
        # worker the pool scheduler never handed a signature chunk).
        "mixed_aliasing_reused_contexts": mixed_ok,
        # The chaos leg's supervised runner recovered every injected
        # fault (crash, raising chunk, corrupt chunk) into a report
        # bit-identical to the undisturbed single-process run.
        "chaos_recovered": recovered,
        "single_core_note": (
            "jobs legs cannot exceed 1x on a single-CPU host"
            if (os.cpu_count() or 1) < 2
            else None
        ),
    }

    text = json.dumps(payload, indent=2) + "\n"
    ROOT_OUT.write_text(text, encoding="utf-8")
    MIRROR_OUT.parent.mkdir(exist_ok=True)
    MIRROR_OUT.write_text(text, encoding="utf-8")
    print(text, end="")
    if not ok:
        print("ERROR: engines disagree on coverage or fallback detected")
        return 1
    if not mixed_ok:
        print(
            "ERROR: mixed-mode aliasing campaign rebuilt session contexts "
            f"({aliasing_builds} builds for {args.jobs} workers; the "
            "signature campaign should have warmed every cache)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
