"""Engine speedup benchmark: batch vs reference on a coverage campaign.

Runs the E7 fault-coverage workload (TWMarch of March C-, the standard
Section 2 fault universe) through both registered engines, checks the
coverage vectors are bit-identical, and reports wall-clock, simulated
march-operation throughput and the speedup ratio as JSON (printed and
saved to ``benchmarks/out/engine_speedup.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py
    PYTHONPATH=src python benchmarks/bench_engine_speedup.py --words 16 --width 8
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time

from repro.analysis.coverage import compare_flow, run_campaign
from repro.core.twm import twm_transform
from repro.engine import compile_march
from repro.library import catalog
from repro.memory.injection import standard_fault_universe

OUT_PATH = pathlib.Path(__file__).parent / "out" / "engine_speedup.json"


def measure(flow, universe, engine: str, repeats: int) -> tuple[float, dict]:
    """Best-of-*repeats* wall-clock for one full campaign."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        started = time.perf_counter()
        report = run_campaign(flow, universe, engine=engine)
        best = min(best, time.perf_counter() - started)
    return best, report.coverage_vector()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--test", default="March C-")
    parser.add_argument("--words", type=int, default=4)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--max-inter-pairs", type=int, default=24)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    twm = twm_transform(catalog.get(args.test), args.width)
    program = compile_march(twm.twmarch, args.width)
    universe = standard_fault_universe(
        args.words,
        args.width,
        max_inter_pairs=args.max_inter_pairs,
        rng=random.Random(0),
    )
    n_faults = sum(len(faults) for faults in universe.values())
    # March operations an interpretive sweep must execute: every fault
    # replays the whole test over the whole memory.
    total_ops = n_faults * program.op_count * args.words
    flow = compare_flow(
        twm.twmarch, args.words, args.width, initial=None, seed=args.seed
    )

    results = {}
    vectors = {}
    for engine in ("reference", "batch"):
        seconds, vector = measure(flow, universe, engine, args.repeats)
        results[engine] = {
            "seconds": round(seconds, 6),
            "faults_per_sec": round(n_faults / seconds, 1),
            "ops_per_sec": round(total_ops / seconds, 1),
        }
        vectors[engine] = vector

    payload = {
        "workload": f"TWMarch {args.test} coverage campaign",
        "n_words": args.words,
        "width": args.width,
        "op_count_per_address": program.op_count,
        "n_faults": n_faults,
        "total_march_ops": total_ops,
        "reference": results["reference"],
        "batch": results["batch"],
        "speedup": round(
            results["reference"]["seconds"] / results["batch"]["seconds"], 2
        ),
        "vectors_identical": vectors["reference"] == vectors["batch"],
    }

    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    if not payload["vectors_identical"]:
        print("ERROR: engines disagree on coverage")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
