"""E7 — Section 5's coverage theorem, verified by fault simulation.

Claim: the transparent word-oriented March test produced by TWM_TA
preserves the fault coverage (SAF, TF, CFin, CFid, CFst — intra-word
and inter-word) of the corresponding non-transparent word-oriented test
``SMarch + AMarch``.

We enumerate the full Section 2 fault universe on a small word-oriented
memory, simulate every fault through both tests, and compare per-class
coverage.  Reproduced result: exact equality for SAF, TF, CFin (both),
CFid (both) and inter-word CFst; intra-word CFst differs because a
state-coupling whose forcing is already consistently expressed in the
(unknown) initial content is invisible to *any* transparent test while
the non-transparent comparator checks absolute data (see
EXPERIMENTS.md §E7 for the analysis).
"""

import os
import random

from conftest import save_artifact

from repro.analysis.coverage import compare_flow, compare_reports, run_campaign
from repro.analysis.reports import render_table
from repro.core.twm import nontransparent_word_reference, twm_transform
from repro.library import catalog
from repro.memory.injection import standard_fault_universe

N_WORDS, WIDTH = 4, 8
MAX_INTER_PAIRS = 24
# Simulation backend: engines are equivalence-tested to produce
# bit-identical coverage, so the reproduced numbers cannot depend on
# this choice (CI runs the benchmark under both).
ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "reference")


def generate():
    test = catalog.get("March C-")
    twm = twm_transform(test, WIDTH)
    ref = nontransparent_word_reference(test, WIDTH)
    universe = standard_fault_universe(
        N_WORDS, WIDTH, max_inter_pairs=MAX_INTER_PAIRS, rng=random.Random(0)
    )

    rep_ref = run_campaign(
        compare_flow(ref, N_WORDS, WIDTH, initial=0),
        universe,
        flow_name="SMarch+AMarch (non-transparent)",
        engine=ENGINE,
    )
    rep_twm = run_campaign(
        compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=None, seed=11),
        universe,
        flow_name="TWMarch (transparent, random content)",
        engine=ENGINE,
    )
    rep_twm_c0 = run_campaign(
        compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=0),
        universe,
        flow_name="TWMarch (transparent, c=0)",
        engine=ENGINE,
    )
    return universe, rep_ref, rep_twm, rep_twm_c0


def test_fault_coverage_equality(benchmark):
    universe, rep_ref, rep_twm, rep_twm_c0 = benchmark(generate)

    rows = []
    for name in sorted(universe):
        rows.append(
            (
                name,
                len(universe[name]),
                f"{rep_ref.classes[name].percent:.2f}%",
                f"{rep_twm.classes[name].percent:.2f}%",
                f"{rep_twm_c0.classes[name].percent:.2f}%",
            )
        )
    table = render_table(
        [
            "Fault class",
            "Faults",
            "SMarch+AMarch",
            "TWMarch (random c)",
            "TWMarch (c=0)",
        ],
        rows,
        title=(
            "Section 5 — fault coverage of the non-transparent reference "
            f"vs the transparent TWMarch (March C-, {N_WORDS}x{WIDTH})"
        ),
    )
    save_artifact("fault_coverage_equality", table)

    # 100% on the classes March C- fully covers at the word level.
    for name in ("SAF", "TF", "CFin-intra", "CFin-inter", "CFid-inter",
                 "CFst-inter"):
        assert rep_ref.classes[name].percent == 100.0, name
        assert rep_twm.classes[name].percent == 100.0, name

    # Exact equality on every class except the documented intra-word
    # CFst static-visibility gap.
    for name, twm_pct, ref_pct, delta in compare_reports(rep_twm, rep_ref):
        if name == "CFst-intra":
            assert ref_pct > twm_pct  # reference sees static CFst
        else:
            assert delta == 0.0, f"{name}: twm={twm_pct} ref={ref_pct}"

    # Transparent coverage is content-independent (XOR bijection over a
    # complement-closed fault universe).
    assert rep_twm.coverage_vector() == rep_twm_c0.coverage_vector()
