"""E2 — Table 2: symbolic TCM/TCP comparison of the three schemes.

Regenerates the closed-form complexity table and cross-checks every
formula against exact operation counts of the generated tests across a
grid of March tests and word widths.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.baselines.scheme1 import scheme1_formula_tcm, scheme1_transform
from repro.baselines.tomt import tomt_tcm, tomt_test
from repro.core.backgrounds import log2_width
from repro.core.complexity import table2_rows, twm_formula_tcm, twm_formula_tcp
from repro.core.twm import twm_transform
from repro.library import catalog


def generate():
    rows = table2_rows()
    # Cross-check the closed forms against generated tests.
    checks = []
    for name in ("March C-", "March X", "March Y", "March LR"):
        test = catalog.get(name)
        for width in (2, 4, 8, 16, 32, 64):
            twm = twm_transform(test, width)
            checks.append(
                (
                    name,
                    width,
                    twm.tcm,
                    twm_formula_tcm(test.op_count, width),
                    twm.tcp,
                    twm_formula_tcp(test.n_reads, width),
                )
            )
    return rows, checks


def test_table2_symbolic_complexity(benchmark):
    rows, checks = benchmark(generate)

    table = render_table(
        ["Scheme", "TCM", "TCP"],
        rows,
        title="Table 2 — time complexity of the transparent test schemes",
    )
    check_table = render_table(
        ["Test", "b", "TCM measured", "TCM formula", "TCP measured", "TCP formula"],
        checks,
        title="Closed forms vs exact operation counts (read-ending tests)",
    )
    save_artifact("table2_symbolic", table + "\n\n" + check_table)

    assert len(rows) == 3
    for _, width, tcm_m, tcm_f, tcp_m, tcp_f in checks:
        assert tcm_m == tcm_f
        assert tcp_m == tcp_f

    # TOMT's formula matches its generated test exactly, for any width.
    for width in (4, 8, 32):
        assert tomt_test(width).op_count == tomt_tcm(width)

    # Scheme 1's closed form is a lower bound of the executable
    # construction and within 2*log2(b)+1 of it.
    t = catalog.get("March C-")
    for width in (4, 8, 32):
        measured = scheme1_transform(t, width).tcm
        formula = scheme1_formula_tcm(t.op_count, width)
        assert formula <= measured <= formula + 2 * log2_width(width) + 1
