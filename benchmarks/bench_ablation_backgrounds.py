"""A2 — ablation: ATMarch background-plan size vs intra-word coverage.

TWM_TA's central design choice is to exercise intra-word coupling with
``log2 b`` checkerboard elements instead of repeating the whole test per
background.  This ablation truncates/extends the pattern set and
measures intra-word CF coverage, showing:

* solid backgrounds alone (no ATMarch patterns) miss most intra-word
  CFs;
* each checkerboard adds coverage; all ``log2 b`` are needed to reach
  the paper's level (the plan is minimal: fewer patterns cannot
  separate all bit pairs);
* adding the *complement* checkerboards (doubling ATMarch, Scheme 1's
  effective pattern set) buys the remaining orientation-dependent CFst
  conditions — the cost/coverage trade-off the paper implicitly makes.
"""

from conftest import save_artifact

from repro.analysis.coverage import compare_flow, run_campaign
from repro.analysis.reports import render_table
from repro.core.element import AddressOrder, MarchElement
from repro.core.march import MarchTest
from repro.core.ops import DataExpr, Mask, Op, checker
from repro.core.transparent import to_transparent
from repro.core.twm import solid_background_test
from repro.library import catalog
from repro.memory.injection import enumerate_intra_word_cf

N_WORDS, WIDTH = 2, 8
LEVELS = 3  # log2(8)


def tail_with_patterns(masks):
    """An ATMarch-style tail writing the given pattern masks."""
    elements = []
    for mask in masks:
        elements.append(
            MarchElement(
                AddressOrder.ANY,
                (
                    Op.read(DataExpr(True, Mask.ZERO)),
                    Op.write(DataExpr(True, mask)),
                    Op.read(DataExpr(True, mask)),
                    Op.write(DataExpr(True, Mask.ZERO)),
                    Op.read(DataExpr(True, Mask.ZERO)),
                ),
            )
        )
    elements.append(
        MarchElement(AddressOrder.ANY, (Op.read(DataExpr(True, Mask.ZERO)),))
    )
    return MarchTest(f"tail[{len(masks)}]", tuple(elements))


def generate():
    base = to_transparent(
        solid_background_test(catalog.get("March C-"))[0], restore=False
    ).transparent
    universe = {
        "CFid-intra": list(enumerate_intra_word_cf(N_WORDS, WIDTH, ("CFid",))),
        "CFin-intra": list(enumerate_intra_word_cf(N_WORDS, WIDTH, ("CFin",))),
        "CFst-intra": list(enumerate_intra_word_cf(N_WORDS, WIDTH, ("CFst",))),
    }

    checkers = [Mask.of(checker(k)) for k in range(1, LEVELS + 1)]
    complements = [m ^ Mask.ONES for m in checkers]
    plans = {
        "no patterns": [],
        "D1": checkers[:1],
        "D1..D2": checkers[:2],
        "D1..D3 (TWM_TA)": checkers,
        "D1..D3 + complements": checkers + complements,
    }

    rows = []
    for label, masks in plans.items():
        test = base.concat(tail_with_patterns(masks), name=label)
        flow = compare_flow(test, N_WORDS, WIDTH, initial=None, seed=3)
        report = run_campaign(flow, universe, flow_name=label)
        vec = report.coverage_vector()
        rows.append(
            (
                label,
                test.op_count,
                vec["CFid-intra"],
                vec["CFin-intra"],
                vec["CFst-intra"],
            )
        )
    return rows


def test_ablation_background_plan(benchmark):
    rows = benchmark.pedantic(generate, rounds=1, iterations=1)

    table = render_table(
        ["Pattern plan", "TCM/n", "CFid-intra %", "CFin-intra %", "CFst-intra %"],
        [
            (label, c, f"{a:.2f}", f"{b:.2f}", f"{d:.2f}")
            for label, c, a, b, d in rows
        ],
        title=(
            "Ablation A2 — ATMarch pattern-plan size vs intra-word CF "
            f"coverage (March C-, b={WIDTH})"
        ),
    )
    save_artifact("ablation_backgrounds", table)

    by_label = {label: row for label, *row in rows}

    # Coverage grows monotonically with the plan for CFid.
    plans = ("no patterns", "D1", "D1..D2", "D1..D3 (TWM_TA)")
    cfid = [by_label[label][1] for label in plans]
    assert cfid == sorted(cfid)
    assert cfid[-1] > cfid[0]

    # The full log2(b) plan is needed: truncations lose CFid coverage.
    assert by_label["D1..D2"][1] < by_label["D1..D3 (TWM_TA)"][1]

    # Complement patterns repair the orientation-dependent CFst gap.
    assert (
        by_label["D1..D3 + complements"][3]
        > by_label["D1..D3 (TWM_TA)"][3]
    )

    # ...at a real cost in test length.
    assert by_label["D1..D3 + complements"][0] > by_label["D1..D3 (TWM_TA)"][0]
