"""E1 — Table 1: word content during the first three ATMarch elements.

The paper's Table 1 lists the symbolic content of one 8-bit word
(``a7 .. a0``) after each operation of ATMarch's first three march
elements.  We regenerate it from the ATMarch produced by TWM_TA for
March U on 8-bit words (the paper's Section 4 example) and assert the
structural properties the table exhibits.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.analysis.symbolic import table1_rows
from repro.core.twm import twm_transform
from repro.library import catalog


def generate():
    result = twm_transform(catalog.get("March U"), 8)
    return result, table1_rows(result.atmarch, width=8)


def test_table1_atmarch_states(benchmark):
    result, rows = benchmark(generate)

    table = render_table(
        ["Test operation", "Word content after the operation"],
        rows,
        title=(
            "Table 1 — content of an 8-bit word during the first three "
            "ATMarch elements (ATMarch of TWMarch U)"
        ),
    )
    save_artifact("table1_atmarch_states", table)

    # Three five-op elements.
    assert len(rows) == 15

    # Element k applies D_k and removes it again (transparency per
    # element); the paper's D1/D2/D3 are 01010101, 00110011, 00001111.
    plain = "a7 a6 a5 a4 a3 a2 a1 a0"
    assert rows[0] == ("rc", plain)
    assert rows[1] == ("w(c^D1)", "a7 ~a6 a5 ~a4 a3 ~a2 a1 ~a0")
    assert rows[6] == ("w(c^D2)", "a7 a6 ~a5 ~a4 a3 a2 ~a1 ~a0")
    assert rows[11] == ("w(c^D3)", "a7 a6 a5 a4 ~a3 ~a2 ~a1 ~a0")
    for idx in (4, 9, 14):  # element-final reads
        assert rows[idx][1] == plain

    # Every element is the paper's (r, w^Dk, r, w, r) shape.
    kinds = [op[0] for op, _ in rows]
    assert kinds == list("rwrwr") * 3
