"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, asserts
the reproduction claims on it, saves the rendered artifact under
``benchmarks/out/``, and times the generating computation with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

and inspect ``benchmarks/out/*.txt`` for the regenerated artifacts.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_artifact(name: str, text: str) -> pathlib.Path:
    """Write a rendered table/figure to ``benchmarks/out/<name>.txt``."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path
