"""A4 — ablation: symmetric (single-phase) vs two-phase transparent BIST.

The paper's related work ([18] Yarmolik/Hellebrand) removes the
signature-prediction phase by making the transparent test *symmetric*:
its fault-free signature is independent of the memory content, so the
reference can be precomputed.  This ablation implements that trade-off
with lane-interleaved XOR compaction and measures, against the paper's
two-phase TWMarch flow:

* session cost (the symmetric flow saves the whole TCP);
* detection over the exhaustive SAF+TF universe, showing the
  compaction risk: a 1-lane (plain XOR) compactor systematically masks
  even-multiplicity errors (~50 % loss), 3 lanes repair it here, while
  the shifting 16-bit MISR of the two-phase flow detects everything.
"""

import random

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.bist.controller import TransparentBist
from repro.bist.symmetry import SymmetricBist, content_dependence
from repro.bist.misr import Misr
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.injection import (
    FaultyMemory,
    enumerate_stuck_at,
    enumerate_transition,
)

N_WORDS, WIDTH = 4, 8


def generate():
    result = twm_transform(catalog.get("March C-"), WIDTH)
    faults = list(enumerate_stuck_at(N_WORDS, WIDTH)) + list(
        enumerate_transition(N_WORDS, WIDTH)
    )

    flows = {}
    two_phase = TransparentBist.from_twm(result)
    flows["two-phase MISR16"] = (
        result.tcm + result.tcp,
        lambda m: two_phase.run(m).detected,
    )
    for lanes in (1, 2, 3):
        bist = SymmetricBist(result.twmarch, N_WORDS, WIDTH, lanes=lanes)
        flows[f"symmetric {lanes}-lane"] = (bist.session_ops, bist.run)

    rows = []
    for label, (cost, flow) in flows.items():
        detected = 0
        for fault in faults:
            memory = FaultyMemory(N_WORDS, WIDTH, [fault])
            memory.randomize(random.Random(5))
            detected += flow(memory)
        rows.append((label, cost, detected, len(faults)))

    # MISR content dependence: why the plain two-phase flow *needs* the
    # prediction pass.
    dependence = content_dependence(
        result.twmarch, N_WORDS, WIDTH, Misr(16)
    )
    return rows, dependence


def test_ablation_symmetric_bist(benchmark):
    rows, dependence = benchmark.pedantic(generate, rounds=1, iterations=1)

    table = render_table(
        ["Flow", "Session ops/word", "Detected", "Faults"],
        rows,
        title=(
            "Ablation A4 — single-phase symmetric BIST vs two-phase "
            f"(March C- TWMarch, {N_WORDS}x{WIDTH}, SAF+TF universe)"
        ),
    )
    note = (
        f"\nMISR16 signature depends on {dependence.dependent_cells} content "
        "bits -> a non-symmetric test needs the prediction phase."
    )
    save_artifact("ablation_symmetric", table + note)

    by_label = {label: (cost, det, total) for label, cost, det, total in rows}

    # The two-phase flow detects everything but pays TCM+TCP.
    cost2, det2, total = by_label["two-phase MISR16"]
    assert det2 == total

    # Symmetric flows cost less per session (no prediction pass, modulo
    # a few padding reads).
    for lanes in (1, 2, 3):
        cost, _, _ = by_label[f"symmetric {lanes}-lane"]
        assert cost < cost2

    # Plain XOR masks heavily; 3 lanes repair SAF/TF detection here.
    _, det1, _ = by_label["symmetric 1-lane"]
    _, det3, _ = by_label["symmetric 3-lane"]
    assert det1 < total
    assert det3 == total

    # The shifting MISR really is content-dependent on this test.
    assert not dependence.symmetric
