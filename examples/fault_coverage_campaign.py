#!/usr/bin/env python3
"""Fault-simulation campaign: the Section 5 coverage experiment.

Enumerates the classic fault universe (SAF, TF, CFst/CFid/CFin — both
intra-word and inter-word) on a small word-oriented memory and pushes
every fault through three detection flows:

* the non-transparent word-oriented reference test (SMarch+AMarch);
* the proposed transparent TWMarch under random user content;
* the Scheme 1 transparent baseline.

The per-class table shows the paper's coverage-preservation theorem —
and the one place it bends (intra-word CFst; see EXPERIMENTS.md §E7).

Run:  python examples/fault_coverage_campaign.py [--seed N]
"""

import argparse
import random

from repro import (
    library,
    nontransparent_word_reference,
    render_table,
    run_campaign,
    scheme1_transform,
    standard_fault_universe,
    twm_transform,
)
from repro.analysis.coverage import compare_flow

N_WORDS, WIDTH = 4, 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed of the fault-universe sampling; the transparent "
        "flows' user content derives from it (seed + 11)",
    )
    args = parser.parse_args()

    march = library.get("March C-")
    twm = twm_transform(march, WIDTH)
    scheme1 = scheme1_transform(march, WIDTH)
    reference = nontransparent_word_reference(march, WIDTH)

    universe = standard_fault_universe(
        N_WORDS, WIDTH, max_inter_pairs=24, rng=random.Random(args.seed)
    )
    total = sum(len(v) for v in universe.values())
    print(f"fault universe: {total} faults on a {N_WORDS}x{WIDTH} memory")

    flows = {
        "reference": compare_flow(reference, N_WORDS, WIDTH, initial=0),
        "TWMarch": compare_flow(
            twm.twmarch, N_WORDS, WIDTH, initial=None, seed=args.seed + 11
        ),
        "Scheme 1": compare_flow(
            scheme1.transparent,
            N_WORDS,
            WIDTH,
            initial=None,
            seed=args.seed + 11,
        ),
    }
    reports = {
        name: run_campaign(flow, universe, flow_name=name)
        for name, flow in flows.items()
    }

    rows = []
    for cls in sorted(universe):
        rows.append(
            (
                cls,
                len(universe[cls]),
                f"{reports['reference'].classes[cls].percent:.2f}%",
                f"{reports['TWMarch'].classes[cls].percent:.2f}%",
                f"{reports['Scheme 1'].classes[cls].percent:.2f}%",
            )
        )
    print(
        render_table(
            ["Fault class", "Faults", "SMarch+AMarch", "TWMarch", "Scheme 1"],
            rows,
            title="Per-class fault coverage (March C-)",
        )
    )

    print()
    print("costs at this word width:")
    print(f"  TWMarch : {twm.tcm + twm.tcp}n")
    print(f"  Scheme 1: {scheme1.tcm + scheme1.tcp}n")
    missed = reports["TWMarch"].undetected.get("CFst-intra", [])
    if missed:
        print()
        print("sample intra-word CFst faults invisible to transparent tests:")
        for fault in missed[:5]:
            print(f"  {fault.describe()}")


if __name__ == "__main__":
    main()
