#!/usr/bin/env python3
"""Quickstart: transform a March test and run a transparent BIST session.

Walks the paper's core flow end to end:

1. take a classic bit-oriented March test (March C−);
2. transform it with TWM_TA into a transparent word-oriented test;
3. run the two-phase BIST (signature prediction, then test) on a
   fault-free memory holding arbitrary user data — signatures match and
   the content is untouched;
4. inject a stuck-at fault and run again — the signatures diverge.

Run:  python examples/quickstart.py [--seed N]
"""

import argparse
import random

from repro import (
    FaultyMemory,
    Memory,
    StuckAtFault,
    TransparentBist,
    library,
    twm_transform,
)
from repro.memory import Cell


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=2025,
        help="seed of the random user content the session runs over",
    )
    args = parser.parse_args()

    # 1. The bit-oriented starting point.
    march_cm = library.get("March C-")
    print(march_cm.describe())
    print()

    # 2. TWM_TA for a memory with 32-bit words.
    result = twm_transform(march_cm, width=32)
    print("TSMarch :", result.tsmarch)
    print("ATMarch :", result.atmarch)
    print("summary :", result.summary())
    print()

    # 3. Fault-free session on random user data.
    memory = Memory(n_words=64, width=32)
    memory.randomize(random.Random(args.seed))
    user_data = memory.snapshot()

    bist = TransparentBist.from_twm(result, misr_width=16)
    outcome = bist.run(memory)
    print("fault-free session:")
    print(f"  predicted signature: {outcome.predicted_signature:#06x}")
    print(f"  test signature     : {outcome.test_signature:#06x}")
    print(f"  fault detected     : {outcome.detected}")
    print(f"  content preserved  : {memory.snapshot() == user_data}")
    print()

    # 4. The same session with a defect present.
    faulty = FaultyMemory(64, 32, [StuckAtFault(Cell(17, 5), 1)])
    faulty.load(user_data)
    outcome = bist.run(faulty)
    print("faulty session (SAF1 at word 17, bit 5):")
    print(f"  predicted signature: {outcome.predicted_signature:#06x}")
    print(f"  test signature     : {outcome.test_signature:#06x}")
    print(f"  fault detected     : {outcome.detected}")


if __name__ == "__main__":
    main()
