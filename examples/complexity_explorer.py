#!/usr/bin/env python3
"""Regenerate the paper's complexity comparisons (Tables 2 & 3).

Prints the symbolic Table 2, the word-size sweep of Table 3 (with
measured op counts of the generated tests), and the headline 56 % /
19 % example, then explores how the advantage scales across the whole
March-test catalog.

Run:  python examples/complexity_explorer.py
"""

from repro import library, render_table, table2_rows, table3_rows
from repro.core.complexity import (
    headline_ratios,
    scheme1_cost,
    tomt_cost,
    twm_cost,
)


def main() -> None:
    print(
        render_table(
            ["Scheme", "TCM", "TCP"],
            table2_rows(),
            title="Table 2 — symbolic time complexity",
        )
    )
    print()

    rows = table3_rows(
        [library.get("March C-"), library.get("March U")],
        widths=(16, 32, 64, 128),
    )
    print(
        render_table(
            ["Test", "b", "Scheme 1 [12]", "TOMT [13]", "This work",
             "vs [12]", "vs [13]"],
            [
                (
                    r.test,
                    r.width,
                    f"{r.scheme1_measured.total}n",
                    f"{r.tomt.total}n",
                    f"{r.this_work.total}n",
                    f"{r.ratio_vs_scheme1:.0%}",
                    f"{r.ratio_vs_tomt:.0%}",
                )
                for r in rows
            ],
            title="Table 3 — total complexity (TCM+TCP) vs word size",
        )
    )
    print()

    h = headline_ratios(library.get("March C-"), 32)
    print(
        f"Headline (March C-, b=32): this work {h.this_work.total}n — "
        f"{h.vs_scheme1:.1%} of Scheme 1, {h.vs_tomt:.1%} of TOMT"
    )
    print()

    print(
        render_table(
            ["March test", "N", "Q", "This work (b=32)", "Scheme 1 (b=32)",
             "TOMT (b=32)"],
            [
                (
                    name,
                    library.get(name).op_count,
                    library.get(name).n_reads,
                    f"{twm_cost(library.get(name), 32).total}n",
                    f"{scheme1_cost(library.get(name), 32).total}n",
                    f"{tomt_cost(32).total}n",
                )
                for name in library.names()
            ],
            title="Catalog sweep — every March test at b=32",
        )
    )


if __name__ == "__main__":
    main()
