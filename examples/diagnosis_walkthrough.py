#!/usr/bin/env python3
"""Diagnosis: localizing and classifying a defect from a failing session.

A transparent BIST session only says *pass/fail*; for repair (row/column
replacement) or failure analysis the read log can say much more.  This
walkthrough injects a spectrum of defects, runs the TWMarch session in
record-collecting mode, and prints what the diagnosis engine concludes
about each.

Run:  python examples/diagnosis_walkthrough.py [--seed N]
"""

import argparse
import random

from repro import FaultyMemory, library, twm_transform
from repro.analysis.diagnosis import diagnose_memory
from repro.memory import (
    AddressDecoderFault,
    Cell,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)

N_WORDS, WIDTH = 8, 8

SCENARIOS = [
    ("stuck-at-1 cell", [StuckAtFault(Cell(5, 3), 1)], None),
    ("stuck-at-0 cell", [StuckAtFault(Cell(2, 6), 0)], None),
    ("rising transition fault", [TransitionFault(Cell(4, 2), True)], 0xFF),
    ("inversion coupling (inter-word)",
     [InversionCouplingFault(Cell(2, 1), Cell(6, 1), rising=True)], None),
    ("state coupling (intra-word)",
     [StateCouplingFault(Cell(3, 0), Cell(3, 5), 1, 0)], None),
    ("deceptive read disturb", [ReadDisturbFault(Cell(1, 4), True)], None),
    ("dead address (decoder)", [AddressDecoderFault(3, "none")], None),
    ("shorted addresses (decoder)", [AddressDecoderFault(1, "multi", 6)], None),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=13,
        help="seed of the random user content each scenario runs over",
    )
    args = parser.parse_args()

    result = twm_transform(library.get("March C-"), WIDTH)
    print(f"test: {result.twmarch.name} ({result.tcm} ops/word)\n")
    for label, faults, fill in SCENARIOS:
        memory = FaultyMemory(N_WORDS, WIDTH, faults)
        if fill is None:
            memory.randomize(random.Random(args.seed))
        else:
            memory.fill(fill)
        diagnosis = diagnose_memory(result.twmarch, memory)
        truth = ", ".join(f.describe() for f in faults)
        print(f"injected: {truth}")
        print(diagnosis.render())
        print()


if __name__ == "__main__":
    main()
