#!/usr/bin/env python3
"""Inside the BIST datapath: signature prediction, compaction, aliasing.

Shows the mechanics the paper's schemes build on:

* how the prediction pass XOR-corrects raw reads so the MISR
  accumulates the signature the test phase should produce;
* that the signature is identical for any initial memory content
  (transparency of the signature flow);
* how narrow signature registers alias — the weakness that motivated
  the alias-free schemes ([9], [13]) the paper compares against.

Run:  python examples/signature_bist_demo.py [--seed N]
"""

import argparse
import random

from repro import (
    FaultyMemory,
    Memory,
    Misr,
    StuckAtFault,
    library,
    read_stream,
    twm_transform,
)
from repro.bist.controller import TransparentBist
from repro.memory import Cell

N_WORDS, WIDTH = 16, 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=3,
        help="base seed; the content-independence and aliasing sweeps "
        "derive their per-run seeds from it",
    )
    args = parser.parse_args()

    result = twm_transform(library.get("March C-"), WIDTH)

    # --- prediction mechanics -------------------------------------------
    memory = Memory(N_WORDS, WIDTH)
    memory.randomize(random.Random(args.seed))
    stream = read_stream(result.twmarch, memory)
    print(f"test phase produces {len(stream)} reads per session")
    print(f"first reads (raw): {[f'{v:02x}' for v in stream[:6]]}")

    misr = Misr(16)
    misr.absorb_all(stream)
    print(f"test-phase signature: {misr.signature:#06x}")

    bist = TransparentBist.from_twm(result, misr_width=16)
    outcome = bist.run(memory)
    print(
        f"prediction-phase signature: {outcome.predicted_signature:#06x} "
        f"(match: {outcome.predicted_signature == misr.signature})"
    )
    print()

    # --- content independence --------------------------------------------
    print("signatures for different user contents (they differ — the")
    print("signature tracks the data — but prediction always matches):")
    for offset in (1, 2, 3):
        seed = args.seed + offset
        m = Memory(N_WORDS, WIDTH)
        m.randomize(random.Random(seed))
        o = bist.run(m)
        print(
            f"  seed {seed}: predicted={o.predicted_signature:#06x} "
            f"test={o.test_signature:#06x} detected={o.detected}"
        )
    print()

    # --- aliasing ----------------------------------------------------------
    print("aliasing: fraction of detectable SAFs whose wrong read stream")
    print("collides with the predicted signature, by MISR width:")
    for width in (1, 2, 4, 8, 16):
        narrow = TransparentBist.from_twm(result, misr_width=width)
        aliased = detected = 0
        for addr in range(N_WORDS):
            for value in (0, 1):
                m = FaultyMemory(N_WORDS, WIDTH, [StuckAtFault(Cell(addr, 3), value)])
                m.randomize(random.Random(args.seed + addr))
                o = narrow.run(m)
                detected += o.detected
                aliased += o.aliased
        total = N_WORDS * 2
        print(
            f"  {width:>2}-bit MISR: detected {detected}/{total}, "
            f"aliased {aliased}/{total}"
        )


if __name__ == "__main__":
    main()
