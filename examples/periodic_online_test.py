#!/usr/bin/env python3
"""Life-time scenario: periodic transparent testing in system idle time.

Simulates the deployment the paper targets: an embedded memory serves a
workload; whenever the system idles, the BIST advances a transparent
test session (prediction phase, then test phase).  A system write
invalidates the predicted signature, aborting the session — which is
exactly why test length matters.  A quarter into the simulation a
stuck-at defect appears; the report shows how quickly each scheme's
periodic test catches it.

Run:  python examples/periodic_online_test.py
"""

import random

from repro import (
    FaultyMemory,
    OnlineTestScheduler,
    StuckAtFault,
    library,
    random_workload,
    scheme1_transform,
    twm_transform,
)
from repro.memory import Cell

N_WORDS, WIDTH = 4, 32
CYCLES = 60_000


def simulate(label, test, prediction, idle_fraction):
    memory = FaultyMemory(N_WORDS, WIDTH)
    memory.randomize(random.Random(7))
    scheduler = OnlineTestScheduler(
        memory, test, prediction, ops_per_idle_cycle=2, rng=random.Random(1)
    )
    workload = random_workload(
        N_WORDS, WIDTH, idle_fraction=idle_fraction, write_fraction=0.02
    )
    report = scheduler.run(
        workload,
        CYCLES,
        fault_at=(
            CYCLES // 4,
            lambda mem: mem.inject(StuckAtFault(Cell(2, 9), 0)),
        ),
    )
    latency = report.detection_latency
    print(
        f"  {label:<10} sessions={report.sessions_completed:<5} "
        f"aborted={report.sessions_aborted:<5} "
        f"detection latency={latency if latency is not None else 'MISSED'}"
    )


def main() -> None:
    march = library.get("March C-")
    twm = twm_transform(march, WIDTH)
    s1 = scheme1_transform(march, WIDTH)

    print(f"memory: {N_WORDS} words x {WIDTH} bits, {CYCLES} cycles")
    print(f"TWMarch session: {(twm.tcm + twm.tcp) * N_WORDS} ops")
    print(f"Scheme 1 session: {(s1.tcm + s1.tcp) * N_WORDS} ops")
    print()
    for idle in (0.95, 0.85, 0.7):
        print(f"idle fraction {idle:.0%}:")
        simulate("TWMarch", twm.twmarch, twm.prediction, idle)
        simulate("Scheme 1", s1.transparent, s1.prediction, idle)
        print()


if __name__ == "__main__":
    main()
