#!/usr/bin/env python3
"""Life-time scenario: periodic transparent testing in system idle time.

Simulates the deployment the paper targets, through the ``repro.soak``
runtime: an embedded memory serves a streaming LFSR workload; whenever
the system idles, the BIST advances a transparent test session
(prediction phase, then test phase), and a system write aborts the
session — which is exactly why test length matters.  Faults arrive
stochastically over the run (permanent, transient and intermittent
episodes from a Poisson process) instead of one scripted defect, so
each scheme reports a detection-*latency distribution* rather than a
single number, plus missed transient windows, aliasing escapes and
diagnosis accuracy.

The sweep compares the full March C- TWMarch against the short MATS+
session at three idle budgets.  At the tight budget the long test is
aborted more and detects later — the transparent-length argument of
the paper, measured end to end.

Run:  python examples/periodic_online_test.py [--seed N] [--cycles N]
"""

import argparse

from repro.analysis.soak import render_soak_report
from repro.soak import ArrivalSpec, SoakScenario, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=1,
        help="scenario seed; every stream (memory content, traffic, "
        "fault arrivals) derives from it, so runs are reproducible",
    )
    parser.add_argument("--cycles", type=int, default=60_000)
    parser.add_argument("--words", type=int, default=8)
    parser.add_argument("--width", type=int, default=32)
    args = parser.parse_args()

    print(
        f"memory: {args.words} words x {args.width} bits, "
        f"{args.cycles} cycles, seed {args.seed}"
    )
    print()
    for idle_permille in (950, 850, 700):
        print(f"idle fraction {idle_permille / 10:.0f}%:")
        for test in ("March C-", "MATS+"):
            scenario = SoakScenario(
                name=f"{test} @ idle {idle_permille}",
                test=test,
                fallback_test=None,
                n_words=args.words,
                width=args.width,
                cycles=args.cycles,
                idle_permille=idle_permille,
                arrival=ArrivalSpec(rate=2.0),
                seed=args.seed,
            )
            print(render_soak_report(run_scenario(scenario)))
        print()


if __name__ == "__main__":
    main()
