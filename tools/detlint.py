#!/usr/bin/env python
"""detlint — determinism lint for the engine tree.

The reproduction's contract is that every campaign report is
bit-identical for a given seed, across processes, job counts and
re-runs.  The runtime patterns that silently break that contract are
easy to reintroduce, so this AST lint walks the engine sources and
flags them:

* ``DET001`` unseeded randomness: any ``random.<fn>()`` module-level
  call (``random.random``, ``random.shuffle``, ...) shares the global
  unseeded generator.  Constructing a ``random.Random(seed)`` instance
  is the sanctioned pattern and is allowed.
* ``DET002`` set iteration: ``for x in {...}`` / comprehensions over
  set literals, set comprehensions or ``set()``/``frozenset()`` calls
  iterate in hash order, which varies with ``PYTHONHASHSEED``.
  Iterate a sorted view or an ordered container instead.
* ``DET003`` wall-clock reads: ``time.time()``, ``datetime.now()``
  and friends leak the clock into whatever consumes them.  Monotonic
  timing (``time.monotonic``, ``time.perf_counter``, ``time.sleep``,
  ``process_time`` and their ``_ns`` variants) is fine — those feed
  durations, not result payloads.
* ``DET004`` hard process exit: ``os._exit`` skips ``finally`` blocks
  and multiprocessing cleanup; it is reserved for the chaos harness's
  crash injection and may appear only in ``chaos.py``.

Suppression: append ``# detlint: ignore[DET001]`` (comma-separated
ids, e.g. ``ignore[DET001,DET003]``) to the offending line.  Findings
render through the shared staticcheck diagnostics core, so ``--format
json`` emits the same machine-readable shape as ``repro lint``.

Usage::

    python tools/detlint.py src/repro/engine src/repro/bist src/repro/soak \
        [more paths] [--format json]

Exit codes: 0 clean, 1 findings, 2 usage errors.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

try:
    from repro.staticcheck.diagnostics import (
        Diagnostic,
        Location,
        Rule,
        RuleRegistry,
        Severity,
        render_json,
        render_text,
    )
except ImportError:  # running from a source checkout without install
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.staticcheck.diagnostics import (
        Diagnostic,
        Location,
        Rule,
        RuleRegistry,
        Severity,
        render_json,
        render_text,
    )

_SUPPRESS = re.compile(r"#\s*detlint:\s*ignore\[([A-Z0-9, ]+)\]")

# Monotonic/duration APIs that never leak wall-clock into results.
_TIME_ALLOWED = {
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
    "sleep",
}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}

# The one module allowed to call os._exit (chaos crash injection).
_EXIT_ALLOWED_MODULES = {"chaos.py"}


@dataclass(frozen=True)
class FileTarget:
    """One parsed source file under lint."""

    path: Path
    tree: ast.Module
    lines: tuple[str, ...]

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        if not 1 <= lineno <= len(self.lines):
            return False
        match = _SUPPRESS.search(self.lines[lineno - 1])
        if match is None:
            return False
        ids = {part.strip() for part in match.group(1).split(",")}
        return rule_id in ids


def _diag(rule: Rule, target: FileTarget, node: ast.AST, message: str):
    if target.suppressed(node.lineno, rule.id):
        return None
    return Diagnostic(
        rule.id,
        rule.severity,
        message,
        Location(
            subject=str(target.path),
            line=node.lineno,
            col=node.col_offset + 1,
        ),
    )


def _attr_call(node: ast.AST) -> tuple[str, str] | None:
    """``module.attr(...)`` call -> (module-name, attr-name)."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
    ):
        return node.func.value.id, node.func.attr
    return None


def check_unseeded_random(rule: Rule, target: FileTarget) -> Iterator[Diagnostic]:
    """DET001: module-level ``random.*`` calls share the global
    unseeded generator; only ``random.Random(seed)`` is deterministic."""
    for node in ast.walk(target.tree):
        call = _attr_call(node)
        if call is None or call[0] != "random":
            continue
        if call[1] == "Random":
            continue
        diagnostic = _diag(
            rule,
            target,
            node,
            f"random.{call[1]}() uses the global unseeded generator; "
            "construct a seeded random.Random instead",
        )
        if diagnostic is not None:
            yield diagnostic


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def check_set_iteration(rule: Rule, target: FileTarget) -> Iterator[Diagnostic]:
    """DET002: iterating a set iterates in hash order — unstable across
    interpreter runs when strings are involved."""
    iterables: list[ast.AST] = []
    for node in ast.walk(target.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, ast.comprehension):
            iterables.append(node.iter)
    for expr in iterables:
        if not _is_set_expression(expr):
            continue
        diagnostic = _diag(
            rule,
            target,
            expr,
            "iteration over a set is hash-ordered and unstable; iterate "
            "a sorted() view or an ordered container",
        )
        if diagnostic is not None:
            yield diagnostic


def check_wall_clock(rule: Rule, target: FileTarget) -> Iterator[Diagnostic]:
    """DET003: wall-clock reads in engine code leak nondeterminism
    into anything that stores them; monotonic timing is exempt."""
    for node in ast.walk(target.tree):
        call = _attr_call(node)
        if call is None:
            continue
        module, attr = call
        message = None
        if module == "time" and attr not in _TIME_ALLOWED:
            message = (
                f"time.{attr}() reads the wall clock; use time.monotonic "
                "/ time.perf_counter for durations"
            )
        elif module in {"datetime", "date"} and attr in _WALLCLOCK_DATETIME:
            message = (
                f"{module}.{attr}() reads the wall clock; engine results "
                "must not depend on the current time"
            )
        if message is None:
            continue
        diagnostic = _diag(rule, target, node, message)
        if diagnostic is not None:
            yield diagnostic


def check_hard_exit(rule: Rule, target: FileTarget) -> Iterator[Diagnostic]:
    """DET004: ``os._exit`` outside the chaos harness skips cleanup and
    makes worker death indistinguishable from real crashes."""
    if target.path.name in _EXIT_ALLOWED_MODULES:
        return
    for node in ast.walk(target.tree):
        call = _attr_call(node)
        if call != ("os", "_exit"):
            continue
        diagnostic = _diag(
            rule,
            target,
            node,
            "os._exit() outside the chaos harness; raise or use "
            "chaos.perform() so process-kill semantics stay centralised",
        )
        if diagnostic is not None:
            yield diagnostic


_RULES = (
    (
        "DET001",
        "unseeded-random",
        Severity.ERROR,
        "module-level random.* call (global unseeded generator)",
        check_unseeded_random,
    ),
    (
        "DET002",
        "set-iteration",
        Severity.ERROR,
        "iteration over a set (hash-ordered, unstable)",
        check_set_iteration,
    ),
    (
        "DET003",
        "wall-clock",
        Severity.ERROR,
        "wall-clock read in engine code",
        check_wall_clock,
    ),
    (
        "DET004",
        "hard-exit",
        Severity.ERROR,
        "os._exit outside the chaos harness",
        check_hard_exit,
    ),
)


def registry() -> RuleRegistry:
    """A fresh registry with the determinism rules."""
    reg = RuleRegistry()
    for rule_id, name, severity, summary, check in _RULES:
        reg.register(Rule(rule_id, name, severity, summary, layer="det", check=check))
    return reg


def lint_source(source: str, path: Path | str = "<string>") -> list[Diagnostic]:
    """Lint one source text (the unit tests drive this directly)."""
    path = Path(path)
    tree = ast.parse(source, filename=str(path))
    target = FileTarget(path, tree, tuple(source.splitlines()))
    diagnostics: list[Diagnostic] = []
    for rule in registry().select():
        diagnostics.extend(rule.run(target))
    return diagnostics


def lint_paths(paths: list[Path]) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    diagnostics: list[Diagnostic] = []
    for file in files:
        diagnostics.extend(lint_source(file.read_text(), file))
    return diagnostics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="detlint", description="determinism lint for the engine tree"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[
            "src/repro/engine",
            "src/repro/bist",
            "src/repro/soak",
        ],
        help=(
            "files or directories to lint (default: src/repro/engine, "
            "src/repro/bist, src/repro/soak)"
        ),
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    diagnostics = lint_paths(paths)
    render = render_json if args.format == "json" else render_text
    print(render(diagnostics))
    return 1 if diagnostics else 0


if __name__ == "__main__":
    raise SystemExit(main())
