"""Width-generic symbolic engine: equivalence, properties, Table 2.

The symbolic engine's contract is the same bit-identical campaign
behaviour as every other backend, plus one more guarantee the concrete
engines cannot give: a fault's verdict is evaluated *once*, without a
width, and concretizing it at any width the fault fits in must equal
the reference engine's verdict at that width.  The hypothesis suite
checks exactly that over random catalog faults and widths in
{4, 8, 16, 32}.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.coverage import compare_flow, run_campaign, signature_flow
from repro.analysis.table2 import table2_report
from repro.core.notation import parse_march
from repro.core.twm import twm_transform
from repro.engine import (
    ExecutionError,
    SymbolicEngine,
    SymbolicProgram,
    compile_march,
    compile_symbolic,
    engine_names,
    get_engine,
)
from repro.library import catalog
from repro.memory.faults import (
    AddressDecoderFault,
    Cell,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from repro.memory.injection import (
    enumerate_address_faults,
    enumerate_read_disturb,
    standard_fault_universe,
)

N_WORDS = 3
WIDTHS = (4, 8, 16, 32)

TWM = {
    width: twm_transform(catalog.get("March C-"), width).twmarch
    for width in WIDTHS
}


def small_universe(n_words, width, seed):
    universe = standard_fault_universe(
        n_words, width, max_inter_pairs=6, rng=random.Random(seed)
    )
    universe["RDF"] = list(enumerate_read_disturb(n_words, width))
    universe["AF"] = list(enumerate_address_faults(n_words))
    return universe


def assert_symbolic_identical(test, n_words, width, seed, derive_writes=True):
    universe = small_universe(n_words, width, seed)
    flow = compare_flow(
        test, n_words, width, initial=None, seed=seed, derive_writes=derive_writes
    )
    ref = run_campaign(flow, universe, engine="reference")
    sym = run_campaign(flow, universe, engine="symbolic")
    assert ref.coverage_vector() == sym.coverage_vector()
    for name in universe:
        assert ref.classes[name].detected == sym.classes[name].detected, name
    assert ref.undetected == sym.undetected


class TestRegistry:
    def test_symbolic_registered(self):
        assert "symbolic" in engine_names()
        assert isinstance(get_engine("symbolic"), SymbolicEngine)

    def test_unknown_engine_error_names_choices(self):
        # Regression: the error must spell out every registered engine
        # so an unknown --engine spec is self-explanatory.
        with pytest.raises(ValueError) as excinfo:
            get_engine("warp-core")
        message = str(excinfo.value)
        for name in engine_names():
            assert name in message

    def test_concrete_engines_refuse_symbolic_verdicts(self):
        test = TWM[4]
        fault = StuckAtFault(Cell(0, 0), 1)
        for name in ("reference", "batch"):
            with pytest.raises(ExecutionError, match="symbolic"):
                get_engine(name).detect_symbolic(test, N_WORDS, [fault])


class TestSymbolicProgramIR:
    def test_compile_symbolic_cached(self):
        test = catalog.get("March U")
        assert compile_symbolic(test) is compile_symbolic(test)

    def test_structure_matches_concrete(self):
        test = TWM[8]
        sym = compile_symbolic(test)
        concrete = compile_march(test, 8)
        assert sym.op_count == concrete.op_count
        assert sym.n_reads == concrete.n_reads
        assert sym.derivable == concrete.derivable
        assert sym.at_width(8) is concrete

    def test_bit_plan_resolves_like_masks(self):
        sym = compile_symbolic(TWM[8])
        concrete = compile_march(TWM[8], 8)
        for j in range(8):
            plan = sym.bit_plan(j)
            for element, plan_element in zip(concrete.elements, plan):
                for (_, _, mask, _), (_, _, bit, _) in zip(
                    element.steps, plan_element
                ):
                    assert (mask >> j) & 1 == bit

    def test_bit_signature_shared_between_equal_positions(self):
        # D1 has period 2, so positions 0 and 2 look identical to a
        # test whose only checker background is D1.
        test = parse_march("⇕(rc,wc^D1); ⇕(r(c^D1),wc); ⇕(rc)", name="d1")
        sym = compile_symbolic(test)
        assert sym.bit_signature(0) == sym.bit_signature(2)
        assert sym.bit_signature(0) != sym.bit_signature(1)

    def test_min_width(self):
        assert compile_symbolic(TWM[8]).min_width == 1


class TestCampaignEquivalence:
    """Bit-identical coverage against the reference interpreter."""

    @pytest.mark.parametrize(
        "name", ["March C-", "March U", "March SS", "March LR"]
    )
    def test_transparent_catalog(self, name):
        twm = twm_transform(catalog.get(name), 4)
        assert_symbolic_identical(
            twm.twmarch, N_WORDS, 4, seed=sum(map(ord, name)) % 997
        )

    @pytest.mark.parametrize("name", ["MATS+", "March C-", "March U"])
    def test_solid_catalog(self, name):
        assert_symbolic_identical(catalog.get(name), N_WORDS, 4, seed=13)

    @pytest.mark.parametrize("width", [1, 2, 8, 16])
    def test_word_widths(self, width):
        test = (
            catalog.get("March C-")
            if width == 1
            else twm_transform(catalog.get("March C-"), width).twmarch
        )
        assert_symbolic_identical(test, N_WORDS, width, seed=width)

    def test_oracle_write_mode(self):
        assert_symbolic_identical(TWM[4], N_WORDS, 4, seed=7, derive_writes=False)

    def test_ill_formed_test_matches_interpreter(self):
        # Fault-free mismatches exercise the symbolic baseline tables.
        ill = parse_march("⇑(r1); ⇓(r0,w0)", name="ill")
        assert_symbolic_identical(ill, N_WORDS, 4, seed=23)

    def test_transparent_ill_formed(self):
        ill = parse_march("⇕(rc^1,wc); ⇕(rc)", name="ill-t")
        assert_symbolic_identical(ill, N_WORDS, 4, seed=29)

    def test_underivable_falls_back_to_interpreter(self):
        tricky = parse_march("⇕(rc^1,wc); ⇕(wc)", name="tricky")
        faults = [StuckAtFault(Cell(0, 0), 1), StuckAtFault(Cell(1, 2), 0)]
        verdicts = {
            engine: get_engine(engine).detect_batch(tricky, 2, 4, [0, 0], faults)
            for engine in ("reference", "symbolic")
        }
        assert verdicts["reference"] == verdicts["symbolic"]

    def test_jobs_identical(self):
        universe = small_universe(4, 4, 19)
        flow = compare_flow(TWM[4], 4, 4, initial=None, seed=19)
        seq = run_campaign(flow, universe, engine="symbolic", jobs=1)
        par = run_campaign(flow, universe, engine="symbolic", jobs=4)
        assert seq.coverage_vector() == par.coverage_vector()
        assert seq.undetected == par.undetected
        assert seq.jobs == 1 and par.jobs == 4


class TestWidthGenericVerdicts:
    """One evaluation answers every width the fault fits in."""

    def engine(self):
        return get_engine("symbolic")

    def test_cell_verdicts_width_independent(self):
        test = TWM[32]
        universe = small_universe(N_WORDS, 4, 3)
        faults = [
            fault
            for name, class_faults in universe.items()
            if name != "AF"
            for fault in class_faults
        ]
        verdicts = self.engine().detect_symbolic(test, N_WORDS, faults)
        assert all(v.width_independent for v in verdicts)
        rng = random.Random(5)
        low = [rng.randrange(1 << 4) for _ in range(N_WORDS)]
        for verdict in verdicts:
            # Same low bits, growing width: the verdict cannot change.
            results = {
                width: verdict.concretize(width, low) for width in WIDTHS
            }
            assert len(set(results.values())) == 1, verdict.fault

    def test_af_verdicts_are_word_wide(self):
        verdicts = self.engine().detect_symbolic(
            TWM[8], N_WORDS, list(enumerate_address_faults(N_WORDS))
        )
        assert all(not v.width_independent for v in verdicts)

    def test_verdict_min_width(self):
        fault = StuckAtFault(Cell(0, 6), 1)
        (verdict,) = self.engine().detect_symbolic(TWM[8], N_WORDS, [fault])
        assert verdict.min_width == 7
        with pytest.raises(ValueError, match="bit"):
            verdict.concretize(4, [0, 0, 0])

    def test_detect_batch_width_none_returns_verdicts(self):
        fault = StuckAtFault(Cell(0, 0), 1)
        for width in (None, "symbolic"):
            (verdict,) = self.engine().detect_batch(
                TWM[8], N_WORDS, width, None, [fault]
            )
            assert verdict.fault is fault
            assert verdict.concretize(8, [0] * N_WORDS) in (True, False)

    def test_underivable_has_no_symbolic_verdicts(self):
        bad = parse_march("⇕(rc^1,wc); ⇕(wc)", name="tricky2")
        with pytest.raises(ExecutionError, match="underivable"):
            self.engine().detect_symbolic(
                bad, 2, [StuckAtFault(Cell(0, 0), 1)]
            )

    def test_unknown_fault_kind(self):
        class WeirdFault(Fault):
            @property
            def cells(self):
                return ()

            @property
            def kind(self):
                return "WEIRD"

            def describe(self):
                return "WEIRD"

            def validate(self, n_words, width):
                pass

        # Symbolically: a loud error.  Concretely: the same
        # full-fidelity fallback as the batch engine.
        with pytest.raises(ExecutionError, match="no symbolic semantics"):
            self.engine().detect_symbolic(TWM[4], N_WORDS, [WeirdFault()])
        verdicts = self.engine().detect_batch(
            TWM[4], N_WORDS, 4, [0] * N_WORDS, [WeirdFault()]
        )
        assert verdicts == [False]

    def test_rejects_width_lowered_program(self):
        program = compile_march(TWM[4], 4)
        with pytest.raises(ExecutionError, match="width-lowered"):
            self.engine().detect_symbolic(program, N_WORDS, [])

    def test_symbolic_program_passthrough(self):
        sym = compile_symbolic(TWM[4])
        assert isinstance(sym, SymbolicProgram)
        fault = StuckAtFault(Cell(0, 0), 1)
        a = self.engine().detect_batch(sym, N_WORDS, 4, [0] * N_WORDS, [fault])
        b = self.engine().detect_batch(
            TWM[4], N_WORDS, 4, [0] * N_WORDS, [fault]
        )
        assert a == b


class TestSignatureModesRejected:
    """MISR folding is width-concrete; symbolic campaigns must say so."""

    def test_signature_batch_raises(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        with pytest.raises(ExecutionError, match="width-concrete"):
            get_engine("symbolic").detect_signature_batch(
                twm.twmarch, twm.prediction, N_WORDS, 4, [0] * N_WORDS, []
            )

    def test_aliasing_batch_raises(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        with pytest.raises(ExecutionError, match="width-concrete"):
            get_engine("symbolic").detect_aliasing_batch(
                twm.twmarch, twm.prediction, N_WORDS, 4, [0] * N_WORDS, []
            )

    def test_signature_campaign_raises_cleanly(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        flow = signature_flow(
            twm.twmarch, twm.prediction, N_WORDS, 4, initial=0
        )
        universe = {"SAF": small_universe(N_WORDS, 4, 0)["SAF"]}
        with pytest.raises(ExecutionError, match="signature"):
            run_campaign(flow, universe, engine="symbolic")


# ---------------------------------------------------------------------------
# Hypothesis property suite
# ---------------------------------------------------------------------------


@st.composite
def random_fault(draw, n_words, width):
    cell = st.builds(
        Cell,
        st.integers(0, n_words - 1),
        st.integers(0, width - 1),
    )
    kind = draw(
        st.sampled_from(
            ("SAF", "TF", "RDF", "DRDF", "CFst", "CFid", "CFin", "AF")
        )
    )
    if kind == "SAF":
        return StuckAtFault(draw(cell), draw(st.sampled_from((0, 1))))
    if kind == "TF":
        return TransitionFault(draw(cell), rising=draw(st.booleans()))
    if kind in ("RDF", "DRDF"):
        return ReadDisturbFault(draw(cell), deceptive=kind == "DRDF")
    if kind == "AF":
        addr = draw(st.integers(0, n_words - 1))
        code = draw(st.sampled_from(("none", "other", "multi")))
        if code == "none":
            return AddressDecoderFault(addr, "none")
        other = draw(
            st.integers(0, n_words - 1).filter(lambda a: a != addr)
        )
        return AddressDecoderFault(
            addr, code, other, wired_or=draw(st.booleans())
        )
    aggressor = draw(cell)
    victim = draw(cell.filter(lambda c: c != aggressor))
    if kind == "CFst":
        return StateCouplingFault(
            aggressor,
            victim,
            draw(st.sampled_from((0, 1))),
            draw(st.sampled_from((0, 1))),
        )
    if kind == "CFid":
        return IdempotentCouplingFault(
            aggressor,
            victim,
            rising=draw(st.booleans()),
            forced_value=draw(st.sampled_from((0, 1))),
        )
    return InversionCouplingFault(aggressor, victim, rising=draw(st.booleans()))


class TestHypothesisEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_concretized_verdict_equals_reference(self, data):
        """For random catalog faults and widths in {4, 8, 16, 32}, the
        symbolic verdict concretized at width w equals the reference
        engine verdict at width w."""
        width = data.draw(st.sampled_from(WIDTHS), label="width")
        n_words = data.draw(st.integers(2, 5), label="n_words")
        words = data.draw(
            st.lists(
                st.integers(0, (1 << width) - 1),
                min_size=n_words,
                max_size=n_words,
            ),
            label="words",
        )
        fault = data.draw(random_fault(n_words, width), label="fault")
        test = data.draw(
            st.sampled_from((TWM[width], catalog.get("March C-"))),
            label="test",
        )
        (verdict,) = get_engine("symbolic").detect_symbolic(
            test, n_words, [fault]
        )
        (expected,) = get_engine("reference").detect_batch(
            test, n_words, width, words, [fault]
        )
        assert verdict.concretize(width, words) == expected

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_one_evaluation_covers_every_width(self, data):
        """A single symbolic evaluation of a fixed symbolic test agrees
        with the reference engine at every swept width."""
        n_words = data.draw(st.integers(2, 4), label="n_words")
        fault = data.draw(random_fault(n_words, min(WIDTHS)), label="fault")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        test = TWM[max(WIDTHS)]
        (verdict,) = get_engine("symbolic").detect_symbolic(
            test, n_words, [fault]
        )
        rng = random.Random(seed)
        for width in WIDTHS:
            words = [rng.randrange(1 << width) for _ in range(n_words)]
            (expected,) = get_engine("reference").detect_batch(
                test, n_words, width, words, [fault]
            )
            assert verdict.concretize(width, words) == expected, width


class TestTable2:
    def test_report_matches_concrete_engines(self):
        report = table2_report(
            "March C-",
            widths=(4, 8),
            n_words=3,
            seed=1,
            max_inter_pairs=4,
        )
        assert report.ok
        assert report.total_faults > 0
        # Cell-confined classes keep their coverage rate across widths
        # only when the universe scales uniformly; the single-cell
        # classes always do.
        assert "SAF" in report.width_independent_classes
        rendered = report.render()
        assert "Table 2" in rendered and "vs reference" in rendered

    def test_report_flags_disagreement(self):
        # A deliberately lying engine must be caught by the diff.
        class Liar(SymbolicEngine):
            name = "reference"  # masquerade as the reference column

            def detect_batch(self, test, n_words, width, words, faults, **kw):
                return [False] * len(faults)

        from repro.engine import register_engine

        real = get_engine("reference")
        register_engine(Liar())
        try:
            report = table2_report(
                "March C-", widths=(4,), n_words=2, max_inter_pairs=2,
                engines=("reference",),
            )
            assert not report.ok
            assert any(
                row.mismatches["reference"] for row in report.rows
            )
        finally:
            register_engine(real)
