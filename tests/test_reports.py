"""Tests for the ASCII table renderer."""

import pytest

from repro.analysis.reports import percent, render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+=")
        assert "| a " in lines[1]
        assert any("| 33" in line for line in lines)
        assert lines[-1].startswith("+-")

    def test_title(self):
        out = render_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_column_width_from_cells(self):
        out = render_table(["a"], [["wide-cell-content"]])
        header_line = out.splitlines()[1]
        assert len(header_line) >= len("| wide-cell-content |")

    def test_all_lines_same_width(self):
        out = render_table(["col1", "c"], [["x", "yyyy"], ["zz", "w"]])
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_non_string_cells_stringified(self):
        out = render_table(["v"], [[3.5], [None]])
        assert "3.5" in out and "None" in out

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "| a" in out


class TestPercent:
    def test_formatting(self):
        assert percent(0.559) == "55.9%"
        assert percent(0.5, digits=0) == "50%"
        assert percent(1.0) == "100.0%"
