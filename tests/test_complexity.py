"""Tests for the complexity accounting (Tables 2 & 3, headline ratios)."""

import pytest

from repro.core.complexity import (
    headline_ratios,
    scheme1_cost,
    scheme1_paper_cost,
    table2_rows,
    table3_rows,
    tomt_cost,
    twm_cost,
    twm_formula_tcm,
    twm_formula_tcp,
)
from repro.library import catalog


class TestSchemeCosts:
    def test_twm_march_cm_32(self):
        cost = twm_cost(catalog.get("March C-"), 32)
        assert (cost.tcm, cost.tcp, cost.total) == (35, 21, 56)

    def test_twm_march_u_8(self):
        cost = twm_cost(catalog.get("March U"), 8)
        assert (cost.tcm, cost.tcp) == (29, 17)

    def test_formula_functions(self):
        assert twm_formula_tcm(10, 32) == 35
        assert twm_formula_tcp(5, 32) == 21

    def test_scheme1_march_cm_32(self):
        measured = scheme1_cost(catalog.get("March C-"), 32)
        formula = scheme1_paper_cost(catalog.get("March C-"), 32)
        assert formula.tcm == 60
        assert formula.tcp == 35
        assert measured.tcm >= formula.tcm  # executable costs a bit more

    def test_tomt_32(self):
        cost = tomt_cost(32)
        assert cost.tcm == 290
        assert cost.tcp == 0
        assert cost.total == 290

    def test_render(self):
        assert "TCM 35n" in twm_cost(catalog.get("March C-"), 32).render()


class TestHeadlineRatios:
    """The paper's claim: ~56 % of Scheme 1 and ~19 % of TOMT."""

    def setup_method(self):
        self.h = headline_ratios(catalog.get("March C-"), 32)

    def test_this_work_total_is_56n(self):
        assert self.h.this_work.total == 56

    def test_ratio_vs_scheme1_in_claimed_band(self):
        # Paper says "about 56%"; measured construction gives ~55%,
        # the paper-consistent closed form ~59%.
        assert 0.50 <= self.h.vs_scheme1 <= 0.62
        assert 0.50 <= self.h.vs_scheme1_formula <= 0.62

    def test_ratio_vs_tomt_in_claimed_band(self):
        # Paper says "about 19%".
        assert 0.17 <= self.h.vs_tomt <= 0.21

    def test_march_u_ratios_same_shape(self):
        h = headline_ratios(catalog.get("March U"), 32)
        assert h.vs_scheme1 < 0.7
        assert h.vs_tomt < 0.25


class TestTable2:
    def test_rows(self):
        rows = table2_rows()
        assert len(rows) == 3
        schemes = [r[0] for r in rows]
        assert schemes == ["Scheme 1 [12]", "Scheme 2 [13]", "This work"]
        assert "5*log2 b" in rows[2][1]
        assert rows[1][2] == "none (online)"


class TestTable3:
    def test_full_sweep(self):
        rows = table3_rows(
            [catalog.get("March C-"), catalog.get("March U")],
            widths=(16, 32, 64, 128),
        )
        assert len(rows) == 8

    def test_this_work_always_smallest(self):
        for row in table3_rows(
            [catalog.get("March C-"), catalog.get("March U")]
        ):
            assert row.this_work.total < row.scheme1_measured.total
            assert row.this_work.total < row.tomt.total

    def test_scheme1_grows_multiplicatively(self):
        rows = table3_rows([catalog.get("March C-")], widths=(16, 128))
        small, large = rows[0], rows[1]
        growth_s1 = large.scheme1_measured.total / small.scheme1_measured.total
        growth_twm = large.this_work.total / small.this_work.total
        assert growth_s1 > growth_twm

    def test_tomt_independent_of_test(self):
        rows = table3_rows(
            [catalog.get("March C-"), catalog.get("March U")], widths=(32,)
        )
        assert rows[0].tomt.total == rows[1].tomt.total == 290

    def test_ratios_tighten_with_width(self):
        # The wider the word, the bigger the advantage vs TOMT.
        rows = table3_rows([catalog.get("March C-")], widths=(16, 128))
        assert rows[1].ratio_vs_tomt < rows[0].ratio_vs_tomt

    def test_row_accessors(self):
        (row,) = table3_rows([catalog.get("March C-")], widths=(32,))
        assert row.test == "March C-"
        assert row.width == 32
        assert 0 < row.ratio_vs_scheme1 < 1
        assert 0 < row.ratio_vs_tomt < 1


class TestFormulaAgainstMeasured:
    @pytest.mark.parametrize("name", ["March C-", "March X", "March Y", "March LR"])
    @pytest.mark.parametrize("width", [4, 16, 64])
    def test_twm_formula_exact_for_read_ending(self, name, width):
        test = catalog.get(name)
        cost = twm_cost(test, width)
        assert cost.tcm == twm_formula_tcm(test.op_count, width)

    @pytest.mark.parametrize("width", [4, 16, 64])
    def test_twm_formula_off_by_one_for_write_ending(self, width):
        test = catalog.get("March U")
        cost = twm_cost(test, width)
        assert cost.tcm == twm_formula_tcm(test.op_count, width) + 1
