"""Tests for fault-injection semantics and fault-universe enumeration."""

import random

import pytest

from repro.memory.faults import (
    Cell,
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from repro.memory.injection import (
    FaultyMemory,
    enumerate_inter_word_cf,
    enumerate_intra_word_cf,
    enumerate_stuck_at,
    enumerate_transition,
    standard_fault_universe,
)


class TestStuckAtSemantics:
    def test_write_cannot_change_stuck_cell(self):
        m = FaultyMemory(2, 4, [StuckAtFault(Cell(0, 1), 0)])
        m.write(0, 0b1111)
        assert m.read(0) == 0b1101

    def test_stuck_at_one(self):
        m = FaultyMemory(2, 4, [StuckAtFault(Cell(0, 2), 1)])
        m.write(0, 0b0000)
        assert m.read(0) == 0b0100

    def test_load_enforces_stuck_value(self):
        m = FaultyMemory(2, 4, [StuckAtFault(Cell(1, 0), 1)])
        m.load([0b0000, 0b0000])
        assert m.read(1) == 0b0001

    def test_other_cells_unaffected(self):
        m = FaultyMemory(2, 4, [StuckAtFault(Cell(0, 0), 0)])
        m.write(1, 0b1111)
        assert m.read(1) == 0b1111

    def test_inject_after_construction(self):
        m = FaultyMemory(2, 4)
        m.fill(0b1111)
        m.inject(StuckAtFault(Cell(0, 3), 0))
        assert m.read(0) == 0b0111  # enforcement applies immediately


class TestTransitionSemantics:
    def test_rising_blocked(self):
        m = FaultyMemory(1, 4, [TransitionFault(Cell(0, 0), rising=True)])
        m.write(0, 0b0001)
        assert m.read(0) == 0b0000

    def test_rising_fault_allows_falling(self):
        m = FaultyMemory(1, 4, [TransitionFault(Cell(0, 0), rising=True)])
        m.load([0b0001])
        m.write(0, 0b0000)
        assert m.read(0) == 0b0000

    def test_falling_blocked(self):
        m = FaultyMemory(1, 4, [TransitionFault(Cell(0, 1), rising=False)])
        m.load([0b0010])
        m.write(0, 0b0000)
        assert m.read(0) == 0b0010

    def test_same_value_write_unaffected(self):
        m = FaultyMemory(1, 4, [TransitionFault(Cell(0, 1), rising=True)])
        m.load([0b0010])
        m.write(0, 0b0010)
        assert m.read(0) == 0b0010

    def test_load_bypasses_transition_fault(self):
        # Bulk loads model pre-existing content, not write operations.
        m = FaultyMemory(1, 4, [TransitionFault(Cell(0, 0), rising=True)])
        m.load([0b0001])
        assert m.read(0) == 0b0001


class TestStateCouplingSemantics:
    def test_forcing_on_aggressor_entry(self):
        # CFst<1;0>: aggressor (0,0) at 1 forces victim (1,0) to 0.
        f = StateCouplingFault(Cell(0, 0), Cell(1, 0), 1, 0)
        m = FaultyMemory(2, 4, [f])
        m.load([0, 0b0001])
        m.write(0, 0b0001)  # aggressor goes to 1
        assert m.read(1) == 0b0000

    def test_forcing_overrides_victim_write(self):
        f = StateCouplingFault(Cell(0, 0), Cell(1, 0), 1, 0)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 1)  # condition active
        m.write(1, 1)  # write 1 to victim: forced back to 0
        assert m.read(1) == 0

    def test_no_forcing_when_condition_off(self):
        f = StateCouplingFault(Cell(0, 0), Cell(1, 0), 1, 0)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 0)  # aggressor at 0: inactive
        m.write(1, 1)
        assert m.read(1) == 1

    def test_victim_keeps_value_after_condition_clears(self):
        f = StateCouplingFault(Cell(0, 0), Cell(1, 0), 1, 0)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 1)
        m.write(1, 1)  # forced to 0
        m.write(0, 0)  # condition clears; victim stays 0
        assert m.read(1) == 0

    def test_load_enforces_condition(self):
        f = StateCouplingFault(Cell(0, 0), Cell(1, 0), 0, 1)
        m = FaultyMemory(2, 4, [f])
        m.load([0, 0])
        assert m.read(1) == 1

    def test_intra_word_forcing(self):
        # Within one word: aggressor bit 0 at 0 forces bit 1 to 1.
        f = StateCouplingFault(Cell(0, 0), Cell(0, 1), 0, 1)
        m = FaultyMemory(1, 4, [f])
        m.write(0, 0b0000)
        assert m.read(0) == 0b0010


class TestIdempotentCouplingSemantics:
    def test_up_transition_forces(self):
        f = IdempotentCouplingFault(Cell(0, 0), Cell(1, 0), rising=True, forced_value=1)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 1)
        assert m.read(1) == 1

    def test_down_transition_ignored_by_up_fault(self):
        f = IdempotentCouplingFault(Cell(0, 0), Cell(1, 0), rising=True, forced_value=1)
        m = FaultyMemory(2, 4, [f])
        m.load([1, 0])
        m.write(0, 0)
        assert m.read(1) == 0

    def test_no_transition_no_effect(self):
        f = IdempotentCouplingFault(Cell(0, 0), Cell(1, 0), rising=True, forced_value=1)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 0)  # 0 -> 0
        assert m.read(1) == 0

    def test_victim_can_recover(self):
        f = IdempotentCouplingFault(Cell(0, 0), Cell(1, 0), rising=True, forced_value=1)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 1)  # victim forced to 1
        m.write(1, 0)  # no condition holding it: back to 0
        assert m.read(1) == 0

    def test_intra_word_simultaneous_write(self):
        # Writing the word flips the aggressor and the victim together;
        # the fault effect lands after the write.
        f = IdempotentCouplingFault(Cell(0, 0), Cell(0, 1), rising=True, forced_value=0)
        m = FaultyMemory(1, 4, [f])
        m.write(0, 0b0011)  # aggr bit0 up; victim bit1 forced to 0
        assert m.read(0) == 0b0001


class TestInversionCouplingSemantics:
    def test_inverts_on_up(self):
        f = InversionCouplingFault(Cell(0, 0), Cell(1, 0), rising=True)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 1)
        assert m.read(1) == 1
        m.write(0, 0)  # falling: no effect for rising fault
        assert m.read(1) == 1

    def test_inverts_on_down(self):
        f = InversionCouplingFault(Cell(0, 0), Cell(1, 0), rising=False)
        m = FaultyMemory(2, 4, [f])
        m.load([1, 1])
        m.write(0, 0)
        assert m.read(1) == 0

    def test_double_activation_round_trips(self):
        f = InversionCouplingFault(Cell(0, 0), Cell(1, 0), rising=True)
        m = FaultyMemory(2, 4, [f])
        m.write(0, 1)
        m.write(0, 0)
        m.write(0, 1)
        assert m.read(1) == 0  # inverted twice


class TestFaultManagement:
    def test_faults_property_and_clear(self):
        f = StuckAtFault(Cell(0, 0), 1)
        m = FaultyMemory(2, 4, [f])
        assert m.faults == (f,)
        m.clear_faults()
        assert m.faults == ()
        m.write(0, 0)
        assert m.read(0) == 0

    def test_inject_validates_range(self):
        m = FaultyMemory(2, 4)
        with pytest.raises(ValueError):
            m.inject(StuckAtFault(Cell(9, 0), 1))


class TestEnumeration:
    def test_stuck_at_count(self):
        assert len(list(enumerate_stuck_at(4, 8))) == 2 * 4 * 8

    def test_transition_count(self):
        assert len(list(enumerate_transition(3, 4))) == 2 * 3 * 4

    def test_intra_word_counts(self):
        # Ordered pairs: b*(b-1); CFst 4 variants, CFid 4, CFin 2.
        n, b = 2, 4
        pairs = b * (b - 1)
        assert len(list(enumerate_intra_word_cf(n, b, ("CFst",)))) == 4 * pairs * n
        assert len(list(enumerate_intra_word_cf(n, b, ("CFid",)))) == 4 * pairs * n
        assert len(list(enumerate_intra_word_cf(n, b, ("CFin",)))) == 2 * pairs * n

    def test_intra_word_faults_are_intra(self):
        for f in enumerate_intra_word_cf(2, 4):
            assert f.intra_word

    def test_inter_word_same_bit(self):
        faults = list(enumerate_inter_word_cf(3, 2, ("CFin",)))
        assert all(not f.intra_word for f in faults)
        assert all(f.aggressor.bit == f.victim.bit for f in faults)
        # 3*2 ordered address pairs * 2 bits * 2 CFin variants.
        assert len(faults) == 6 * 2 * 2

    def test_inter_word_sampling(self):
        faults = list(
            enumerate_inter_word_cf(
                8, 8, ("CFst",), max_pairs=10, rng=random.Random(0)
            )
        )
        assert len(faults) == 10 * 4

    def test_inter_word_all_bits(self):
        faults = list(
            enumerate_inter_word_cf(2, 2, ("CFin",), same_bit_only=False)
        )
        # 2 ordered address pairs * 4 bit combinations * 2 variants.
        assert len(faults) == 2 * 4 * 2

    def test_standard_universe_keys(self):
        uni = standard_fault_universe(2, 2, max_inter_pairs=4)
        assert set(uni) == {
            "SAF",
            "TF",
            "CFst-intra",
            "CFst-inter",
            "CFid-intra",
            "CFid-inter",
            "CFin-intra",
            "CFin-inter",
        }
        assert all(len(v) > 0 for v in uni.values())

    def test_enumeration_is_deterministic(self):
        a = [f.describe() for f in enumerate_intra_word_cf(2, 4)]
        b = [f.describe() for f in enumerate_intra_word_cf(2, 4)]
        assert a == b
