"""Unit tests for march elements and whole march tests."""

import pytest

from repro.core.element import AddressOrder, MarchElement
from repro.core.march import MarchTest
from repro.core.ops import Op


def el(order, *ops):
    return MarchElement(order, tuple(ops))


class TestAddressOrder:
    def test_up_addresses(self):
        assert list(AddressOrder.UP.addresses(4)) == [0, 1, 2, 3]

    def test_down_addresses(self):
        assert list(AddressOrder.DOWN.addresses(4)) == [3, 2, 1, 0]

    def test_any_resolves_ascending(self):
        assert list(AddressOrder.ANY.addresses(3)) == [0, 1, 2]

    def test_arrows(self):
        assert AddressOrder.UP.arrow == "⇑"
        assert AddressOrder.DOWN.arrow == "⇓"
        assert AddressOrder.ANY.arrow == "⇕"

    def test_reversed(self):
        assert AddressOrder.UP.reversed() is AddressOrder.DOWN
        assert AddressOrder.DOWN.reversed() is AddressOrder.UP
        assert AddressOrder.ANY.reversed() is AddressOrder.ANY


class TestMarchElement:
    def test_requires_ops(self):
        with pytest.raises(ValueError):
            MarchElement(AddressOrder.UP, ())

    def test_statistics(self):
        e = el(AddressOrder.UP, Op.r0(), Op.w1(), Op.r1())
        assert len(e) == 3
        assert e.n_reads == 2
        assert e.n_writes == 1

    def test_pure_write(self):
        assert el(AddressOrder.ANY, Op.w0()).is_pure_write
        assert not el(AddressOrder.ANY, Op.r0()).is_pure_write

    def test_pure_read(self):
        assert el(AddressOrder.ANY, Op.r0()).is_pure_read
        assert not el(AddressOrder.ANY, Op.w0()).is_pure_read

    def test_starts_with_write(self):
        assert el(AddressOrder.UP, Op.w1(), Op.r1()).starts_with_write
        assert not el(AddressOrder.UP, Op.r0(), Op.w1()).starts_with_write

    def test_str(self):
        e = el(AddressOrder.UP, Op.r0(), Op.w1())
        assert str(e) == "⇑(r0,w1)"

    def test_iteration(self):
        e = el(AddressOrder.DOWN, Op.r1(), Op.w0())
        assert [str(op) for op in e] == ["r1", "w0"]


class TestMarchTest:
    def make(self):
        return MarchTest(
            "toy",
            (
                el(AddressOrder.ANY, Op.w0()),
                el(AddressOrder.UP, Op.r0(), Op.w1()),
                el(AddressOrder.DOWN, Op.r1(), Op.w0()),
                el(AddressOrder.ANY, Op.r0()),
            ),
        )

    def test_requires_elements(self):
        with pytest.raises(ValueError):
            MarchTest("empty", ())

    def test_statistics(self):
        t = self.make()
        assert t.op_count == 6
        assert t.n_reads == 3
        assert t.n_writes == 3
        assert len(t) == 4

    def test_complexity_string(self):
        assert self.make().complexity() == "6n"

    def test_all_ops(self):
        assert len(self.make().all_ops) == 6

    def test_solid_and_transparent_form(self):
        t = self.make()
        assert t.is_solid_form
        assert not t.is_transparent_form

    def test_same_structure_ignores_name(self):
        a = self.make()
        b = a.renamed("other")
        assert a.same_structure(b)
        assert b.name == "other"

    def test_concat(self):
        a = self.make()
        c = a.concat(a, name="double")
        assert c.op_count == 12
        assert c.name == "double"
        assert len(c) == 8

    def test_concat_default_name(self):
        a = self.make()
        assert ";" in a.concat(a).name

    def test_str_format(self):
        assert str(self.make()) == "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}"

    def test_describe_mentions_counts(self):
        d = self.make().describe()
        assert "N = 6" in d and "Q = 3" in d

    def test_renamed_keeps_notes(self):
        t = MarchTest("x", self.make().elements, notes="hello")
        assert t.renamed("y").notes == "hello"
        assert t.renamed("y", notes="bye").notes == "bye"

    def test_iter(self):
        assert len(list(iter(self.make()))) == 4
