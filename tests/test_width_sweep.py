"""Symbolic one-shot width sweeps vs per-width concrete campaigns.

The contract of ``repro.analysis.sweep``: one width-generic evaluation
plus N cheap concretizations produces rows bit-identical to N
independent concrete campaigns of the same fault population — at every
width, for every class, against both concrete engines.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import (
    SWEEP_WIDTHS,
    campaign_width_sweep,
    symbolic_width_sweep,
)
from repro.core.twm import twm_transform
from repro.engine import get_engine
from repro.library import catalog
from repro.memory.faults import Cell, StuckAtFault

N_WORDS = 6
SEED = 3


@pytest.fixture(scope="module")
def march():
    return twm_transform(catalog.get("March C-"), max(SWEEP_WIDTHS)).twmarch


class TestWidthSweepIdentity:
    def test_rows_identical_to_batch_campaigns(self, march):
        symbolic = symbolic_width_sweep(march, N_WORDS, seed=SEED)
        campaign = campaign_width_sweep(march, N_WORDS, seed=SEED)
        assert symbolic.widths == tuple(sorted(SWEEP_WIDTHS))
        assert symbolic.row_map() == campaign.row_map()

    def test_rows_identical_to_reference_campaigns(self, march):
        widths = (4, 8)  # the interpreter leg is slow; keep it small
        symbolic = symbolic_width_sweep(
            march, N_WORDS, widths=widths, seed=SEED
        )
        campaign = campaign_width_sweep(
            march, N_WORDS, widths=widths, seed=SEED, engine="reference"
        )
        assert symbolic.row_map() == campaign.row_map()

    def test_universe_width_parameter(self, march):
        symbolic = symbolic_width_sweep(
            march, N_WORDS, widths=(8, 16), universe_width=8, seed=SEED
        )
        campaign = campaign_width_sweep(
            march, N_WORDS, widths=(8, 16), universe_width=8, seed=SEED
        )
        assert symbolic.universe_width == campaign.universe_width == 8
        assert symbolic.row_map() == campaign.row_map()

    def test_default_universe_width_is_min_width(self, march):
        report = symbolic_width_sweep(march, N_WORDS, widths=(16, 8))
        assert report.universe_width == 8
        assert report.widths == (8, 16)


class TestWidthSweepReport:
    def test_width_independent_classes_cover_all(self, march):
        report = symbolic_width_sweep(march, N_WORDS, seed=SEED)
        # The Table 2 claim for a well-formed transparent test: the
        # coverage of a fixed fault population does not depend on b.
        assert report.width_independent_classes == sorted(
            {row.class_name for row in report.rows}
        )

    def test_render_lists_every_width(self, march):
        report = symbolic_width_sweep(march, N_WORDS, seed=SEED)
        rendered = report.render()
        for width in SWEEP_WIDTHS:
            assert f"b={width}" in rendered
        assert "symbolic" in rendered

    def test_coverage_vector_per_width(self, march):
        report = symbolic_width_sweep(march, N_WORDS, seed=SEED)
        for width in SWEEP_WIDTHS:
            vector = report.coverage_vector(width)
            assert set(vector) == {row.class_name for row in report.rows}
            assert all(0.0 <= value <= 100.0 for value in vector.values())


class TestConstantVerdicts:
    def test_saf_verdict_is_constant_detected(self, march):
        engine = get_engine("symbolic")
        (verdict,) = engine.detect_symbolic(
            march, N_WORDS, [StuckAtFault(Cell(0, 0), 1)]
        )
        assert verdict.constant is True
        assert verdict.concretize(8, [0] * N_WORDS) is True

    def test_constant_never_claims_false(self, march):
        engine = get_engine("symbolic")
        universe_classes = ("CFst-intra", "CFid-intra")
        import random

        from repro.memory.injection import standard_fault_universe

        universe = standard_fault_universe(
            N_WORDS, 4, max_inter_pairs=4, rng=random.Random(SEED),
            include_rdf=True, include_af=True,
        )
        for class_name in universe_classes:
            verdicts = engine.detect_symbolic(
                march, N_WORDS, universe[class_name]
            )
            assert all(v.constant in (True, None) for v in verdicts)
            # The partially-covered classes must have verdicts the
            # sweep genuinely concretizes per width.
            assert any(v.constant is None for v in verdicts), class_name
