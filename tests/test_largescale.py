"""Larger-configuration integration tests (realistic dimensions)."""

import random

import pytest

from repro import (
    FaultyMemory,
    Memory,
    StuckAtFault,
    TransparentBist,
    library,
    run_march,
    twm_transform,
)
from repro.baselines.scheme1 import scheme1_transform
from repro.bist.symmetry import SymmetricBist
from repro.memory import Cell


class TestWideWords:
    @pytest.mark.parametrize("width", [32, 64, 128])
    def test_twm_transparency_at_width(self, width):
        result = twm_transform(library.get("March C-"), width)
        memory = Memory(32, width)
        memory.randomize(random.Random(width))
        before = memory.snapshot()
        run = run_march(result.twmarch, memory)
        assert not run.detected
        assert memory.snapshot() == before

    def test_full_bist_on_1k_words(self):
        result = twm_transform(library.get("March C-"), 32)
        bist = TransparentBist.from_twm(result)
        memory = Memory(1024, 32)
        memory.randomize(random.Random(0))
        outcome = bist.run(memory)
        assert not outcome.detected
        assert outcome.transparent
        assert outcome.test_ops == result.tcm * 1024

    def test_fault_in_large_memory_detected(self):
        result = twm_transform(library.get("March U"), 64)
        bist = TransparentBist.from_twm(result)
        memory = FaultyMemory(256, 64, [StuckAtFault(Cell(200, 63), 0)])
        memory.randomize(random.Random(1))
        assert bist.run(memory).detected

    def test_msb_and_lsb_cells_covered(self):
        result = twm_transform(library.get("March C-"), 128)
        bist = TransparentBist.from_twm(result)
        for bit in (0, 127):
            memory = FaultyMemory(16, 128, [StuckAtFault(Cell(7, bit), 1)])
            memory.randomize(random.Random(bit))
            assert bist.run(memory).detected


class TestComplexityAtScale:
    def test_128bit_headline(self):
        result = twm_transform(library.get("March C-"), 128)
        assert result.tcm == 10 + 5 * 7  # N + 5*log2(128)
        assert result.tcp == 5 + 3 * 7 + 1

    def test_scheme1_at_128(self):
        result = scheme1_transform(library.get("March C-"), 128)
        # 8 background passes at this width.
        assert result.n_backgrounds == 8

    def test_symmetric_bist_scales(self):
        result = twm_transform(library.get("March C-"), 32)
        bist = SymmetricBist(result.twmarch, 64, 32, lanes=3, verify_cells=4)
        memory = Memory(64, 32)
        memory.randomize(random.Random(3))
        assert not bist.run(memory)
        faulty = FaultyMemory(64, 32, [StuckAtFault(Cell(33, 17), 1)])
        faulty.randomize(random.Random(4))
        assert bist.run(faulty)


class TestAllCatalogAtRealWidth:
    @pytest.mark.parametrize("name", library.names())
    def test_bist_pipeline_for_every_test(self, name):
        result = twm_transform(library.get(name), 32)
        bist = TransparentBist.from_twm(result)
        memory = Memory(32, 32)
        memory.randomize(random.Random(hash(name) & 0xFFFF))
        outcome = bist.run(memory)
        assert not outcome.detected
        assert outcome.transparent
