"""Tests for the Scheme 1 (Nicolaidis word-oriented) baseline."""

import pytest

from repro.baselines.scheme1 import (
    scheme1_formula_tcm,
    scheme1_formula_tcp,
    scheme1_transform,
)
from repro.core.notation import parse_march
from repro.core.twm import TWMError
from repro.core.validate import (
    check_transparency_by_execution,
    validate_transparent,
)
from repro.library import catalog


class TestPaperExample:
    """Section 3's example: March C− on 4-bit words (T1'..T4')."""

    def setup_method(self):
        self.result = scheme1_transform(catalog.get("March C-"), 4)

    def test_pass_count(self):
        # log2(4)+1 = 3 background passes + restore.
        assert len(self.result.passes) == 4

    def test_pass_op_counts(self):
        counts = [p.op_count for p in self.result.passes]
        # Executable construction: 9, 11, 11 + 2-op restore (the paper
        # counts 9, 10, 10, 1 by folding the background switch; see
        # DESIGN.md §4.4).
        assert counts == [9, 11, 11, 2]

    def test_first_pass_is_plain_transparent(self):
        assert str(self.result.passes[0]) == (
            "{⇑(rc,w~c); ⇑(r~c,wc); ⇓(rc,w~c); ⇓(r~c,wc); ⇕(rc)}"
        )

    def test_second_pass_uses_checkerboard(self):
        text = str(self.result.passes[1])
        assert "D1" in text
        assert text.startswith("{⇕(rc,w(c^D1))")

    def test_restore_returns_to_c(self):
        assert str(self.result.passes[-1]) == "{⇕(r(c^D2),wc)}"


class TestProperties:
    @pytest.mark.parametrize("name", ["March C-", "March U", "March B"])
    @pytest.mark.parametrize("width", [2, 4, 8, 16])
    def test_valid_transparent(self, name, width):
        result = scheme1_transform(catalog.get(name), width)
        assert validate_transparent(result.transparent).ok

    @pytest.mark.parametrize("name", ["March C-", "March U"])
    def test_transparency_by_execution(self, name):
        result = scheme1_transform(catalog.get(name), 8)
        assert check_transparency_by_execution(result.transparent)

    def test_prediction_is_reads_only(self):
        result = scheme1_transform(catalog.get("March C-"), 8)
        assert all(op.is_read for op in result.prediction.all_ops)
        assert result.tcp == result.transparent.n_reads

    def test_grows_with_width(self):
        t = catalog.get("March C-")
        costs = [scheme1_transform(t, w).tcm for w in (4, 8, 16, 32)]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_width1_is_single_pass(self):
        result = scheme1_transform(catalog.get("March C-"), 1)
        assert len(result.passes) == 1
        assert result.tcm == 9

    def test_summary_mentions_passes(self):
        s = scheme1_transform(catalog.get("March C-"), 8).summary()
        assert "4 background passes" in s


class TestFormulas:
    def test_formula_tcm_matches_paper_example(self):
        # N(log2 b + 1): March C- on 4-bit words = 30.
        assert scheme1_formula_tcm(10, 4) == 30

    def test_formula_tcp(self):
        # Q + (Q+1) log2 b for March C- on 4-bit words: 5 + 12 = 17.
        assert scheme1_formula_tcp(5, 4) == 17

    @pytest.mark.parametrize("width", [4, 8, 16, 32])
    def test_measured_close_to_formula(self, width):
        # The executable construction costs at most 2 extra ops per
        # non-first pass plus one on the restore.
        t = catalog.get("March C-")
        measured = scheme1_transform(t, width).tcm
        formula = scheme1_formula_tcm(t.op_count, width)
        from repro.core.backgrounds import log2_width

        assert formula <= measured <= formula + 2 * log2_width(width) + 1


class TestErrors:
    def test_rejects_word_test(self):
        t = parse_march("⇕(wD1); ⇑(rD1,w~D1)", name="bg")
        with pytest.raises(TWMError):
            scheme1_transform(t, 8)

    def test_rejects_missing_init(self):
        t = parse_march("⇕(r0,w1); ⇕(r1)", name="no-init")
        with pytest.raises(TWMError, match="initialization"):
            scheme1_transform(t, 4)

    def test_rejects_non_power_width(self):
        with pytest.raises(ValueError):
            scheme1_transform(catalog.get("March C-"), 12)
