"""Tests for the fault-free memory model and trace recording."""

import random

import pytest

from repro.memory.model import Memory, words_equal
from repro.memory.traces import AccessEvent, TraceRecorder


class TestBasics:
    def test_initial_fill(self):
        m = Memory(4, 8, fill=0xAB)
        assert m.snapshot() == [0xAB] * 4

    def test_fill_masks_to_width(self):
        m = Memory(2, 4, fill=0xFF)
        assert m.snapshot() == [0xF, 0xF]

    def test_read_write(self):
        m = Memory(4, 8)
        m.write(2, 0x5A)
        assert m.read(2) == 0x5A
        assert m.read(0) == 0

    def test_write_masks_value(self):
        m = Memory(2, 4)
        m.write(0, 0x1F)
        assert m.read(0) == 0xF

    def test_len_and_mask(self):
        m = Memory(10, 6)
        assert len(m) == 10
        assert m.word_mask == 0x3F

    @pytest.mark.parametrize("addr", [-1, 4, 100])
    def test_address_bounds(self, addr):
        m = Memory(4, 8)
        with pytest.raises(IndexError):
            m.read(addr)
        with pytest.raises(IndexError):
            m.write(addr, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Memory(0, 8)
        with pytest.raises(ValueError):
            Memory(4, 0)


class TestBulkContent:
    def test_load(self):
        m = Memory(3, 8)
        m.load([1, 2, 3])
        assert m.snapshot() == [1, 2, 3]

    def test_load_wrong_length(self):
        m = Memory(3, 8)
        with pytest.raises(ValueError):
            m.load([1, 2])

    def test_load_masks_values(self):
        m = Memory(2, 4)
        m.load([0x12, 0x34])
        assert m.snapshot() == [0x2, 0x4]

    def test_randomize_is_deterministic_per_seed(self):
        a, b = Memory(16, 8), Memory(16, 8)
        a.randomize(random.Random(42))
        b.randomize(random.Random(42))
        assert words_equal(a.snapshot(), b.snapshot())

    def test_randomize_fits_width(self):
        m = Memory(64, 5)
        m.randomize(random.Random(0))
        assert all(w < 32 for w in m.snapshot())

    def test_snapshot_is_a_copy(self):
        m = Memory(2, 8)
        snap = m.snapshot()
        m.write(0, 0xFF)
        assert snap == [0, 0]

    def test_fill(self):
        m = Memory(3, 8)
        m.fill(7)
        assert m.snapshot() == [7, 7, 7]


class TestCellAccess:
    def test_get_bit(self):
        m = Memory(2, 8)
        m.write(1, 0b1010)
        assert m.get_bit(1, 1) == 1
        assert m.get_bit(1, 0) == 0

    def test_get_bit_bounds(self):
        m = Memory(2, 8)
        with pytest.raises(IndexError):
            m.get_bit(0, 8)
        with pytest.raises(IndexError):
            m.get_bit(5, 0)


class TestCountersAndObservers:
    def test_counters(self):
        m = Memory(4, 8)
        m.write(0, 1)
        m.read(0)
        m.read(1)
        assert m.write_count == 1
        assert m.read_count == 2
        m.reset_counters()
        assert m.read_count == m.write_count == 0

    def test_trace_recorder(self):
        m = Memory(4, 8)
        rec = TraceRecorder()
        m.attach(rec)
        m.write(1, 0xAA)
        m.read(1)
        assert len(rec) == 2
        assert rec.events[0] == AccessEvent("w", 1, 0xAA)
        assert rec.events[1] == AccessEvent("r", 1, 0xAA)
        assert len(rec.reads) == 1
        assert len(rec.writes) == 1

    def test_detach(self):
        m = Memory(4, 8)
        rec = TraceRecorder()
        m.attach(rec)
        m.detach(rec)
        m.write(0, 1)
        assert len(rec) == 0

    def test_recorder_clear(self):
        rec = TraceRecorder()
        rec.notify(AccessEvent("r", 0, 0))
        rec.clear()
        assert len(rec) == 0

    def test_event_str(self):
        assert str(AccessEvent("r", 3, 255)) == "r[3]=0xff"


def test_words_equal():
    assert words_equal([1, 2], (1, 2))
    assert not words_equal([1, 2], [2, 1])
