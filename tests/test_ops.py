"""Unit tests for the symbolic operation/data-expression layer."""

import pytest

from repro.core.ops import (
    ONES,
    DataExpr,
    Mask,
    Op,
    OpKind,
    Pattern,
    bit,
    checker,
    checkerboard,
    reads,
    writes,
)


class TestCheckerboard:
    def test_paper_example_width8(self):
        # The worked example in Section 4 of the paper.
        assert checkerboard(1, 8) == 0b01010101
        assert checkerboard(2, 8) == 0b00110011
        assert checkerboard(3, 8) == 0b00001111

    def test_width4(self):
        # Section 3's background plan for 4-bit words: 0101, 0011.
        assert checkerboard(1, 4) == 0b0101
        assert checkerboard(2, 4) == 0b0011

    def test_width2(self):
        assert checkerboard(1, 2) == 0b01

    def test_definition_rule(self):
        # Bit j of D_k is 1 iff floor(j / 2**(k-1)) is even.
        for k in (1, 2, 3, 4):
            for width in (8, 16, 32):
                value = checkerboard(k, width)
                for j in range(width):
                    expected = 1 if (j >> (k - 1)) % 2 == 0 else 0
                    assert (value >> j) & 1 == expected

    def test_half_weight(self):
        # Every checkerboard has as many ones as zeros when it fits.
        for k in (1, 2, 3):
            for width in (8, 16, 64):
                assert checkerboard(k, width).bit_count() == width // 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            checkerboard(0, 8)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            checkerboard(1, 0)


class TestPattern:
    def test_ones_resolve(self):
        assert ONES.resolve(8) == 0xFF
        assert ONES.resolve(1) == 1

    def test_checker_resolve(self):
        assert checker(1).resolve(8) == 0b01010101

    def test_bit_resolve(self):
        assert bit(0).resolve(8) == 1
        assert bit(7).resolve(8) == 0x80

    def test_bit_out_of_width(self):
        with pytest.raises(ValueError):
            bit(8).resolve(8)

    def test_symbols(self):
        assert ONES.symbol == "1"
        assert checker(2).symbol == "D2"
        assert bit(3).symbol == "e3"

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            Pattern("bogus")

    def test_checker_index_validation(self):
        with pytest.raises(ValueError):
            Pattern("checker", 0)

    def test_bit_index_validation(self):
        with pytest.raises(ValueError):
            Pattern("bit", -1)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ONES.resolve(0)


class TestMask:
    def test_zero(self):
        assert Mask.ZERO.is_zero
        assert Mask.ZERO.resolve(8) == 0
        assert Mask.ZERO.symbol == "0"

    def test_ones(self):
        assert Mask.ONES.resolve(4) == 0xF
        assert Mask.ONES.symbol == "1"

    def test_xor_cancellation(self):
        d1 = Mask.of(checker(1))
        assert (d1 ^ d1).is_zero
        assert (d1 ^ Mask.ZERO) == d1

    def test_xor_combination(self):
        m = Mask.of(checker(1)) ^ Mask.of(checker(2))
        assert m.resolve(8) == 0b01010101 ^ 0b00110011

    def test_of_duplicates_cancel(self):
        assert Mask.of(ONES, ONES).is_zero

    def test_symbol_ordering_is_deterministic(self):
        m = Mask.of(ONES, checker(2), checker(1))
        assert m.symbol == Mask.of(checker(1), ONES, checker(2)).symbol

    def test_complement_symbol(self):
        m = Mask.of(checker(1)) ^ Mask.ONES
        assert "D1" in m.symbol and "1" in m.symbol

    def test_hashable(self):
        assert len({Mask.ZERO, Mask.ONES, Mask.of(checker(1))}) == 3


class TestDataExpr:
    def test_const0(self):
        e = DataExpr.const0()
        assert e.evaluate(0xAB, 8) == 0
        assert e.symbol == "0"

    def test_const1(self):
        e = DataExpr.const1()
        assert e.evaluate(0xAB, 8) == 0xFF
        assert e.symbol == "1"

    def test_content(self):
        e = DataExpr.content()
        assert e.evaluate(0xAB, 8) == 0xAB
        assert e.symbol == "c"

    def test_content_inv(self):
        e = DataExpr.content_inv()
        assert e.evaluate(0xAB, 8) == 0xAB ^ 0xFF
        assert e.symbol == "~c"

    def test_content_with_background(self):
        e = DataExpr.content(Mask.of(checker(1)))
        assert e.evaluate(0x00, 8) == 0b01010101
        assert e.symbol == "(c^D1)"

    def test_xor_operator(self):
        e = DataExpr.content() ^ Mask.ONES
        assert e == DataExpr.content_inv()

    def test_width_truncation(self):
        e = DataExpr.content()
        assert e.evaluate(0x1FF, 8) == 0xFF

    def test_absolute_background(self):
        e = DataExpr.absolute(Mask.of(checker(2)))
        assert e.evaluate(0xAB, 8) == 0b00110011  # content ignored


class TestOp:
    def test_shorthand_constructors(self):
        assert Op.r0().is_read and not Op.r0().is_relative
        assert Op.w1().is_write
        assert str(Op.r0()) == "r0"
        assert str(Op.w1()) == "w1"

    def test_transparent_rendering(self):
        op = Op.read(DataExpr.content(Mask.of(checker(1))))
        assert str(op) == "r(c^D1)"
        assert op.is_relative

    def test_kind_str(self):
        assert OpKind.READ.value == "r"
        assert OpKind.WRITE.value == "w"

    def test_counting_helpers(self):
        ops = [Op.r0(), Op.w1(), Op.r1(), Op.w0(), Op.w1()]
        assert reads(ops) == 2
        assert writes(ops) == 3

    def test_equality_and_hash(self):
        assert Op.r0() == Op.r0()
        assert Op.r0() != Op.w0()
        assert len({Op.r0(), Op.r0(), Op.w0()}) == 2
