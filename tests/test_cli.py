"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "March C-" in out
        assert "March U" in out
        assert "March RAW" in out


class TestShow:
    def test_shows_test(self, capsys):
        assert main(["show", "March C-"]) == 0
        out = capsys.readouterr().out
        assert "⇑(r0,w1)" in out
        assert "reference" in out

    def test_ascii_flag(self, capsys):
        assert main(["show", "March C-", "--ascii"]) == 0
        assert "up(r0,w1)" in capsys.readouterr().out

    def test_unknown_test(self, capsys):
        assert main(["show", "March Z"]) == 2
        assert "March Z" in capsys.readouterr().err


class TestTransform:
    def test_twm(self, capsys):
        assert main(["transform", "March U", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "TCM 29n" in out
        assert "ATMarch" in out

    def test_scheme1(self, capsys):
        assert main(
            ["transform", "March C-", "--width", "4", "--scheme", "scheme1"]
        ) == 0
        out = capsys.readouterr().out
        assert "background passes" in out

    def test_ascii(self, capsys):
        assert main(["transform", "March C-", "--width", "4", "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "any(" in out
        assert "⇕" not in out

    def test_bad_width(self, capsys):
        assert main(["transform", "March C-", "--width", "12"]) == 2
        assert "power of two" in capsys.readouterr().err


class TestComplexity:
    def test_default_sweep(self, capsys):
        assert main(["complexity"]) == 0
        out = capsys.readouterr().out
        assert "March C-" in out and "128" in out

    def test_custom_widths(self, capsys):
        assert main(["complexity", "--widths", "8", "--tests", "March U"]) == 0
        out = capsys.readouterr().out
        assert "March U" in out
        assert "March C-" not in out


class TestCoverage:
    def test_runs_campaign(self, capsys):
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "4",
                "--words", "3",
                "--max-inter-pairs", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "SAF: " in out
        assert "overall" in out

    def test_aliasing_mode(self, capsys):
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "4",
                "--words", "3",
                "--max-inter-pairs", "4",
                "--mode", "aliasing",
                "--misr-width", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "[aliasing]" in out
        assert "aliased" in out
        assert "stream" in out

    def test_aliasing_mode_sharded(self, capsys):
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "4",
                "--words", "3",
                "--max-inter-pairs", "4",
                "--mode", "aliasing",
                "--jobs", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "aliased" in out
        assert "jobs=2" in out

    def test_symbolic_engine(self, capsys):
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "4",
                "--words", "3",
                "--max-inter-pairs", "4",
                "--engine", "symbolic",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "engine: symbolic" in out
        assert "overall" in out

    def test_symbolic_engine_rejects_signature_mode(self, capsys):
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "4",
                "--words", "3",
                "--max-inter-pairs", "4",
                "--engine", "symbolic",
                "--mode", "signature",
            ]
        ) == 2
        assert "width-concrete" in capsys.readouterr().err

    def test_chaos_campaign_recovers_and_reports_faults(self, capsys):
        # A crashed worker on the first SAF chunk is retried onto a
        # respawned worker; coverage is unchanged and the supervision
        # is surfaced on the faults: line.
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "8",
                "--words", "16",
                "--max-inter-pairs", "4",
                "--classes", "SAF,TF",
                "--jobs", "2",
                "--materialize-classes",
                "--chaos", "crash:SAF:0",
                "--max-retries", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "faults: " in out
        assert "1 crashes" in out
        assert "1 chaos" in out

    def test_clean_run_prints_no_faults_line(self, capsys):
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "8",
                "--words", "16",
                "--max-inter-pairs", "4",
                "--classes", "SAF",
                "--jobs", "2",
                "--materialize-classes",
            ]
        ) == 0
        assert "faults: " not in capsys.readouterr().out

    def test_no_degrade_fails_on_poisoned_chunk(self, capsys):
        # attempt=* poisons the chunk on every dispatch; --no-degrade
        # turns the exhausted retries into a clean exit-2 error.
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "8",
                "--words", "16",
                "--max-inter-pairs", "4",
                "--classes", "SAF",
                "--jobs", "2",
                "--materialize-classes",
                "--chaos", "error:SAF:0:*",
                "--max-retries", "1",
                "--no-degrade",
            ]
        ) == 2
        assert "degradation disabled" in capsys.readouterr().err

    def test_bad_chaos_spec_is_rejected(self, capsys):
        assert main(
            [
                "coverage",
                "March C-",
                "--width", "4",
                "--words", "3",
                "--chaos", "explode:SAF:0",
            ]
        ) == 2
        assert "chaos" in capsys.readouterr().err


class TestTable2:
    def test_cross_check_passes(self, capsys):
        assert main(
            [
                "table2",
                "--widths", "4,8",
                "--words", "3",
                "--max-inter-pairs", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "vs reference" in out and "vs batch" in out
        assert "symbolic verdicts match" in out

    def test_single_engine_diff(self, capsys):
        assert main(
            [
                "table2",
                "March U",
                "--widths", "4",
                "--words", "2",
                "--max-inter-pairs", "2",
                "--engines", "batch",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "March U" in out
        assert "vs reference" not in out

    def test_unknown_test(self, capsys):
        assert main(["table2", "March Z", "--widths", "4"]) == 2
        assert "March Z" in capsys.readouterr().err


class TestValidate:
    def test_valid_solid(self, capsys):
        assert main(["validate", "⇕(w0); ⇑(r0,w1); ⇕(r1)"]) == 0
        assert "valid solid" in capsys.readouterr().out

    def test_valid_transparent(self, capsys):
        assert main(["validate", "⇕(rc,w~c); ⇕(r~c,wc); ⇕(rc)"]) == 0
        assert "valid transparent" in capsys.readouterr().out

    def test_invalid_test(self, capsys):
        assert main(["validate", "⇕(w0); ⇑(r1,w1)"]) == 1
        assert "read expects" in capsys.readouterr().err

    def test_parse_error(self, capsys):
        assert main(["validate", "nonsense"]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_transparent_runs_execution_check(self, capsys):
        assert main(["validate", "⇕(rc,w~c); ⇕(r~c,wc)"]) == 0
        assert "randomized trials" in capsys.readouterr().out

    def test_non_restoring_test_caught_structurally(self, capsys):
        # The structural validator is sound, so it rejects a
        # non-restoring test before the execution check even runs.
        assert main(["validate", "⇕(rc,w~c)"]) == 1
        assert "not transparent" in capsys.readouterr().err


class TestLint:
    def test_clean_catalog_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "lint: 0 error" in out
        assert "[M020]" in out

    def test_single_test(self, capsys):
        assert main(["lint", "March C-"]) == 0
        out = capsys.readouterr().out
        assert "TCM=35n" in out
        assert "March C-" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", "--notation", "⇕(w0); ⇑(r1,w1)"]) == 1
        assert "[M003]" in capsys.readouterr().out

    def test_fail_on_info_gates_informational_output(self, capsys):
        assert main(["lint", "March C-", "--fail-on", "info"]) == 1

    def test_severity_filters_display_only(self, capsys):
        assert main(["lint", "March C-", "--severity", "error"]) == 0
        out = capsys.readouterr().out
        assert "[M020]" not in out
        assert "lint: 0 error, 0 warning, 0 info" in out

    def test_json_format(self, capsys):
        import json

        assert main(["lint", "March C-", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 0
        assert any(d["rule"] == "M040" for d in payload["diagnostics"])

    def test_explicit_rule_selection(self, capsys):
        assert main(["lint", "March C-", "--rules", "M020,I010"]) == 0
        out = capsys.readouterr().out
        assert "[M020]" in out
        assert "[I010]" in out
        assert "[M040]" not in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "M999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_exec_rule_opt_in_finds_transparency_violation(self, capsys):
        code = main(["lint", "--notation", "⇕(rc,w~c)", "--rules", "X001"])
        assert code == 1
        assert "transparency violated" in capsys.readouterr().out

    def test_unknown_test_exits_two(self, capsys):
        assert main(["lint", "March Z"]) == 2
        assert "March Z" in capsys.readouterr().err

    def test_parse_error_exits_two(self, capsys):
        assert main(["lint", "--notation", "nonsense"]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_name_and_notation_conflict(self, capsys):
        assert main(["lint", "MATS", "--notation", "⇕(w0)"]) == 2
        assert "not both" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
