"""Fault-tolerant campaign runtime tests: chaos plans, retry policy,
supervised recovery, and graceful degradation.

The core contract under test: a sharded campaign disturbed by injected
worker faults (crash / hang / corrupt / poisoned chunks) recovers to a
report **bit-identical** to an undisturbed ``jobs=1`` run, with every
intervention accounted in ``CampaignReport.fault_tolerance``.
"""

import random

import pytest

from repro.analysis.coverage import compare_flow, run_campaign
from repro.core.twm import twm_transform
from repro.engine import (
    CampaignRunner,
    ChaosEvent,
    ChunkExhaustedError,
    FaultPlan,
    FaultToleranceStats,
    RetryPolicy,
    get_engine,
)
from repro.engine import parallel as parallel_module
from repro.library import catalog
from repro.memory.injection import standard_fault_universe

# Fast per-attempt deadline for hang tests: long enough that a healthy
# chunk (milliseconds) never trips it on a loaded CI host, short
# enough to keep the suite quick.
TIMEOUT = 2.0


def materialized_universe(n_words=4, width=4, seed=7, classes=("SAF", "TF")):
    """Concrete fault lists (streaming descriptors never shard, so
    chaos tests need materialized classes)."""
    universe = standard_fault_universe(
        n_words, width, max_inter_pairs=4, rng=random.Random(seed)
    )
    return {name: list(universe[name]) for name in classes}


def make_flow(width=4, n_words=4, seed=7):
    twm = twm_transform(catalog.get("March C-"), width)
    return compare_flow(twm.twmarch, n_words, width, initial=None, seed=seed)


def sharded_runner(**kwargs):
    """A jobs=2 runner with chunks small enough that every test class
    really shards (32 SAF faults / min_chunk 4 -> 8 chunks)."""
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("min_chunk", 4)
    return CampaignRunner("batch", **kwargs)


def reports_equal(a, b):
    assert a.coverage_vector() == b.coverage_vector()
    assert list(a.classes) == list(b.classes)
    assert a.undetected == b.undetected


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=-1.0)
        # Boundary values are legal: no retries, instant expiry.
        RetryPolicy(max_attempts=1, base_delay=0.0, timeout=0.0)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_attempts=64, base_delay=0.5)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(40) == 30.0  # capped

    def test_max_retries(self):
        assert RetryPolicy(max_attempts=3).max_retries == 2
        assert RetryPolicy(max_attempts=1).max_retries == 0


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosEvent("explode")
        with pytest.raises(ValueError, match="chunk"):
            ChaosEvent("crash", chunk=-1)
        with pytest.raises(ValueError, match="attempt"):
            ChaosEvent("crash", attempt=0)

    def test_explicit_events_match_fields(self):
        plan = FaultPlan([ChaosEvent("crash", "SAF", 2)])
        assert plan.action_for("SAF", 2, 1) == "crash"
        assert plan.action_for("SAF", 2, 2) is None  # attempt 1 only
        assert plan.action_for("TF", 2, 1) is None
        assert plan.action_for("SAF", 3, 1) is None

    def test_poisoned_event_matches_every_attempt(self):
        plan = FaultPlan([ChaosEvent("error", "SAF", 0, attempt=None)])
        for attempt in (1, 2, 5):
            assert plan.action_for("SAF", 0, attempt) == "error"

    def test_wildcard_class(self):
        plan = FaultPlan([ChaosEvent("hang", None, 1)])
        assert plan.action_for("SAF", 1, 1) == "hang"
        assert plan.action_for("TF", 1, 1) == "hang"

    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded(7, rate=0.5, kinds=("crash", "error"))
        b = FaultPlan.seeded(7, rate=0.5, kinds=("crash", "error"))
        decisions = [a.action_for("SAF", i, 1) for i in range(64)]
        assert decisions == [b.action_for("SAF", i, 1) for i in range(64)]
        assert any(decisions)  # rate 0.5 over 64 chunks disturbs some
        assert not all(decisions)  # ... and spares some
        # Retries are never disturbed by the seeded rate.
        assert all(a.action_for("SAF", i, 2) is None for i in range(64))

    def test_seeded_plans_differ_by_seed(self):
        a = [FaultPlan.seeded(1, 0.5).action_for("TF", i, 1) for i in range(64)]
        b = [FaultPlan.seeded(2, 0.5).action_for("TF", i, 1) for i in range(64)]
        assert a != b

    def test_parse_events(self):
        plan = FaultPlan.parse("crash:SAF:0,hang:TF:1:2,error:CF:3:*")
        assert plan.events == (
            ChaosEvent("crash", "SAF", 0),
            ChaosEvent("hang", "TF", 1, attempt=2),
            ChaosEvent("error", "CF", 3, attempt=None),
        )

    def test_parse_seeded(self):
        plan = FaultPlan.parse("seeded:42:0.25:crash|hang")
        assert plan.seed == 42
        assert plan.rate == 0.25
        assert plan.kinds == ("crash", "hang")

    def test_parse_rejects_bad_specs(self):
        for spec in ("", "crash", "crash:SAF", "explode:SAF:0",
                     "seeded:x:0.5", "seeded:1:2.0", "crash:SAF:zero"):
            with pytest.raises(ValueError):
                FaultPlan.parse(spec)


class TestFaultToleranceStats:
    def test_merge_and_any(self):
        stats = FaultToleranceStats()
        assert not stats.any
        stats.merge({"retries": 2, "crashes": 1, "respawns": 1,
                     "degraded_chunks": 0, "lost_seconds": 0.5,
                     "timeouts": 0, "corrupt_chunks": 0, "chunk_errors": 0,
                     "pool_failures": 0, "chaos_injected": 1})
        stats.merge(FaultToleranceStats(retries=1))
        assert stats.retries == 3 and stats.crashes == 1
        assert stats.lost_seconds == 0.5
        assert stats.any

    def test_reset_preserves_identity(self):
        stats = FaultToleranceStats(retries=3, lost_seconds=1.0)
        alias = stats
        stats.reset()
        assert alias.retries == 0 and alias.lost_seconds == 0.0
        assert not alias.any

    def test_render_breakdown(self):
        text = FaultToleranceStats(
            retries=2, respawns=1, crashes=1, timeouts=1, chaos_injected=2
        ).render()
        assert "2 retries" in text and "1 respawns" in text
        assert "1 crashes" in text and "1 timeouts" in text
        assert "2 chaos" in text


class TestChaosRecovery:
    """Disturbed sharded campaigns recover bit-identically."""

    def run_pair(self, chaos, retry, classes=("SAF", "TF"), degrade=True):
        universe = materialized_universe(classes=classes)
        flow = make_flow()
        baseline = run_campaign(flow, universe, engine="batch", jobs=1)
        runner = sharded_runner(retry=retry, chaos=chaos, degrade=degrade)
        try:
            disturbed = run_campaign(flow, universe, runner=runner)
        finally:
            runner.close()
        return baseline, disturbed

    def test_crash_and_hang_recover_bit_identical(self):
        # The issue's acceptance scenario: one injected worker crash
        # AND one injected chunk hang at jobs=2, recovered to a report
        # bit-identical to the undisturbed jobs=1 run.
        chaos = FaultPlan.parse("crash:SAF:0,hang:TF:0")
        retry = RetryPolicy(max_attempts=3, base_delay=0.01, timeout=TIMEOUT)
        baseline, disturbed = self.run_pair(chaos, retry)
        reports_equal(baseline, disturbed)
        ft = disturbed.fault_tolerance
        assert ft.crashes >= 1
        assert ft.timeouts >= 1
        assert ft.retries >= 2
        assert ft.respawns >= 2
        assert ft.chaos_injected == 2
        assert ft.degraded_chunks == 0
        assert ft.lost_seconds > 0
        assert "retries" in disturbed.render()  # faults: line surfaced

    def test_corrupt_chunk_is_detected_and_retried(self):
        chaos = FaultPlan.parse("corrupt:SAF:1")
        retry = RetryPolicy(max_attempts=2, base_delay=0.0)
        baseline, disturbed = self.run_pair(chaos, retry, classes=("SAF",))
        reports_equal(baseline, disturbed)
        assert disturbed.fault_tolerance.corrupt_chunks == 1
        assert disturbed.fault_tolerance.retries == 1

    def test_worker_error_is_retried(self):
        chaos = FaultPlan.parse("error:TF:2")
        retry = RetryPolicy(max_attempts=2, base_delay=0.0)
        baseline, disturbed = self.run_pair(chaos, retry, classes=("TF",))
        reports_equal(baseline, disturbed)
        assert disturbed.fault_tolerance.chunk_errors == 1

    def test_poisoned_chunk_degrades_in_process(self):
        # attempt=* fails on every dispatch; only in-process
        # degradation can complete the campaign.
        chaos = FaultPlan.parse("error:SAF:0:*")
        retry = RetryPolicy(max_attempts=3, base_delay=0.0)
        baseline, disturbed = self.run_pair(chaos, retry, classes=("SAF",))
        reports_equal(baseline, disturbed)
        ft = disturbed.fault_tolerance
        assert ft.degraded_chunks == 1
        assert ft.retries == 2  # attempts 1..3, then degraded
        assert ft.chunk_errors == 3

    def test_zero_retries_degrades_on_first_failure(self):
        chaos = FaultPlan.parse("crash:SAF:0")
        retry = RetryPolicy(max_attempts=1, base_delay=0.0)
        baseline, disturbed = self.run_pair(chaos, retry, classes=("SAF",))
        reports_equal(baseline, disturbed)
        ft = disturbed.fault_tolerance
        assert ft.retries == 0
        assert ft.degraded_chunks == 1

    def test_instant_timeout_degrades_everything(self):
        # timeout=0 expires every attempt immediately: the degenerate
        # policy that forces the whole class through the in-process
        # rung — still bit-identical.
        retry = RetryPolicy(max_attempts=1, base_delay=0.0, timeout=0.0)
        baseline, disturbed = self.run_pair(None, retry, classes=("SAF",))
        reports_equal(baseline, disturbed)
        ft = disturbed.fault_tolerance
        assert ft.degraded_chunks > 0
        assert ft.timeouts > 0

    def test_no_degrade_raises_chunk_exhausted(self):
        universe = materialized_universe(classes=("SAF",))
        flow = make_flow()
        chaos = FaultPlan.parse("error:SAF:0:*")
        runner = sharded_runner(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            chaos=chaos,
            degrade=False,
        )
        try:
            with pytest.raises(ChunkExhaustedError, match="2 attempt"):
                run_campaign(flow, universe, runner=runner)
        finally:
            runner.close()

    def test_seeded_chaos_campaign_recovers(self):
        chaos = FaultPlan.seeded(3, rate=0.4, kinds=("crash", "error"))
        retry = RetryPolicy(max_attempts=3, base_delay=0.0)
        baseline, disturbed = self.run_pair(chaos, retry)
        reports_equal(baseline, disturbed)
        assert disturbed.fault_tolerance.chaos_injected > 0


class TestDegradationLadder:
    def test_pool_build_failure_falls_back_inline(self, monkeypatch):
        class Unbuildable:
            def __init__(self, *args, **kwargs):
                raise OSError("no more processes")

        monkeypatch.setattr(parallel_module, "_SupervisedPool", Unbuildable)
        universe = materialized_universe(classes=("SAF",))
        flow = make_flow()
        baseline = run_campaign(flow, universe, engine="batch", jobs=1)
        runner = sharded_runner()
        try:
            report = run_campaign(flow, universe, runner=runner)
            # The breakage is remembered for the runner's lifetime: no
            # rebuild storm on later classes (close() resets it).
            assert runner._pool_broken
        finally:
            runner.close()
        reports_equal(baseline, report)
        assert report.fault_tolerance.pool_failures == 1

    def test_runner_close_is_idempotent(self):
        runner = sharded_runner()
        universe = materialized_universe(classes=("SAF",))
        flow = make_flow()
        work = flow.work_unit()
        runner.bind(work, universe)
        runner.detect_class(work, universe["SAF"], class_name="SAF")
        runner.close()
        runner.close()  # second close is a no-op, not an error
        assert runner._pool is None

    def test_close_survives_dead_pool(self):
        runner = sharded_runner()
        universe = materialized_universe(classes=("SAF",))
        flow = make_flow()
        work = flow.work_unit()
        runner.bind(work, universe)
        runner.detect_class(work, universe["SAF"], class_name="SAF")
        # Kill the workers behind the supervisor's back; close() must
        # still succeed (a dead pool never masks the original error).
        for worker in runner._pool._workers:
            worker.process.terminate()
            worker.process.join(timeout=5.0)
        runner.close()
        runner.close()


class TestIncrementalBind:
    def test_rebinding_different_universe_keeps_pool(self):
        if parallel_module._pool_context().get_start_method() != "fork":
            pytest.skip("zero-copy binding requires fork")
        flow = make_flow()
        work = flow.work_unit()
        engine = get_engine("batch")
        first = materialized_universe(classes=("SAF", "TF"))
        second = {"SAF": first["SAF"][:16]}  # changed class + dropped one
        with sharded_runner() as runner:
            runner.bind(work, first)
            assert runner.detect_class(
                work, first["SAF"], class_name="SAF"
            ) == work.run(engine, first["SAF"])
            pids = runner._pool.worker_pids()
            assert len(pids) == 2
            # Re-binding a different universe ships a diff, not a new
            # pool: same worker processes, correct new verdicts.
            runner.bind(work, second)
            assert runner.detect_class(
                work, second["SAF"], class_name="SAF"
            ) == work.run(engine, second["SAF"])
            assert runner._pool.worker_pids() == pids

    def test_rebinding_same_universe_is_noop(self):
        flow = make_flow()
        work = flow.work_unit()
        universe = materialized_universe(classes=("SAF",))
        with sharded_runner() as runner:
            runner.bind(work, universe)
            generation = runner._generation
            runner.bind(work, universe)  # same object: identity match
            runner.bind(work, {"SAF": list(universe["SAF"])})  # equal copy
            assert runner._generation == generation

    def test_mixed_campaigns_after_rebind_stay_correct(self):
        flow = make_flow()
        work = flow.work_unit()
        engine = get_engine("batch")
        first = materialized_universe(classes=("SAF", "TF"))
        with sharded_runner() as runner:
            runner.bind(work, first)
            for name in first:
                assert runner.detect_class(
                    work, first[name], class_name=name
                ) == work.run(engine, first[name]), name
            second = materialized_universe(seed=23, classes=("SAF", "TF"))
            runner.bind(work, second)
            for name in second:
                assert runner.detect_class(
                    work, second[name], class_name=name
                ) == work.run(engine, second[name]), name
