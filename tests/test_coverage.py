"""Tests for fault-coverage campaign machinery."""

import random

import pytest

from repro.analysis.coverage import (
    AliasingFlow,
    aliasing_flow,
    compare_flow,
    compare_reports,
    run_campaign,
    signature_flow,
)
from repro.core.twm import nontransparent_word_reference, twm_transform
from repro.library import catalog
from repro.memory.injection import (
    enumerate_inter_word_cf,
    enumerate_stuck_at,
    enumerate_transition,
    standard_fault_universe,
)


N_WORDS, WIDTH = 4, 4


@pytest.fixture(scope="module")
def twm():
    return twm_transform(catalog.get("March C-"), WIDTH)


class TestBitOrientedCoverage:
    """Classic results on a bit-oriented (width 1) memory."""

    def _campaign(self, test, universe):
        flow = compare_flow(test, 8, 1, initial=0)
        return run_campaign(flow, universe)

    def test_march_cm_100pct_saf(self):
        rep = self._campaign(
            catalog.get("March C-"), {"SAF": list(enumerate_stuck_at(8, 1))}
        )
        assert rep.classes["SAF"].percent == 100.0

    def test_march_cm_100pct_tf(self):
        rep = self._campaign(
            catalog.get("March C-"), {"TF": list(enumerate_transition(8, 1))}
        )
        assert rep.classes["TF"].percent == 100.0

    def test_march_cm_100pct_inter_cf(self):
        universe = {
            "CF": list(enumerate_inter_word_cf(6, 1))
        }
        rep = self._campaign(catalog.get("March C-"), universe)
        assert rep.classes["CF"].percent == 100.0

    def test_mats_plus_misses_cf(self):
        universe = {"CF": list(enumerate_inter_word_cf(6, 1))}
        rep = self._campaign(catalog.get("MATS+"), universe)
        assert rep.classes["CF"].percent < 100.0

    def test_mats_plus_catches_saf(self):
        rep = self._campaign(
            catalog.get("MATS+"), {"SAF": list(enumerate_stuck_at(8, 1))}
        )
        assert rep.classes["SAF"].percent == 100.0


class TestCampaignReporting:
    def test_report_counts(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=None, seed=1)
        rep = run_campaign(flow, universe, flow_name="twm")
        assert rep.total == 2 * N_WORDS * WIDTH
        assert rep.detected == rep.total
        assert rep.percent == 100.0
        assert "twm" in rep.render()

    def test_undetected_kept(self):
        universe = {"CF": list(enumerate_inter_word_cf(6, 1))}
        flow = compare_flow(catalog.get("MATS+"), 6, 1, initial=0)
        rep = run_campaign(flow, universe, keep_undetected=3)
        assert 0 < len(rep.undetected["CF"]) <= 3

    def test_compare_reports_alignment(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=0)
        a = run_campaign(flow, universe, flow_name="a")
        b = run_campaign(flow, universe, flow_name="b")
        rows = compare_reports(a, b)
        assert rows == [("SAF", 100.0, 100.0, 0.0)]

    def test_coverage_vector(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=0)
        rep = run_campaign(flow, universe)
        assert rep.coverage_vector() == {"SAF": 100.0}


class TestSection5Equality:
    """The paper's coverage theorem, on a reduced universe (the full
    sweep is benchmark E7)."""

    def test_equality_on_main_classes(self, twm):
        universe = standard_fault_universe(
            N_WORDS, WIDTH, max_inter_pairs=12, rng=random.Random(0)
        )
        # Drop the class where transparent testing fundamentally differs
        # (static CFst expression; see EXPERIMENTS.md).
        universe.pop("CFst-intra")
        ref = nontransparent_word_reference(catalog.get("March C-"), WIDTH)
        rep_ref = run_campaign(
            compare_flow(ref, N_WORDS, WIDTH, initial=0), universe
        )
        rep_twm = run_campaign(
            compare_flow(
                twm.twmarch, N_WORDS, WIDTH, initial=None, seed=7,
                derive_writes=False,
            ),
            universe,
        )
        for name, pa, pb, delta in compare_reports(rep_twm, rep_ref):
            assert delta == 0.0, f"{name}: twm={pa} ref={pb}"

    def test_cfst_intra_gap_direction(self, twm):
        # The non-transparent reference sees statically-expressed CFst
        # that any transparent test misses: ref >= twm, strictly here.
        universe = standard_fault_universe(N_WORDS, WIDTH, max_inter_pairs=4)
        universe = {"CFst-intra": universe["CFst-intra"]}
        ref = nontransparent_word_reference(catalog.get("March C-"), WIDTH)
        rep_ref = run_campaign(
            compare_flow(ref, N_WORDS, WIDTH, initial=0), universe
        )
        rep_twm = run_campaign(
            compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=None, seed=7),
            universe,
        )
        assert (
            rep_ref.classes["CFst-intra"].percent
            > rep_twm.classes["CFst-intra"].percent
        )

    def test_equality_holds_for_march_u_too(self):
        # The theorem is per-test; repeat the check on the paper's other
        # evaluated test.
        mu = twm_transform(catalog.get("March U"), WIDTH)
        universe = standard_fault_universe(
            N_WORDS, WIDTH, max_inter_pairs=8, rng=random.Random(4)
        )
        universe.pop("CFst-intra")
        ref = nontransparent_word_reference(catalog.get("March U"), WIDTH)
        rep_ref = run_campaign(
            compare_flow(ref, N_WORDS, WIDTH, initial=0), universe
        )
        rep_twm = run_campaign(
            compare_flow(
                mu.twmarch, N_WORDS, WIDTH, initial=None, seed=21,
                derive_writes=False,
            ),
            universe,
        )
        for name, pa, pb, delta in compare_reports(rep_twm, rep_ref):
            assert delta == 0.0, f"{name}: twm={pa} ref={pb}"

    def test_coverage_independent_of_initial_content(self, twm):
        # The closed fault universe makes transparent coverage exactly
        # content-independent (the XOR bijection argument).
        universe = standard_fault_universe(
            N_WORDS, WIDTH, max_inter_pairs=8, rng=random.Random(1)
        )
        vectors = []
        for seed in (11, 22):
            rep = run_campaign(
                compare_flow(
                    twm.twmarch, N_WORDS, WIDTH, initial=None, seed=seed
                ),
                universe,
            )
            vectors.append(rep.coverage_vector())
        assert vectors[0] == vectors[1]


class TestSignatureFlows:
    def test_signature_flow_detects(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = signature_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH, initial=None, seed=2
        )
        rep = run_campaign(flow, universe)
        assert rep.classes["SAF"].percent == 100.0

    def test_aliasing_flow_returns_pair(self, twm):
        flow = aliasing_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH, misr_width=16
        )
        fault = next(iter(enumerate_stuck_at(N_WORDS, WIDTH)))
        stream, signature = flow(fault)
        assert stream and signature

    def test_initial_as_sequence(self, twm):
        flow = compare_flow(
            twm.twmarch, N_WORDS, WIDTH, initial=[1, 2, 3, 4]
        )
        fault = next(iter(enumerate_stuck_at(N_WORDS, WIDTH)))
        assert flow(fault) in (True, False)


class TestAliasingCampaigns:
    """Pair-verdict campaigns: aliasing counts and strict verdicts."""

    def test_campaign_counts_aliasing(self, twm):
        # A 1-bit MISR aliases heavily, so every count is exercised.
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = aliasing_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH,
            misr_width=1, initial=None, seed=5,
        )
        assert isinstance(flow, AliasingFlow)
        rep = run_campaign(flow, universe, flow_name="aliasing")
        pairs = [flow(fault) for fault in universe["SAF"]]
        cov = rep.classes["SAF"]
        assert cov.detected == sum(sig for _stream, sig in pairs)
        assert cov.stream_detected == sum(stream for stream, _sig in pairs)
        assert cov.aliased == sum(
            stream and not sig for stream, sig in pairs
        )
        assert cov.aliased > 0  # the 1-bit register must alias here
        assert rep.aliased == cov.aliased
        assert rep.aliased_percent == cov.aliased_percent
        assert rep.aliasing_vector() == {"SAF": cov.aliased_percent}
        assert rep.has_pair_verdicts

    def test_render_includes_aliasing(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = aliasing_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH,
            misr_width=1, initial=None, seed=5,
        )
        text = run_campaign(flow, universe).render()
        assert "aliased" in text and "stream" in text

    def test_single_verdict_reports_carry_no_pair_stats(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        rep = run_campaign(
            compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=0), universe
        )
        assert not rep.has_pair_verdicts
        assert rep.classes["SAF"].aliased is None
        assert rep.classes["SAF"].stream_detected is None
        assert rep.aliasing_vector() == {}
        assert "aliased" not in rep.render()

    def test_misr_seed_forwarded(self, twm):
        # Regression: aliasing_flow silently ignored MISR seeding, so
        # aliasing sessions could not match seeded signature sessions.
        flow = aliasing_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH,
            misr_width=4, misr_seed=0x5A,
        )
        assert flow.misr_seed == 0x5A
        assert flow.controller.misr_seed == 0x5A
        assert flow.work_unit().misr_seed == 0x5A

    def test_tuple_returning_bare_callable_raises(self, twm):
        # Regression: a (False, False) tuple is truthy, so a bare
        # pair-returning callable used to report 100% coverage even
        # when every fault was missed.
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        with pytest.raises(TypeError, match="bool"):
            run_campaign(lambda fault: (False, False), universe)

    def test_non_bool_verdict_raises(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        for verdict in (1, None, "yes"):
            with pytest.raises(TypeError, match="bool"):
                run_campaign(lambda fault: verdict, universe)

    def test_structured_aliasing_flow_counts_correctly_when_missed(self, twm):
        # The structured path must NOT inherit the truthiness bug: a
        # fault missed by both oracles counts as undetected.
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = aliasing_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH,
            misr_width=1, initial=None, seed=5,
        )
        rep = run_campaign(flow, universe)
        assert rep.detected < rep.total  # the 1-bit MISR misses some
        assert rep.percent < 100.0


class TestInitialWordsValidation:
    """Regression: a mis-sized initial sequence must raise, not build
    a mis-sized memory image."""

    def test_too_short_raises(self, twm):
        with pytest.raises(ValueError, match="initial content"):
            compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=[1, 2])

    def test_too_long_raises(self, twm):
        with pytest.raises(ValueError, match="initial content"):
            signature_flow(
                twm.twmarch, twm.prediction, N_WORDS, WIDTH,
                initial=[0] * (N_WORDS + 1),
            )

    def test_aliasing_flow_validates_too(self, twm):
        with pytest.raises(ValueError, match="initial content"):
            aliasing_flow(
                twm.twmarch, twm.prediction, N_WORDS, WIDTH, initial=[7]
            )

    def test_exact_length_accepted(self, twm):
        flow = compare_flow(
            twm.twmarch, N_WORDS, WIDTH, initial=list(range(N_WORDS))
        )
        assert flow.words == list(range(N_WORDS))

    def test_int_and_none_still_fill(self, twm):
        assert compare_flow(
            twm.twmarch, N_WORDS, WIDTH, initial=3
        ).words == [3] * N_WORDS
        assert len(
            compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=None).words
        ) == N_WORDS
