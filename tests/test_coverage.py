"""Tests for fault-coverage campaign machinery."""

import random

import pytest

from repro.analysis.coverage import (
    aliasing_flow,
    compare_flow,
    compare_reports,
    run_campaign,
    signature_flow,
)
from repro.core.twm import nontransparent_word_reference, twm_transform
from repro.library import catalog
from repro.memory.injection import (
    enumerate_stuck_at,
    enumerate_transition,
    enumerate_inter_word_cf,
    standard_fault_universe,
)


N_WORDS, WIDTH = 4, 4


@pytest.fixture(scope="module")
def twm():
    return twm_transform(catalog.get("March C-"), WIDTH)


class TestBitOrientedCoverage:
    """Classic results on a bit-oriented (width 1) memory."""

    def _campaign(self, test, universe):
        flow = compare_flow(test, 8, 1, initial=0)
        return run_campaign(flow, universe)

    def test_march_cm_100pct_saf(self):
        rep = self._campaign(
            catalog.get("March C-"), {"SAF": list(enumerate_stuck_at(8, 1))}
        )
        assert rep.classes["SAF"].percent == 100.0

    def test_march_cm_100pct_tf(self):
        rep = self._campaign(
            catalog.get("March C-"), {"TF": list(enumerate_transition(8, 1))}
        )
        assert rep.classes["TF"].percent == 100.0

    def test_march_cm_100pct_inter_cf(self):
        universe = {
            "CF": list(enumerate_inter_word_cf(6, 1))
        }
        rep = self._campaign(catalog.get("March C-"), universe)
        assert rep.classes["CF"].percent == 100.0

    def test_mats_plus_misses_cf(self):
        universe = {"CF": list(enumerate_inter_word_cf(6, 1))}
        rep = self._campaign(catalog.get("MATS+"), universe)
        assert rep.classes["CF"].percent < 100.0

    def test_mats_plus_catches_saf(self):
        rep = self._campaign(
            catalog.get("MATS+"), {"SAF": list(enumerate_stuck_at(8, 1))}
        )
        assert rep.classes["SAF"].percent == 100.0


class TestCampaignReporting:
    def test_report_counts(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=None, seed=1)
        rep = run_campaign(flow, universe, flow_name="twm")
        assert rep.total == 2 * N_WORDS * WIDTH
        assert rep.detected == rep.total
        assert rep.percent == 100.0
        assert "twm" in rep.render()

    def test_undetected_kept(self):
        universe = {"CF": list(enumerate_inter_word_cf(6, 1))}
        flow = compare_flow(catalog.get("MATS+"), 6, 1, initial=0)
        rep = run_campaign(flow, universe, keep_undetected=3)
        assert 0 < len(rep.undetected["CF"]) <= 3

    def test_compare_reports_alignment(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=0)
        a = run_campaign(flow, universe, flow_name="a")
        b = run_campaign(flow, universe, flow_name="b")
        rows = compare_reports(a, b)
        assert rows == [("SAF", 100.0, 100.0, 0.0)]

    def test_coverage_vector(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=0)
        rep = run_campaign(flow, universe)
        assert rep.coverage_vector() == {"SAF": 100.0}


class TestSection5Equality:
    """The paper's coverage theorem, on a reduced universe (the full
    sweep is benchmark E7)."""

    def test_equality_on_main_classes(self, twm):
        universe = standard_fault_universe(
            N_WORDS, WIDTH, max_inter_pairs=12, rng=random.Random(0)
        )
        # Drop the class where transparent testing fundamentally differs
        # (static CFst expression; see EXPERIMENTS.md).
        universe.pop("CFst-intra")
        ref = nontransparent_word_reference(catalog.get("March C-"), WIDTH)
        rep_ref = run_campaign(
            compare_flow(ref, N_WORDS, WIDTH, initial=0), universe
        )
        rep_twm = run_campaign(
            compare_flow(
                twm.twmarch, N_WORDS, WIDTH, initial=None, seed=7,
                derive_writes=False,
            ),
            universe,
        )
        for name, pa, pb, delta in compare_reports(rep_twm, rep_ref):
            assert delta == 0.0, f"{name}: twm={pa} ref={pb}"

    def test_cfst_intra_gap_direction(self, twm):
        # The non-transparent reference sees statically-expressed CFst
        # that any transparent test misses: ref >= twm, strictly here.
        universe = standard_fault_universe(N_WORDS, WIDTH, max_inter_pairs=4)
        universe = {"CFst-intra": universe["CFst-intra"]}
        ref = nontransparent_word_reference(catalog.get("March C-"), WIDTH)
        rep_ref = run_campaign(
            compare_flow(ref, N_WORDS, WIDTH, initial=0), universe
        )
        rep_twm = run_campaign(
            compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=None, seed=7),
            universe,
        )
        assert (
            rep_ref.classes["CFst-intra"].percent
            > rep_twm.classes["CFst-intra"].percent
        )

    def test_equality_holds_for_march_u_too(self):
        # The theorem is per-test; repeat the check on the paper's other
        # evaluated test.
        mu = twm_transform(catalog.get("March U"), WIDTH)
        universe = standard_fault_universe(
            N_WORDS, WIDTH, max_inter_pairs=8, rng=random.Random(4)
        )
        universe.pop("CFst-intra")
        ref = nontransparent_word_reference(catalog.get("March U"), WIDTH)
        rep_ref = run_campaign(
            compare_flow(ref, N_WORDS, WIDTH, initial=0), universe
        )
        rep_twm = run_campaign(
            compare_flow(
                mu.twmarch, N_WORDS, WIDTH, initial=None, seed=21,
                derive_writes=False,
            ),
            universe,
        )
        for name, pa, pb, delta in compare_reports(rep_twm, rep_ref):
            assert delta == 0.0, f"{name}: twm={pa} ref={pb}"

    def test_coverage_independent_of_initial_content(self, twm):
        # The closed fault universe makes transparent coverage exactly
        # content-independent (the XOR bijection argument).
        universe = standard_fault_universe(
            N_WORDS, WIDTH, max_inter_pairs=8, rng=random.Random(1)
        )
        vectors = []
        for seed in (11, 22):
            rep = run_campaign(
                compare_flow(
                    twm.twmarch, N_WORDS, WIDTH, initial=None, seed=seed
                ),
                universe,
            )
            vectors.append(rep.coverage_vector())
        assert vectors[0] == vectors[1]


class TestSignatureFlows:
    def test_signature_flow_detects(self, twm):
        universe = {"SAF": list(enumerate_stuck_at(N_WORDS, WIDTH))}
        flow = signature_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH, initial=None, seed=2
        )
        rep = run_campaign(flow, universe)
        assert rep.classes["SAF"].percent == 100.0

    def test_aliasing_flow_returns_pair(self, twm):
        flow = aliasing_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH, misr_width=16
        )
        fault = next(iter(enumerate_stuck_at(N_WORDS, WIDTH)))
        stream, signature = flow(fault)
        assert stream and signature

    def test_initial_as_sequence(self, twm):
        flow = compare_flow(
            twm.twmarch, N_WORDS, WIDTH, initial=[1, 2, 3, 4]
        )
        fault = next(iter(enumerate_stuck_at(N_WORDS, WIDTH)))
        assert flow(fault) in (True, False)
