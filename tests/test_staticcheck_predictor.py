"""Tests for the static coverage predictor, the catalog claim audit,
and the synthesis prescreen fast path.

The load-bearing gates live here: every catalog ``detects`` claim must
be implied by the predictor AND confirmed at 100 % by a real engine
campaign (``TestCatalogAudit``), and the prescreen's closed-form
claims must agree with the predictor over an enumerated candidate
swarm (``TestPrescreenAgreement``)."""

import itertools
import random

import pytest

from repro.analysis import audit_catalog, audit_entry
from repro.core.notation import parse_march
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.staticcheck import (
    CLAIM_CLASSES,
    UNIVERSE_CLASSES,
    predict_coverage,
    prescreen,
)


class TestPredictor:
    def test_march_cminus_bit_oriented_claims(self):
        prediction = predict_coverage(catalog.get("March C-"), width=1)
        assert {"SAF", "TF", "CFst", "CFid", "CFin", "RDF", "AF"} <= (
            prediction.claim_kinds
        )
        assert "DRDF" not in prediction.claim_kinds

    def test_intra_classes_vacuous_at_width_one(self):
        prediction = predict_coverage(catalog.get("March C-"), width=1)
        for name in ("CFst-intra", "CFid-intra", "CFin-intra"):
            assert prediction.classes[name].vacuous

    def test_solid_uniform_tests_lose_intra_coupling_at_width(self):
        # The paper's motivation for checker backgrounds: same-word
        # bit pairs always hold equal content under uniform data, so
        # state/idempotent coupling between them escapes.
        prediction = predict_coverage(catalog.get("March C-"), width=8)
        assert not prediction.classes["CFst-intra"].guaranteed
        assert "escapes" in prediction.classes["CFst-intra"].reason
        assert not prediction.classes["CFid-intra"].guaranteed
        # Inversion coupling is content-independent and survives.
        assert prediction.classes["CFin-intra"].guaranteed

    def test_checker_backgrounds_cover_one_orientation_only(self):
        # The D_k backgrounds distinguish every bit pair in ONE
        # orientation (bit 0 is 1 in every checker pattern), so even
        # the TWM transform cannot guarantee state/idempotent intra
        # coupling in both aggressor/victim orders — a real escape the
        # batch engine confirms at ~75% / ~67% coverage.
        twm = twm_transform(catalog.get("March C-"), 8).twmarch
        prediction = predict_coverage(twm, width=8)
        assert not prediction.classes["CFst-intra"].guaranteed
        assert not prediction.classes["CFid-intra"].guaranteed
        assert prediction.classes["CFin-intra"].guaranteed

    def test_complement_backgrounds_restore_intra_state_coverage(self):
        # Adding the complement phase ~D1 realizes both orientations
        # of every bit pair at width 2; the predictor proves CFst-intra
        # and the engine measures 100% (cross-checked when authored).
        both = parse_march(
            "⇕(rc,w~c); ⇑(r~c,wc); ⇑(rc,wc^D1); ⇓(rc^D1,wc^~D1); "
            "⇓(rc^~D1,wc); ⇕(rc)",
            name="both-orientations",
        )
        prediction = predict_coverage(both, width=2)
        assert prediction.classes["CFst-intra"].guaranteed
        assert prediction.classes["CFin-intra"].guaranteed

    def test_ill_formed_test_claims_nothing(self):
        prediction = predict_coverage(parse_march("⇕(r0,w0)", "bad"), width=1)
        assert not prediction.claims
        assert "ill-formed" in prediction.classes["SAF"].reason

    def test_every_universe_class_judged(self):
        prediction = predict_coverage(catalog.get("MATS"), width=4)
        assert set(prediction.classes) == set(UNIVERSE_CLASSES)

    def test_claim_kinds_cover_all_metadata_kinds(self):
        judged = {name for kinds in CLAIM_CLASSES.values() for name in kinds}
        assert judged == set(UNIVERSE_CLASSES)


class TestCatalogAudit:
    def test_all_catalog_claims_predicted_and_engine_confirmed(self):
        # The PR's acceptance gate: predictor implies every detects
        # claim, and the batch engine confirms 100 % on every class
        # the predictor guarantees (full universe incl. RDF/DRDF/AF).
        results = audit_catalog()
        assert len(results) == len(catalog.names())
        failures = [r.render() for r in results if not r.ok]
        assert not failures, "\n".join(failures)

    def test_audit_catches_overclaiming_metadata(self):
        from repro.library.catalog import CatalogEntry

        entry = CatalogEntry(
            parse_march("⇕(w0); ⇕(r0)", "weak"), "ref", frozenset({"CFst"})
        )
        result = audit_entry(entry)
        assert not result.ok
        assert any("CFst" in p for p in result.problems)
        assert "FAIL" in result.render()

    def test_audit_result_reports_engine_percentages(self):
        result = audit_entry(catalog.entry("MATS"))
        assert result.ok
        assert result.engine_percent["SAF"] == 100.0
        assert set(result.claimed) == {"SAF"}
        assert "SAF" in result.predicted


class TestPrescreen:
    def test_accepts_catalog_tests_with_claims(self):
        for name in catalog.names():
            result = prescreen(catalog.get(name))
            assert result.ok, (name, result.reasons)
            assert "SAF" in result.claims
            assert "RDF" in result.claims

    def test_rejects_structural_violations_with_reasons(self):
        cases = {
            "⇕(r0,w0)": "read before any write",
            "⇕(w0); ⇕(r1)": "read expectation != tracked content",
            "⇕(w~c); ⇕(rc)": "underivable write",
            "⇕(rc,w~c)": "nonzero net content change",
            "⇕(w0); ⇕(rc)": "mixed form",
        }
        for notation, fragment in cases.items():
            result = prescreen(parse_march(notation, "bad"))
            assert not result
            assert any(fragment in r for r in result.reasons), (
                notation,
                result.reasons,
            )

    def test_rejects_empty_test(self):
        # The public constructors refuse empty tests, so the prescreen
        # guard is defensive; drive it with a structural stand-in.
        from types import SimpleNamespace

        result = prescreen(SimpleNamespace(elements=()))
        assert not result
        assert "empty test" in result.reasons[0]

    def test_tf_requires_both_transitions_observed(self):
        # Rising transition read back, but never a falling one.
        up_only = prescreen(parse_march("⇕(w0); ⇕(r0,w1); ⇕(r1)", "up"))
        assert "TF" not in up_only.claims
        both = prescreen(parse_march("⇕(w0); ⇕(r0,w1); ⇕(r1,w0); ⇕(r0)", "b"))
        assert "TF" in both.claims

    def test_drdf_needs_back_to_back_reads(self):
        assert "DRDF" in prescreen(catalog.get("March SS")).claims
        assert "DRDF" not in prescreen(catalog.get("MATS+")).claims

    def test_non_uniform_masks_claim_nothing(self):
        twm = twm_transform(catalog.get("March C-"), 8).twmarch
        result = prescreen(twm)
        assert result.ok
        assert not result.uniform
        assert not result.claims

    def test_score_orders_by_claims_then_cost(self):
        strong = prescreen(catalog.get("March C-"))
        weak = prescreen(catalog.get("MATS"))
        assert strong.score > weak.score


def _enumerate_candidates(alphabet, rng, keep=0.004, max_ops=3):
    seqs = []
    for n in range(1, max_ops + 1):
        seqs.extend(itertools.product(alphabet, repeat=n))
    elements = [
        f"{order}({','.join(seq)})"
        for order in ("up", "down", "any")
        for seq in seqs
    ]
    for count in (1, 2):
        for combo in itertools.product(elements, repeat=count):
            if rng.random() < keep:
                yield parse_march("; ".join(combo), name="cand")


class TestPrescreenAgreement:
    """Lock the prescreen to its two ground truths over a sampled
    bounded-exhaustive candidate swarm: the validators (accept/reject)
    and the abstract-replay predictor (single-cell claims)."""

    @pytest.mark.parametrize(
        "alphabet,keep",
        [
            (("r0", "r1", "w0", "w1"), 0.004),
            # Valid transparent candidates are rarer (per-element
            # read-before-write plus zero net delta), so sample more.
            (("rc", "r~c", "wc", "w~c"), 0.03),
        ],
        ids=["solid", "transparent"],
    )
    def test_matches_validators_and_predictor(self, alphabet, keep):
        from repro.core.validate import validate_solid, validate_transparent

        rng = random.Random(42)
        checked = 0
        for test in _enumerate_candidates(alphabet, rng, keep=keep):
            result = prescreen(test)
            if test.is_transparent_form:
                valid = validate_transparent(test).ok
            else:
                valid = validate_solid(test).ok
            assert result.ok == valid, test.describe()
            if not result.ok:
                continue
            prediction = predict_coverage(test, width=1)
            expected = {
                kind
                for kind in ("SAF", "TF", "RDF", "DRDF")
                if kind in prediction.claim_kinds
            }
            assert set(result.claims) == expected, test.describe()
            checked += 1
        assert checked >= 20
