"""Tests for the classic (Nicolaidis) transparent transformation."""

import pytest

from repro.core.march import MarchTest
from repro.core.notation import parse_march
from repro.core.ops import Mask
from repro.core.signature import prediction_test
from repro.core.transparent import MarchConsistencyError, to_transparent
from repro.core.validate import (
    check_transparency_by_execution,
    validate_transparent,
)
from repro.library import catalog


class TestMarchCMinus:
    """The paper's Section 3 worked example: TMarch C-."""

    def test_structure_matches_paper(self):
        result = to_transparent(catalog.get("March C-"))
        assert str(result.transparent) == (
            "{⇑(rc,w~c); ⇑(r~c,wc); ⇓(rc,w~c); ⇓(r~c,wc); ⇕(rc)}"
        )

    def test_init_dropped(self):
        result = to_transparent(catalog.get("March C-"))
        assert result.dropped_init
        assert result.transparent.op_count == 9

    def test_restored_without_extra_element(self):
        result = to_transparent(catalog.get("March C-"))
        assert not result.added_restore
        assert result.final_mask.is_zero

    def test_signature_prediction_matches_paper(self):
        # Paper: {⇑(rc); ⇑(r~c); ⇓(rc); ⇓(r~c); ⇕(rc)}.
        result = to_transparent(catalog.get("March C-"))
        sp = prediction_test(result.transparent)
        assert str(sp) == "{⇑(rc); ⇑(r~c); ⇓(rc); ⇓(r~c); ⇕(rc)}"
        assert sp.op_count == 5


class TestTransformationRules:
    def test_restore_element_added_when_content_inverted(self):
        # Ends with content 1 (inverse of the all-0 init).
        t = parse_march("⇕(w0); ⇑(r0,w1)", name="ends-inverted")
        result = to_transparent(t)
        assert result.added_restore
        last = result.transparent.elements[-1]
        assert str(last) == "⇕(r~c,wc)"
        assert result.final_mask.is_zero

    def test_no_restore_flag_keeps_final_mask(self):
        t = parse_march("⇕(w0); ⇑(r0,w1)", name="ends-inverted")
        result = to_transparent(t, restore=False)
        assert not result.added_restore
        assert result.final_mask == Mask.ONES

    def test_read_prepended_to_write_first_element(self):
        # March SR has a pure-write element ⇑(w1) mid-test.
        result = to_transparent(catalog.get("March SR"))
        assert result.added_reads == 1
        # N=14, init dropped (-1), one read prepended (+1), and March SR
        # ends with content 1 so the restore element adds two more ops.
        assert result.added_restore
        assert result.transparent.op_count == 16

    def test_init_with_one_value(self):
        t = parse_march("⇕(w1); ⇑(r1,w0); ⇕(r0)", name="init1")
        result = to_transparent(t)
        assert result.init_mask == Mask.ONES
        # r1 with init 1 -> rc; w0 -> w~c.
        assert str(result.transparent.elements[0]) == "⇑(rc,w~c)"
        assert result.added_restore

    @pytest.mark.parametrize("name", catalog.names())
    def test_catalog_transforms_are_valid(self, name):
        result = to_transparent(catalog.get(name))
        report = validate_transparent(result.transparent)
        assert report.ok, f"{name}: {report}"

    @pytest.mark.parametrize("name", ["March C-", "March U", "March B", "March SR"])
    def test_catalog_transforms_are_transparent_in_execution(self, name):
        result = to_transparent(catalog.get(name))
        assert check_transparency_by_execution(result.transparent, width=4)

    def test_transform_preserves_read_count_plus_insertions(self):
        for name in catalog.names():
            original = catalog.get(name)
            result = to_transparent(original, restore=False)
            assert (
                result.transparent.n_reads
                == original.n_reads + result.added_reads
            )


class TestTransformErrors:
    def test_rejects_transparent_input(self):
        t = to_transparent(catalog.get("March C-")).transparent
        with pytest.raises(ValueError, match="content-relative"):
            to_transparent(t)

    def test_rejects_inconsistent_reads(self):
        t = parse_march("⇕(w0); ⇑(r1,w1)", name="bad")
        with pytest.raises(MarchConsistencyError):
            to_transparent(t)

    def test_rejects_init_only(self):
        t = parse_march("⇕(w0)", name="init-only")
        with pytest.raises(MarchConsistencyError):
            to_transparent(t)

    def test_rejects_write_start_without_init(self):
        t = parse_march("⇕(w0,r0,w1); ⇕(r1)", name="mixed-first")
        with pytest.raises(MarchConsistencyError):
            to_transparent(t)

    def test_accepts_read_first_test(self):
        # A test without init whose first op is a read (content = c).
        t = parse_march("⇕(r0,w1); ⇕(r1,w0)", name="no-init")
        result = to_transparent(t)
        assert not result.dropped_init
        assert str(result.transparent.elements[0]) == "⇕(rc,w~c)"


class TestPredictionExtraction:
    def test_prediction_is_read_only(self):
        result = to_transparent(catalog.get("March B"))
        sp = prediction_test(result.transparent)
        assert all(op.is_read for op in sp.all_ops)

    def test_prediction_drops_empty_elements(self):
        # March SR's prepended-read pure-write element reduces to its read.
        result = to_transparent(catalog.get("March SR"))
        sp = prediction_test(result.transparent)
        assert all(len(e) > 0 for e in sp.elements)

    def test_prediction_rejects_solid_tests(self):
        with pytest.raises(ValueError):
            prediction_test(catalog.get("March C-"))

    def test_prediction_read_count(self):
        result = to_transparent(catalog.get("March C-"))
        sp = prediction_test(result.transparent)
        assert sp.op_count == result.transparent.n_reads

    def test_prediction_rejects_all_write_test(self):
        from repro.core.element import AddressOrder, MarchElement
        from repro.core.ops import DataExpr, Op

        t = MarchTest(
            "w-only",
            (
                MarchElement(
                    AddressOrder.ANY, (Op.write(DataExpr.content()),)
                ),
            ),
        )
        with pytest.raises(ValueError, match="no read"):
            prediction_test(t)
