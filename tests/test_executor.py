"""Tests for the March-test executor."""

import random

import pytest

from repro.bist.executor import (
    ExecutionError,
    read_stream,
    run_march,
    transparent_writes_derivable,
)
from repro.core.notation import parse_march
from repro.core.transparent import to_transparent
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.faults import Cell, StuckAtFault, TransitionFault
from repro.memory.injection import FaultyMemory
from repro.memory.model import Memory


class TestSolidExecution:
    def test_fault_free_march_has_no_mismatches(self):
        m = Memory(8, 1)
        result = run_march(catalog.get("March C-"), m)
        assert not result.detected
        assert result.ops_executed == 10 * 8
        assert result.n_reads == 5 * 8

    def test_word_background_test(self):
        t = parse_march("⇕(wD1); ⇑(rD1,w~D1); ⇕(r~D1)", name="bg")
        m = Memory(4, 8)
        result = run_march(t, m)
        assert not result.detected
        assert m.snapshot() == [0b10101010] * 4

    def test_stuck_at_detected(self):
        m = FaultyMemory(8, 1, [StuckAtFault(Cell(3, 0), 0)])
        result = run_march(catalog.get("March C-"), m)
        assert result.detected

    def test_transition_fault_detected(self):
        m = FaultyMemory(8, 1, [TransitionFault(Cell(2, 0), rising=True)])
        result = run_march(catalog.get("March C-"), m)
        assert result.detected

    def test_stop_on_mismatch(self):
        m = FaultyMemory(8, 1, [StuckAtFault(Cell(0, 0), 1)])
        full = run_march(catalog.get("March C-"), m.__class__(8, 1, m.faults))
        stopped = run_march(
            catalog.get("March C-"),
            FaultyMemory(8, 1, m.faults),
            stop_on_mismatch=True,
        )
        assert stopped.stopped_early
        assert stopped.ops_executed <= full.ops_executed
        assert stopped.detected

    def test_collect_records(self):
        m = Memory(4, 1)
        result = run_march(catalog.get("MATS+"), m, collect=True)
        assert len(result.records) == result.n_reads == 2 * 4
        assert all(not r.mismatch for r in result.records)

    def test_records_not_collected_by_default(self):
        m = Memory(4, 1)
        result = run_march(catalog.get("MATS+"), m)
        assert result.records == []


class TestTransparentExecution:
    def test_transparent_restores_content(self):
        t = to_transparent(catalog.get("March C-")).transparent
        m = Memory(16, 8)
        m.randomize(random.Random(1))
        before = m.snapshot()
        result = run_march(t, m)
        assert not result.detected
        assert m.snapshot() == before

    def test_twmarch_restores_content(self):
        result = twm_transform(catalog.get("March U"), 8)
        m = Memory(16, 8)
        m.randomize(random.Random(2))
        before = m.snapshot()
        run = run_march(result.twmarch, m)
        assert not run.detected
        assert m.snapshot() == before

    def test_snapshot_override(self):
        t = to_transparent(catalog.get("March C-")).transparent
        m = Memory(4, 8, fill=0x12)
        # A wrong reference snapshot makes every read a mismatch.
        run = run_march(t, m, snapshot=[0x34] * 4)
        assert run.detected

    def test_snapshot_length_check(self):
        t = to_transparent(catalog.get("March C-")).transparent
        with pytest.raises(ExecutionError):
            run_march(t, Memory(4, 8), snapshot=[0] * 3)

    def test_operational_write_propagates_fault_data(self):
        # A stuck cell corrupts a read; the derived write-back then
        # stores the corrupted complement.
        t = to_transparent(catalog.get("March C-")).transparent
        m = FaultyMemory(2, 4, [StuckAtFault(Cell(0, 0), 1)])
        m.load([0b0000, 0b0000])
        run = run_march(t, m)
        assert run.detected

    def test_oracle_writes_mode(self):
        t = to_transparent(catalog.get("March C-")).transparent
        m = Memory(4, 8)
        m.randomize(random.Random(3))
        before = m.snapshot()
        run = run_march(t, m, derive_writes=False)
        assert not run.detected
        assert m.snapshot() == before

    def test_underivable_write_raises(self):
        t = parse_march("⇕(wc); ⇕(rc)", name="bad-transparent")
        with pytest.raises(ExecutionError, match="no preceding read"):
            run_march(t, Memory(2, 4))

    def test_underivable_ok_in_oracle_mode(self):
        t = parse_march("⇕(wc); ⇕(rc)", name="bad-transparent")
        run = run_march(t, Memory(2, 4), derive_writes=False)
        assert not run.detected


class TestDerivability:
    def test_generated_tests_are_derivable(self):
        for name in catalog.names():
            result = twm_transform(catalog.get(name), 8)
            assert transparent_writes_derivable(result.twmarch), name

    def test_underivable_detection(self):
        t = parse_march("⇕(wc, rc)", name="w-first")
        assert not transparent_writes_derivable(t)

    def test_solid_writes_always_derivable(self):
        assert transparent_writes_derivable(catalog.get("March C-"))


class TestReadStream:
    def test_stream_length(self):
        m = Memory(4, 1)
        stream = read_stream(catalog.get("March C-"), m)
        assert len(stream) == 5 * 4

    def test_stream_values_fault_free(self):
        m = Memory(2, 1)
        stream = read_stream(catalog.get("MATS+"), m)
        # MATS+ reads r0 then r1 per address.
        assert stream == [0, 0, 1, 1]

    def test_stream_reflects_fault(self):
        clean = read_stream(catalog.get("March C-"), Memory(4, 1))
        faulty = read_stream(
            catalog.get("March C-"),
            FaultyMemory(4, 1, [StuckAtFault(Cell(1, 0), 1)]),
        )
        assert clean != faulty


class TestAddressOrdering:
    def test_down_element_visits_descending(self):
        t = parse_march("⇓(r0)", name="down-read")
        m = Memory(3, 4)
        addrs = []
        run_march(t, m, read_sink=lambda rec: addrs.append(rec.addr))
        assert addrs == [2, 1, 0]

    def test_up_element_visits_ascending(self):
        t = parse_march("⇑(r0)", name="up-read")
        m = Memory(3, 4)
        addrs = []
        run_march(t, m, read_sink=lambda rec: addrs.append(rec.addr))
        assert addrs == [0, 1, 2]

    def test_element_completes_address_before_moving(self):
        t = parse_march("⇑(r0,w1,r1)", name="visit")
        m = Memory(2, 1)
        events = []
        m2 = Memory(2, 1)
        run_march(t, m2, read_sink=lambda rec: events.append((rec.addr, rec.raw)))
        assert events == [(0, 0), (0, 1), (1, 0), (1, 1)]
