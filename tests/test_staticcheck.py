"""Tests for the static analysis subsystem: diagnostics core, march-
and IR-level rules, and the lint driver."""

import json

import pytest

from repro.core.notation import parse_march
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.staticcheck import (
    Diagnostic,
    Location,
    Rule,
    RuleRegistry,
    Severity,
    default_registry,
    filter_severity,
    lint_catalog,
    lint_test,
    max_severity,
    render_json,
    render_text,
    severity_counts,
)


def _diags(notation, **kwargs):
    return lint_test(parse_march(notation, name="t"), **kwargs)


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


class TestSeverity:
    def test_ordering_gates(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_parse_round_trips(self):
        for severity in Severity:
            assert Severity.parse(str(severity)) is severity
        assert Severity.parse(" Error ") is Severity.ERROR

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestLocation:
    def test_render_test_coordinates(self):
        assert Location("March X", element=2, op=1).render() == "March X e2.op1"
        assert Location("March X").render() == "March X"

    def test_render_file_coordinates(self):
        assert Location("a.py", line=7, col=3).render() == "a.py:7:3"

    def test_dict_round_trip_omits_nones(self):
        loc = Location("t", element=1)
        data = loc.to_dict()
        assert data == {"subject": "t", "element": 1}
        assert Location.from_dict(data) == loc


class TestDiagnostic:
    def test_render(self):
        d = Diagnostic("M003", Severity.ERROR, "boom", Location("t", 0, 1))
        assert d.render() == "t e0.op1: error[M003] boom"

    def test_json_round_trip(self):
        d = Diagnostic("I001", Severity.WARNING, "msg", Location("t"))
        assert Diagnostic.from_dict(json.loads(json.dumps(d.to_dict()))) == d


class TestRuleRegistry:
    def test_duplicate_id_collides(self):
        registry = RuleRegistry()
        registry.register(Rule("R1", "one", Severity.INFO, "s"))
        with pytest.raises(ValueError, match="duplicate rule id 'R1'"):
            registry.register(Rule("R1", "other", Severity.ERROR, "s"))

    def test_unknown_rule_names_known_ones(self):
        registry = RuleRegistry()
        registry.register(Rule("R1", "one", Severity.INFO, "s"))
        with pytest.raises(ValueError, match="known rules: R1"):
            registry.get("R9")

    def test_select_by_id_and_layer(self):
        registry = RuleRegistry()
        registry.register(Rule("B2", "b", Severity.INFO, "s", layer="ir"))
        registry.register(Rule("A1", "a", Severity.INFO, "s", layer="march"))
        assert [r.id for r in registry.select()] == ["A1", "B2"]
        assert [r.id for r in registry.select(layers=["ir"])] == ["B2"]
        assert [r.id for r in registry.select(["B2", "A1"])] == ["A1", "B2"]

    def test_default_registry_layers(self):
        registry = default_registry()
        layers = {rule.layer for rule in registry}
        assert layers == {"march", "ir", "exec"}
        assert "M001" in registry
        assert "X001" in registry


class TestHelpers:
    def _mixed(self):
        return [
            Diagnostic("A", Severity.INFO, "i"),
            Diagnostic("B", Severity.ERROR, "e"),
            Diagnostic("C", Severity.WARNING, "w"),
        ]

    def test_filter_and_max(self):
        diags = self._mixed()
        assert _rules(filter_severity(diags, Severity.WARNING)) == {"B", "C"}
        assert max_severity(diags) is Severity.ERROR
        assert max_severity([]) is None

    def test_counts_and_renderers(self):
        diags = self._mixed()
        assert severity_counts(diags) == {"error": 1, "warning": 1, "info": 1}
        text = render_text(diags)
        assert text.endswith("lint: 1 error, 1 warning, 1 info")
        payload = json.loads(render_json(diags))
        assert payload["counts"]["error"] == 1
        assert len(payload["diagnostics"]) == 3


class TestWellFormednessRules:
    def test_mixed_form(self):
        diags = _diags("⇕(w0); ⇕(rc)")
        assert "M001" in _rules(diags)

    def test_read_before_write(self):
        assert "M002" in _rules(_diags("⇕(r0,w0)"))

    def test_read_mismatch_location(self):
        diags = [d for d in _diags("⇕(w0); ⇑(r1,w1)") if d.rule == "M003"]
        assert len(diags) == 1
        assert diags[0].location.element == 1
        assert diags[0].location.op == 0

    def test_underivable_write(self):
        assert "M004" in _rules(_diags("⇕(w~c); ⇕(rc)"))

    def test_phase_mismatch(self):
        assert "M005" in _rules(_diags("⇕(rc,w~c); ⇕(rc,wc)"))

    def test_transparency_residue(self):
        assert "M006" in _rules(_diags("⇕(rc,w~c)"))

    def test_agrees_with_validate_over_catalog(self):
        hard = {"M001", "M002", "M003", "M004", "M005", "M006"}
        for name in catalog.names():
            diags = lint_test(catalog.get(name))
            assert not (_rules(diags) & hard)
            assert max_severity(diags) is Severity.INFO


class TestDeadOpRules:
    def test_noop_write(self):
        diags = [d for d in _diags("⇕(w0); ⇑(r0,w0)") if d.rule == "M010"]
        assert len(diags) == 1
        assert "WDF" in diags[0].message

    def test_unread_write_overwritten_and_trailing(self):
        diags = [d for d in _diags("⇕(w0,w1); ⇕(r1,w0)") if d.rule == "M011"]
        messages = [d.message for d in diags]
        assert len(diags) == 2
        assert any("overwritten" in m for m in messages)
        assert any("never read back" in m for m in messages)

    def test_repeated_read(self):
        assert "M012" in _rules(_diags("⇕(w0); ⇕(r0,r0)"))
        assert "M012" not in _rules(_diags("⇕(w0); ⇕(r0,w1,r1)"))

    def test_dead_op_rules_skip_ill_formed_tests(self):
        diags = _diags("⇕(r0,r0)")
        assert "M012" not in _rules(diags)
        assert "M002" in _rules(diags)


class TestAccountingRules:
    def test_complexity_matches_paper_formulas(self):
        diags = [
            d
            for d in lint_test(catalog.get("March C-"), width=32)
            if d.rule == "M020"
        ]
        assert len(diags) == 1
        assert "TCM=35n" in diags[0].message
        assert "TCP=21n" in diags[0].message

    def test_symmetry_hint_on_odd_reads(self):
        twm = twm_transform(catalog.get("MATS"), 8).twmarch
        diags = lint_test(twm, width=8)
        assert ("M030" in _rules(diags)) == (twm.n_reads % 2 == 1)

    def test_coverage_claims_reported(self):
        diags = [d for d in lint_test(catalog.get("March C-")) if d.rule == "M040"]
        assert len(diags) == 1
        assert "CFst" in diags[0].message

    def test_catalog_claim_drift_fires_on_false_metadata(self):
        from repro.library.catalog import CatalogEntry

        entry = CatalogEntry(
            parse_march("⇕(w0); ⇕(r0)", "weak"), "ref", frozenset({"TF"})
        )
        diags = lint_test(entry.test, entry=entry)
        drift = [d for d in diags if d.rule == "M041"]
        assert len(drift) == 1
        assert drift[0].severity is Severity.ERROR
        assert "cannot guarantee" in drift[0].message


class TestIrRules:
    def test_ir_stats_emitted(self):
        diags = [d for d in lint_test(catalog.get("March C-")) if d.rule == "I010"]
        assert len(diags) == 1
        assert "10 steps (5 reads)" in diags[0].message

    def test_degenerate_background_warns_at_narrow_width(self):
        twm = twm_transform(catalog.get("March C-"), 32).twmarch
        wide = lint_test(twm, width=32)
        narrow = lint_test(twm, width=4)
        assert "I003" not in _rules(wide)
        assert "I003" in _rules(narrow)

    def test_unresolvable_mask_when_compilation_fails(self):
        bitty = parse_march("⇕(rc,wc^e3); ⇕(rc^e3,wc)", name="bitty")
        diags = lint_test(bitty, width=2)
        bad = [d for d in diags if d.rule == "I005"]
        assert len(bad) == 2
        assert all("compilation fails" in d.message for d in bad)
        assert "I005" not in _rules(lint_test(bitty, width=8))

    def test_catalog_ir_is_consistent(self):
        for name in catalog.names():
            assert not (_rules(lint_test(catalog.get(name))) & {"I001", "I002"})


class TestLintDriver:
    def test_explicit_rule_selection(self):
        diags = lint_test(catalog.get("March C-"), rules=["M020"])
        assert _rules(diags) == {"M020"}

    def test_unknown_rule_is_usage_error(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_test(catalog.get("March C-"), rules=["M999"])

    def test_exec_rules_excluded_by_default_but_selectable(self):
        flips = parse_march("⇕(rc,w~c)", name="flips")
        assert "X001" not in _rules(lint_test(flips))
        diags = lint_test(flips, rules=["X001"])
        assert _rules(diags) == {"X001"}
        assert "transparency violated" in diags[0].message

    def test_catalog_lint_is_error_free(self):
        diags = lint_catalog()
        assert diags
        worst = max_severity(diags)
        assert worst is not None and worst < Severity.ERROR
