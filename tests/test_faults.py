"""Tests for the fault-model dataclasses."""

import pytest

from repro.memory.faults import (
    Cell,
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)


class TestCell:
    def test_ordering(self):
        assert Cell(0, 1) < Cell(1, 0)
        assert Cell(0, 0) < Cell(0, 1)

    def test_str(self):
        assert str(Cell(3, 5)) == "(3,5)"


class TestStuckAt:
    def test_describe(self):
        f = StuckAtFault(Cell(2, 1), 1)
        assert f.describe() == "SAF1@(2,1)"
        assert f.kind == "SAF"
        assert f.cells == (Cell(2, 1),)

    def test_value_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault(Cell(0, 0), 2)

    def test_range_validation(self):
        StuckAtFault(Cell(3, 7), 0).validate(4, 8)
        with pytest.raises(ValueError):
            StuckAtFault(Cell(4, 0), 0).validate(4, 8)
        with pytest.raises(ValueError):
            StuckAtFault(Cell(0, 8), 0).validate(4, 8)


class TestTransition:
    def test_describe(self):
        up = TransitionFault(Cell(0, 0), rising=True)
        dn = TransitionFault(Cell(0, 0), rising=False)
        assert "0->1" in up.describe()
        assert "1->0" in dn.describe()
        assert up.kind == "TF"


class TestCouplingCommon:
    def test_distinct_cells_required(self):
        with pytest.raises(ValueError):
            InversionCouplingFault(Cell(1, 2), Cell(1, 2))

    def test_intra_word_classification(self):
        intra = InversionCouplingFault(Cell(1, 0), Cell(1, 3))
        inter = InversionCouplingFault(Cell(1, 0), Cell(2, 0))
        assert intra.intra_word
        assert not inter.intra_word
        assert "[intra]" in intra.describe()
        assert "[inter]" in inter.describe()

    def test_cells_tuple(self):
        f = StateCouplingFault(Cell(0, 0), Cell(0, 1))
        assert f.cells == (Cell(0, 0), Cell(0, 1))


class TestStateCoupling:
    def test_describe(self):
        f = StateCouplingFault(Cell(0, 0), Cell(0, 1), 1, 0)
        assert f.describe().startswith("CFst<1;0>")
        assert f.kind == "CFst"

    def test_value_validation(self):
        with pytest.raises(ValueError):
            StateCouplingFault(Cell(0, 0), Cell(0, 1), 2, 0)
        with pytest.raises(ValueError):
            StateCouplingFault(Cell(0, 0), Cell(0, 1), 0, -1)


class TestIdempotentCoupling:
    def test_describe(self):
        f = IdempotentCouplingFault(Cell(0, 0), Cell(1, 0), rising=True, forced_value=1)
        assert f.describe().startswith("CFid<up;1>")
        assert f.kind == "CFid"

    def test_forced_value_validation(self):
        with pytest.raises(ValueError):
            IdempotentCouplingFault(Cell(0, 0), Cell(1, 0), True, 7)


class TestInversionCoupling:
    def test_describe(self):
        f = InversionCouplingFault(Cell(0, 0), Cell(1, 0), rising=False)
        assert f.describe().startswith("CFin<down>")
        assert f.kind == "CFin"

    def test_hashable(self):
        a = InversionCouplingFault(Cell(0, 0), Cell(1, 0), rising=True)
        b = InversionCouplingFault(Cell(0, 0), Cell(1, 0), rising=True)
        assert len({a, b}) == 1
