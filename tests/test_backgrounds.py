"""Tests for data-background plans."""

import pytest

from repro.core.backgrounds import (
    background_plan,
    checker_backgrounds,
    covers_all_pairs,
    format_background,
    is_power_of_two,
    log2_width,
    minimal_plan_size,
    n_backgrounds,
)


class TestLog2Width:
    @pytest.mark.parametrize(
        "width,expected", [(1, 0), (2, 1), (4, 2), (8, 3), (32, 5), (128, 7)]
    )
    def test_powers(self, width, expected):
        assert log2_width(width) == expected

    @pytest.mark.parametrize("width", [0, 3, 5, 6, 7, 12, 100, -4])
    def test_rejects_non_powers(self, width):
        with pytest.raises(ValueError):
            log2_width(width)

    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(64)
        assert not is_power_of_two(0) and not is_power_of_two(6)


class TestPlans:
    def test_paper_plan_width4(self):
        # Section 3's example: D = 0000, 0101, 0011.
        assert background_plan(4) == [0b0000, 0b0101, 0b0011]

    def test_plan_width8(self):
        assert background_plan(8) == [0, 0b01010101, 0b00110011, 0b00001111]

    def test_plan_size(self):
        for width in (1, 2, 4, 8, 16, 32, 64, 128):
            assert len(background_plan(width)) == n_backgrounds(width)
            assert n_backgrounds(width) == log2_width(width) + 1

    def test_width1_plan(self):
        assert background_plan(1) == [0]
        assert checker_backgrounds(1) == []

    def test_checker_backgrounds_distinct(self):
        for width in (4, 8, 16, 32):
            plan = checker_backgrounds(width)
            assert len(set(plan)) == len(plan)


class TestPairCoverage:
    @pytest.mark.parametrize("width", [2, 4, 8, 16, 32, 64])
    def test_checkers_separate_all_pairs(self, width):
        assert covers_all_pairs(checker_backgrounds(width), width)

    def test_solid_backgrounds_do_not(self):
        assert not covers_all_pairs([0b0000, 0b1111], 4)

    def test_single_checker_insufficient_for_width4(self):
        # D1 = 0101 cannot distinguish bits 0 and 2.
        assert not covers_all_pairs([0b0101], 4)

    @pytest.mark.parametrize("width", [2, 4, 8, 16, 32])
    def test_plan_size_is_optimal(self, width):
        # log2(b) checkerboards achieve the information-theoretic bound.
        assert len(checker_backgrounds(width)) == minimal_plan_size(width)

    def test_minimal_plan_size_edges(self):
        assert minimal_plan_size(1) == 0
        assert minimal_plan_size(2) == 1
        with pytest.raises(ValueError):
            minimal_plan_size(0)


class TestFormatting:
    def test_format_background(self):
        assert format_background(0b0101, 4) == "0101"
        assert format_background(0xFF, 8) == "11111111"

    def test_format_truncates(self):
        assert format_background(0x1F, 4) == "1111"
