"""Tests for the March-notation parser and formatter."""

import pytest

from repro.core.element import AddressOrder
from repro.core.notation import NotationError, format_march, parse_march
from repro.core.ops import DataExpr, Mask, checker
from repro.library import catalog


class TestParsing:
    def test_simple_test(self):
        t = parse_march("⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)")
        assert t.op_count == 6
        assert t.elements[0].order is AddressOrder.ANY
        assert t.elements[1].order is AddressOrder.UP
        assert t.elements[2].order is AddressOrder.DOWN

    def test_ascii_arrows(self):
        t = parse_march("any(w0); up(r0,w1); down(r1,w0); ud(r0)")
        assert t.op_count == 6
        assert t.elements[3].order is AddressOrder.ANY

    def test_dn_alias(self):
        t = parse_march("dn(r0,w1)")
        assert t.elements[0].order is AddressOrder.DOWN

    def test_braces_optional(self):
        a = parse_march("{⇕(w0); ⇕(r0)}")
        b = parse_march("⇕(w0); ⇕(r0)")
        assert a.same_structure(b)

    def test_whitespace_insensitive(self):
        a = parse_march("⇕( w0 );⇑( r0 , w1 )")
        b = parse_march("⇕(w0); ⇑(r0,w1)")
        assert a.same_structure(b)

    def test_transparent_symbols(self):
        t = parse_march("⇕(rc, w~c, r~c, wc)")
        ops = t.elements[0].ops
        assert ops[0].data == DataExpr.content()
        assert ops[1].data == DataExpr.content_inv()

    def test_background_terms(self):
        t = parse_march("⇕(wD1, rD1, w~D2)")
        ops = t.elements[0].ops
        assert ops[0].data.mask == Mask.of(checker(1))
        assert not ops[0].data.relative
        assert ops[2].data.mask == Mask.of(checker(2)) ^ Mask.ONES

    def test_parenthesized_expression(self):
        t = parse_march("⇕(r(c^D1), w(c^D1^1))")
        ops = t.elements[0].ops
        assert ops[0].data == DataExpr.content(Mask.of(checker(1)))
        assert ops[1].data == DataExpr.content(Mask.of(checker(1)) ^ Mask.ONES)

    def test_unit_pattern(self):
        t = parse_march("⇕(w(c^e3))")
        assert t.elements[0].ops[0].data.mask.resolve(8) == 0b1000

    def test_double_complement_cancels(self):
        t = parse_march("⇕(r~~c)")
        assert t.elements[0].ops[0].data == DataExpr.content()

    def test_c_xor_c_cancels(self):
        t = parse_march("⇕(w(c^c^1))")
        op = t.elements[0].ops[0]
        assert not op.data.relative
        assert op.data.mask == Mask.ONES

    def test_name_parameter(self):
        assert parse_march("⇕(r0)", name="X").name == "X"


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "nonsense",
            "⇕()",
            "⇕(x0)",
            "⇕(r)",
            "⇕(rQ)",
            "⇕(rD)",
            "⇕(r0) garbage",
            "garbage ⇕(r0)",
            "⇕(r0,)  extra(",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(NotationError):
            parse_march(text)

    def test_empty_term(self):
        with pytest.raises(NotationError):
            parse_march("⇕(r(c^))")


class TestRoundTrip:
    @pytest.mark.parametrize("name", catalog.names())
    def test_catalog_round_trips(self, name):
        original = catalog.get(name)
        again = parse_march(str(original))
        assert again.same_structure(original)

    @pytest.mark.parametrize("name", catalog.names())
    def test_ascii_round_trips(self, name):
        original = catalog.get(name)
        again = parse_march(format_march(original, ascii_only=True))
        assert again.same_structure(original)

    def test_transparent_round_trip(self):
        t = parse_march("⇕(rc,w(c^D1),r(c^D1),wc,rc); ⇕(rc)")
        assert parse_march(str(t)).same_structure(t)

    def test_format_unicode_default(self):
        t = parse_march("up(r0,w1)")
        assert "⇑" in format_march(t)
        assert "⇑" not in format_march(t, ascii_only=True)
