"""Tests for TWM_TA (Algorithm 1) — the paper's core contribution."""

import pytest

from repro.core.backgrounds import log2_width
from repro.core.notation import parse_march
from repro.core.twm import (
    TWMError,
    atmarch,
    nontransparent_word_reference,
    solid_background_test,
    twm_transform,
)
from repro.core.validate import (
    check_transparency_by_execution,
    validate_transparent,
)
from repro.library import catalog


class TestPaperWorkedExampleMarchU:
    """Section 4's worked example: March U on an 8-bit-word memory."""

    def setup_method(self):
        self.result = twm_transform(catalog.get("March U"), 8)

    def test_appended_read(self):
        # SMarch U ends with a write, so a read element is appended.
        assert self.result.appended_read
        assert str(self.result.smarch.elements[-1]) == "⇕(r0)"

    def test_tsmarch_structure_matches_paper(self):
        assert str(self.result.tsmarch) == (
            "{⇑(rc,w~c,r~c,wc); ⇑(rc,w~c); ⇓(r~c,wc,rc,w~c); ⇓(r~c,wc); ⇕(rc)}"
        )

    def test_tsmarch_length_13(self):
        assert self.result.tsmarch.op_count == 13

    def test_not_inverted(self):
        # Paper: "the content of each word is equal to the initial content".
        assert not self.result.inverted

    def test_atmarch_length_16(self):
        assert self.result.atmarch.op_count == 16

    def test_atmarch_structure(self):
        assert str(self.result.atmarch) == (
            "{⇕(rc,w(c^D1),r(c^D1),wc,rc); "
            "⇕(rc,w(c^D2),r(c^D2),wc,rc); "
            "⇕(rc,w(c^D3),r(c^D3),wc,rc); ⇕(rc)}"
        )

    def test_total_complexity_29(self):
        # Paper: "The complexity of the transformed transparent
        # word-oriented March U is 29 for testing a memory with 8-bit words".
        assert self.result.tcm == 29

    def test_prediction_complexity(self):
        assert self.result.tcp == self.result.twmarch.n_reads == 17

    def test_transparent(self):
        assert validate_transparent(self.result.twmarch).ok
        assert check_transparency_by_execution(self.result.twmarch)


class TestMarchCMinus32:
    """The headline configuration: March C− on 32-bit words."""

    def setup_method(self):
        self.result = twm_transform(catalog.get("March C-"), 32)

    def test_tcm_35(self):
        assert self.result.tcm == 35  # 9 + 5*5 + 1

    def test_tcp_21(self):
        assert self.result.tcp == 21  # 5 + 3*5 + 1

    def test_no_appended_read(self):
        assert not self.result.appended_read

    def test_tsmarch_is_9_ops(self):
        assert self.result.tsmarch.op_count == 9

    def test_atmarch_has_log2b_pattern_elements(self):
        assert len(self.result.atmarch.elements) == 6  # 5 patterns + final read


class TestFormulaConsistency:
    @pytest.mark.parametrize(
        "name", ["March C-", "March X", "March Y", "March C", "March LR"]
    )
    @pytest.mark.parametrize("width", [2, 4, 8, 16, 32, 64, 128])
    def test_tcm_formula_for_read_ending_tests(self, name, width):
        # Tests satisfying the paper's assumptions: TCM = N + 5*log2 b.
        test = catalog.get(name)
        assert test.all_ops[-1].is_read
        result = twm_transform(test, width)
        assert result.tcm == test.op_count + 5 * log2_width(width)

    @pytest.mark.parametrize("name", ["March U", "MATS+", "March A", "March B"])
    @pytest.mark.parametrize("width", [4, 8, 32])
    def test_tcm_formula_for_write_ending_tests(self, name, width):
        # One extra appended read.
        test = catalog.get(name)
        assert test.all_ops[-1].is_write
        result = twm_transform(test, width)
        assert result.tcm == test.op_count + 5 * log2_width(width) + 1

    @pytest.mark.parametrize("width", [4, 8, 32, 64])
    def test_tcp_formula(self, width):
        test = catalog.get("March C-")
        result = twm_transform(test, width)
        assert result.tcp == test.n_reads + 3 * log2_width(width) + 1

    @pytest.mark.parametrize("name", catalog.names())
    def test_prediction_equals_reads(self, name):
        result = twm_transform(catalog.get(name), 16)
        assert result.tcp == result.twmarch.n_reads


class TestInvertedBranch:
    def setup_method(self):
        # SMarch ends with a read of all-1: TSMarch leaves content at ~c.
        self.bmarch = parse_march("⇕(w0); ⇑(r0,w1); ⇕(r1)", name="inv")
        self.result = twm_transform(self.bmarch, 8)

    def test_detects_inversion(self):
        assert self.result.inverted

    def test_atmarch_cost_unchanged(self):
        assert self.result.atmarch.op_count == 5 * 3 + 1

    def test_last_pattern_element_restores(self):
        last_pattern = self.result.atmarch.elements[-2]
        # Second write flips back to c.
        writes = [op for op in last_pattern.ops if op.is_write]
        assert writes[-1].data.mask.is_zero

    def test_transparent(self):
        assert validate_transparent(self.result.twmarch).ok
        assert check_transparency_by_execution(self.result.twmarch)

    def test_final_element_reads_c(self):
        assert str(self.result.atmarch.elements[-1]) == "⇕(rc)"


class TestAtmarchEdgeWidths:
    def test_width1_not_inverted(self):
        tail = atmarch(1, inverted=False)
        assert tail.op_count == 1
        assert str(tail) == "{⇕(rc)}"

    def test_width1_inverted(self):
        tail = atmarch(1, inverted=True)
        # Degenerate: restore + final read (documented deviation).
        assert str(tail) == "{⇕(r~c,wc); ⇕(rc)}"

    def test_width2(self):
        tail = atmarch(2, inverted=False)
        assert tail.op_count == 6  # 5*1 + 1

    def test_width_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            atmarch(12, inverted=False)

    @pytest.mark.parametrize("width", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("inverted", [False, True])
    def test_atmarch_always_ends_restored(self, width, inverted):
        tail = atmarch(width, inverted=inverted)
        final_writes = [op for op in tail.all_ops if op.is_write]
        if final_writes:
            assert final_writes[-1].data.mask.is_zero


class TestSolidBackgroundStep:
    def test_appends_read_for_write_ending(self):
        smarch, appended = solid_background_test(catalog.get("MATS+"))
        assert appended
        assert smarch.op_count == 6

    def test_no_append_for_read_ending(self):
        smarch, appended = solid_background_test(catalog.get("March C-"))
        assert not appended
        assert smarch.op_count == 10

    def test_append_disabled(self):
        smarch, appended = solid_background_test(
            catalog.get("MATS+"), append_read=False
        )
        assert not appended


class TestTwmErrors:
    def test_rejects_word_background_test(self):
        t = parse_march("⇕(wD1); ⇑(rD1,w~D1)", name="word-bg")
        with pytest.raises(TWMError, match="bit-oriented"):
            twm_transform(t, 8)

    def test_rejects_transparent_input(self):
        t = parse_march("⇕(rc,w~c); ⇕(r~c,wc)", name="transparent")
        with pytest.raises(TWMError):
            twm_transform(t, 8)

    def test_rejects_non_power_width(self):
        with pytest.raises(ValueError):
            twm_transform(catalog.get("March C-"), 24)


class TestNontransparentReference:
    def test_structure(self):
        ref = nontransparent_word_reference(catalog.get("March C-"), 4)
        # SMarch (10 ops) + AMarch (2 patterns * 5 + 1).
        assert ref.op_count == 10 + 11

    def test_amarch_uses_final_content_base(self):
        # March C- leaves all-0; AMarch base is therefore 0.
        ref = nontransparent_word_reference(catalog.get("March C-"), 4)
        tail = ref.elements[-1]
        assert str(tail) == "⇕(r0)"

    def test_solid_form(self):
        ref = nontransparent_word_reference(catalog.get("March U"), 8)
        assert ref.is_solid_form

    def test_valid_solid(self):
        from repro.core.validate import validate_solid

        ref = nontransparent_word_reference(catalog.get("March C-"), 8)
        assert validate_solid(ref).ok


@pytest.mark.parametrize("name", catalog.names())
@pytest.mark.parametrize("width", [2, 8, 32])
def test_every_catalog_test_transforms_validly(name, width):
    result = twm_transform(catalog.get(name), width)
    assert validate_transparent(result.twmarch).ok
    assert result.tcm == result.twmarch.op_count
    assert result.twmarch.is_transparent_form
