"""Tests for tools/detlint.py — the engine-tree determinism lint."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import detlint  # noqa: E402


def _rules(source):
    return [d.rule for d in detlint.lint_source(source)]


class TestUnseededRandom:
    def test_flags_global_generator_calls(self):
        assert _rules("import random\nx = random.random()\n") == ["DET001"]
        assert _rules("import random\nrandom.shuffle(items)\n") == ["DET001"]

    def test_allows_seeded_instances(self):
        source = "import random\nrng = random.Random(7)\nrng.shuffle(items)\n"
        assert _rules(source) == []


class TestSetIteration:
    def test_flags_for_loops_and_comprehensions(self):
        assert _rules("for x in {1, 2}:\n    pass\n") == ["DET002"]
        assert _rules("out = [v for v in set(items)]\n") == ["DET002"]
        expected = ["DET002"]
        assert _rules("out = sorted(x for x in frozenset(items))\n") == expected

    def test_allows_sorted_views(self):
        assert _rules("for x in sorted({1, 2}):\n    pass\n") == []
        assert _rules("for x in [1, 2]:\n    pass\n") == []


class TestWallClock:
    def test_flags_wall_clock_reads(self):
        assert _rules("import time\nt = time.time()\n") == ["DET003"]
        assert _rules("import time\nt = time.time_ns()\n") == ["DET003"]
        source = "from datetime import datetime\nnow = datetime.now()\n"
        assert _rules(source) == ["DET003"]

    def test_allows_monotonic_timing(self):
        source = (
            "import time\n"
            "t0 = time.monotonic()\n"
            "t1 = time.perf_counter()\n"
            "time.sleep(0.1)\n"
        )
        assert _rules(source) == []


class TestHardExit:
    def test_flags_os_exit(self):
        assert _rules("import os\nos._exit(1)\n") == ["DET004"]

    def test_allows_chaos_module(self):
        diags = detlint.lint_source(
            "import os\nos._exit(13)\n", path="src/repro/engine/chaos.py"
        )
        assert diags == []


class TestSuppression:
    def test_inline_ignore_silences_one_rule(self):
        source = "import random\nx = random.random()  # detlint: ignore[DET001]\n"
        assert _rules(source) == []

    def test_ignore_lists_multiple_ids(self):
        source = (
            "import random, time\n"
            "x = random.random() + time.time()"
            "  # detlint: ignore[DET001, DET003]\n"
        )
        assert _rules(source) == []

    def test_ignore_of_other_rule_does_not_silence(self):
        source = "import random\nx = random.random()  # detlint: ignore[DET002]\n"
        assert _rules(source) == ["DET001"]


class TestCli:
    def test_engine_tree_is_clean(self, capsys):
        engine = REPO_ROOT / "src" / "repro" / "engine"
        assert detlint.main([str(engine)]) == 0
        assert "0 error" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert detlint.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET003" in out
        assert "bad.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("import os\nos._exit(1)\n")
        assert detlint.main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["rule"] == "DET004"

    def test_missing_path_exit_two(self, tmp_path, capsys):
        assert detlint.main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_registry_has_four_rules(self):
        registry = detlint.registry()
        assert [rule.id for rule in registry.select()] == [
            "DET001",
            "DET002",
            "DET003",
            "DET004",
        ]
        assert all(rule.layer == "det" for rule in registry)
