"""Tests for the extension fault models: read-disturb and decoder faults."""

import pytest

from repro.analysis.coverage import compare_flow, run_campaign
from repro.library import catalog
from repro.memory.faults import AddressDecoderFault, Cell, ReadDisturbFault
from repro.memory.injection import (
    FaultyMemory,
    enumerate_address_faults,
    enumerate_read_disturb,
)


class TestReadDisturbSemantics:
    def test_rdf_read_returns_flipped_and_flips(self):
        m = FaultyMemory(2, 4, [ReadDisturbFault(Cell(0, 1), deceptive=False)])
        m.load([0b0000, 0])
        assert m.read(0) == 0b0010  # returned value already flipped
        assert m.read(0) == 0b0000  # flips back on the next read

    def test_drdf_read_returns_correct_but_flips(self):
        m = FaultyMemory(2, 4, [ReadDisturbFault(Cell(0, 1), deceptive=True)])
        m.load([0b0000, 0])
        assert m.read(0) == 0b0000  # deceptive: looks clean
        assert m.read(0) == 0b0010  # damage visible on the second read

    def test_write_resets_disturbed_cell(self):
        m = FaultyMemory(1, 4, [ReadDisturbFault(Cell(0, 0), deceptive=True)])
        m.load([0])
        m.read(0)  # cell flips to 1
        m.write(0, 0)
        assert m.snapshot() == [0]

    def test_other_cells_unaffected(self):
        m = FaultyMemory(1, 4, [ReadDisturbFault(Cell(0, 0))])
        m.load([0b1100])
        got = m.read(0)
        assert got & 0b1100 == 0b1100

    def test_describe(self):
        assert ReadDisturbFault(Cell(1, 2)).describe() == "RDF@(1,2)"
        assert ReadDisturbFault(Cell(1, 2), True).describe() == "DRDF@(1,2)"
        assert ReadDisturbFault(Cell(0, 0)).kind == "RDF"


class TestAddressFaultSemantics:
    def test_none_drops_writes_and_floats_reads(self):
        m = FaultyMemory(4, 4, [AddressDecoderFault(1, "none", float_value=0)])
        m.write(1, 0xF)
        assert m.read(1) == 0
        assert m.snapshot()[1] == 0  # physical cell never written

    def test_none_float_value(self):
        m = FaultyMemory(4, 4, [AddressDecoderFault(1, "none", float_value=0xF)])
        assert m.read(1) == 0xF

    def test_other_redirects_both_ways_of_access(self):
        m = FaultyMemory(4, 4, [AddressDecoderFault(0, "other", 2)])
        m.write(0, 0x5)
        assert m.snapshot()[0] == 0  # own cell untouched
        assert m.snapshot()[2] == 0x5
        assert m.read(0) == 0x5  # reads also redirected

    def test_multi_writes_both(self):
        m = FaultyMemory(4, 4, [AddressDecoderFault(0, "multi", 3)])
        m.write(0, 0x9)
        assert m.snapshot()[0] == 0x9
        assert m.snapshot()[3] == 0x9

    def test_multi_reads_wired_and(self):
        m = FaultyMemory(4, 4, [AddressDecoderFault(0, "multi", 3)])
        m.load([0b1100, 0, 0, 0b1010])
        assert m.read(0) == 0b1000

    def test_multi_reads_wired_or(self):
        m = FaultyMemory(4, 4, [AddressDecoderFault(0, "multi", 3, wired_or=True)])
        m.load([0b1100, 0, 0, 0b1010])
        assert m.read(0) == 0b1110

    def test_unaffected_addresses_normal(self):
        m = FaultyMemory(4, 4, [AddressDecoderFault(0, "none")])
        m.write(2, 0x7)
        assert m.read(2) == 0x7

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressDecoderFault(0, "bogus")
        with pytest.raises(ValueError):
            AddressDecoderFault(0, "other")  # missing other_addr
        with pytest.raises(ValueError):
            AddressDecoderFault(0, "other", 0)  # same address
        with pytest.raises(ValueError):
            AddressDecoderFault(9, "none").validate(4, 4)

    def test_describe(self):
        assert AddressDecoderFault(1, "none").describe() == "AF-none@1"
        assert "AF-other@0->2" == AddressDecoderFault(0, "other", 2).describe()
        assert "and" in AddressDecoderFault(0, "multi", 2).describe()


class TestEnumeration:
    def test_read_disturb_counts(self):
        assert len(list(enumerate_read_disturb(2, 4))) == 2 * 2 * 4
        assert len(list(enumerate_read_disturb(2, 4, deceptive=True))) == 8

    def test_address_fault_count(self):
        faults = list(enumerate_address_faults(4))
        # n AF-1 + 2 per ordered pair (AF-2, AF-3).
        assert len(faults) == 4 + 2 * 4 * 3

    def test_enumerated_faults_validate(self):
        for fault in enumerate_address_faults(4):
            fault.validate(4, 8)


class TestClassicDetectionResults:
    """Textbook results: double-read tests catch DRDF, March C- cannot."""

    def _coverage(self, name, universe):
        flow = compare_flow(catalog.get(name), 6, 1, initial=0)
        return run_campaign(flow, universe).coverage_vector()

    @pytest.fixture(scope="class")
    def universes(self):
        return {
            "RDF": list(enumerate_read_disturb(6, 1, deceptive=False)),
            "DRDF": list(enumerate_read_disturb(6, 1, deceptive=True)),
            "AF": list(enumerate_address_faults(6)),
        }

    def test_march_cm_blind_to_drdf(self, universes):
        vec = self._coverage("March C-", universes)
        assert vec["RDF"] == 100.0
        assert vec["DRDF"] == 0.0
        assert vec["AF"] == 100.0

    @pytest.mark.parametrize("name", ["March SS", "March RAW"])
    def test_double_read_tests_catch_drdf(self, name, universes):
        vec = self._coverage(name, universes)
        assert vec["RDF"] == 100.0
        assert vec["DRDF"] == 100.0
        assert vec["AF"] == 100.0

    def test_transparent_twm_inherits_drdf_coverage(self, universes):
        from repro.core.twm import twm_transform

        twm = twm_transform(catalog.get("March SS"), 2)
        flow = compare_flow(twm.twmarch, 6, 2, initial=None, seed=3)
        drdf = list(enumerate_read_disturb(6, 2, deceptive=True))
        report = run_campaign(flow, {"DRDF": drdf})
        assert report.classes["DRDF"].percent == 100.0
