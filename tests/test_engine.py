"""Engine subsystem tests: compiled IR + reference-vs-batch equivalence.

The batch engine's contract is *bit-identical* campaign results: for
every test in the catalog, every fault class, randomized initial
content and multiple word widths, its coverage vectors, detection
counts and undetected-fault lists must match the reference interpreter
exactly.
"""

import random

import pytest

from repro.analysis.coverage import (
    aliasing_flow,
    compare_flow,
    run_campaign,
    signature_flow,
)
from repro.bist.controller import TransparentBist
from repro.bist.executor import run_march
from repro.bist.misr import Misr, absorb_weight_table, fold_table, signature_of_stream
from repro.core.notation import parse_march
from repro.core.twm import nontransparent_word_reference, twm_transform
from repro.engine import (
    BatchEngine,
    CampaignRunner,
    ExecutionError,
    MarchProgram,
    ReferenceEngine,
    compile_march,
    engine_names,
    get_engine,
    shard_bounds,
)
from repro.engine import batch as batch_module
from repro.engine.program import pack_words, replicate_mask
from repro.library import catalog
from repro.memory.faults import Cell, Fault, StuckAtFault
from repro.memory.injection import (
    FaultyMemory,
    enumerate_address_faults,
    enumerate_read_disturb,
    standard_fault_universe,
)
from repro.memory.model import Memory

N_WORDS = 3


def small_universe(n_words, width, seed):
    universe = standard_fault_universe(
        n_words, width, max_inter_pairs=6, rng=random.Random(seed)
    )
    universe["RDF"] = list(enumerate_read_disturb(n_words, width))
    universe["AF"] = list(enumerate_address_faults(n_words))
    return universe


def assert_campaigns_identical(test, n_words, width, seed, derive_writes=True):
    universe = small_universe(n_words, width, seed)
    flow = compare_flow(
        test, n_words, width, initial=None, seed=seed, derive_writes=derive_writes
    )
    ref = run_campaign(flow, universe, engine="reference")
    bat = run_campaign(flow, universe, engine="batch")
    assert ref.coverage_vector() == bat.coverage_vector()
    for name in universe:
        assert ref.classes[name].detected == bat.classes[name].detected, name
    assert ref.undetected == bat.undetected


class TestRegistry:
    def test_both_engines_registered(self):
        assert {"reference", "batch"} <= set(engine_names())

    def test_get_engine_by_name(self):
        assert isinstance(get_engine("reference"), ReferenceEngine)
        assert isinstance(get_engine("batch"), BatchEngine)

    def test_default_is_reference(self):
        assert isinstance(get_engine(), ReferenceEngine)

    def test_instance_passthrough(self):
        eng = BatchEngine()
        assert get_engine(eng) is eng

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp")


class TestProgramIR:
    def test_compile_resolves_masks(self):
        program = compile_march(catalog.get("March C-"), 8)
        assert isinstance(program, MarchProgram)
        assert program.width == 8
        assert program.op_count == catalog.get("March C-").op_count
        assert program.n_reads == catalog.get("March C-").n_reads
        masks = {op.mask for e in program.elements for op in e.ops}
        assert masks <= {0, 0xFF}

    def test_compile_is_cached(self):
        test = catalog.get("March U")
        assert compile_march(test, 16) is compile_march(test, 16)
        assert compile_march(test, 16) is not compile_march(test, 32)

    def test_marchtest_compiled_convenience(self):
        test = catalog.get("March U")
        assert test.compiled(16) is compile_march(test, 16)

    def test_derive_links(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        program = compile_march(twm.twmarch, 4)
        assert program.derivable
        for element in program.elements:
            for op in element.ops:
                if op.is_write and op.relative:
                    fed_by = element.ops[op.derive_from]
                    assert fed_by.is_read and fed_by.index < op.index

    def test_underivable_flagged(self):
        program = compile_march(parse_march("⇕(wc); ⇕(rc)", name="bad"), 4)
        assert not program.derivable

    def test_descending_order(self):
        program = compile_march(parse_march("⇓(r0)", name="down"), 4)
        assert program.elements[0].descending
        assert list(program.elements[0].addresses(3)) == [2, 1, 0]

    def test_pack_and_replicate(self):
        assert pack_words([0b01, 0b11], 2) == 0b1101
        assert replicate_mask(0b10, 3, 2) == 0b101010
        assert replicate_mask(0b1, 1, 4) == 0b1


class TestRunEquivalence:
    """Both engines expose the same single-run interface and results."""

    def faulty(self):
        memory = FaultyMemory(4, 4, [StuckAtFault(Cell(1, 2), 1)])
        memory.load([0b0101, 0b0010, 0b1111, 0b1000])
        return memory

    def test_run_results_identical(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        runs = []
        for engine in ("reference", "batch"):
            result = run_march(twm.twmarch, self.faulty(), engine=engine)
            runs.append(
                (result.ops_executed, result.n_reads, result.n_mismatches)
            )
        assert runs[0] == runs[1]

    def test_read_streams_identical(self):
        twm = twm_transform(catalog.get("March U"), 4)
        streams = []
        for engine in ("reference", "batch"):
            stream = []
            run_march(
                twm.twmarch,
                self.faulty(),
                read_sink=lambda rec: stream.append((rec.addr, rec.raw)),
                engine=engine,
            )
            streams.append(stream)
        assert streams[0] == streams[1]

    def test_collected_records_identical(self):
        for test in (catalog.get("March C-"), catalog.get("MATS+")):
            a = run_march(test, self.faulty(), collect=True, engine="reference")
            b = run_march(test, self.faulty(), collect=True, engine="batch")
            assert a.records == b.records

    def test_underivable_raises_in_both(self):
        bad = parse_march("⇕(wc); ⇕(rc)", name="bad")
        for engine in ("reference", "batch"):
            with pytest.raises(ExecutionError, match="no preceding read"):
                run_march(bad, Memory(2, 4), engine=engine)

    def test_batch_detect_underivable_raises(self):
        bad = parse_march("⇕(wc); ⇕(rc)", name="bad")
        faults = [StuckAtFault(Cell(0, 0), 1)]
        with pytest.raises(ExecutionError, match="no preceding read"):
            get_engine("batch").detect_batch(bad, 2, 4, [0, 0], faults)

    def test_underivable_after_detection_matches_reference(self):
        # The first element always mismatches (rc^1 against untouched
        # content), so stop-on-mismatch never reaches the underivable
        # second-element write: the interpreter reports detection
        # instead of raising, and the batch engine must do the same.
        tricky = parse_march("⇕(rc^1,wc); ⇕(wc)", name="tricky")
        faults = [StuckAtFault(Cell(0, 0), 1), StuckAtFault(Cell(1, 2), 0)]
        verdicts = {
            engine: get_engine(engine).detect_batch(tricky, 2, 4, [0, 0], faults)
            for engine in ("reference", "batch")
        }
        assert verdicts["reference"] == verdicts["batch"] == [True, True]


class TestCampaignEquivalence:
    """Bit-identical coverage across the catalog and fault classes."""

    @pytest.mark.parametrize("name", catalog.names())
    def test_transparent_catalog(self, name):
        twm = twm_transform(catalog.get(name), 4)
        assert_campaigns_identical(
            twm.twmarch, N_WORDS, 4, seed=sum(map(ord, name)) % 997
        )

    @pytest.mark.parametrize("name", ["MATS+", "March C-", "March U", "March SS"])
    def test_solid_catalog(self, name):
        assert_campaigns_identical(catalog.get(name), N_WORDS, 4, seed=13)

    @pytest.mark.parametrize("width", [1, 2, 8, 16])
    def test_word_widths(self, width):
        test = (
            catalog.get("March C-")
            if width == 1
            else twm_transform(catalog.get("March C-"), width).twmarch
        )
        assert_campaigns_identical(test, N_WORDS, width, seed=width)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_content(self, seed):
        twm = twm_transform(catalog.get("March U"), 8)
        assert_campaigns_identical(twm.twmarch, 4, 8, seed=seed)

    def test_oracle_write_mode(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        assert_campaigns_identical(
            twm.twmarch, N_WORDS, 4, seed=7, derive_writes=False
        )

    def test_nontransparent_reference_test(self):
        ref = nontransparent_word_reference(catalog.get("March C-"), 8)
        assert_campaigns_identical(ref, N_WORDS, 8, seed=17)

    def test_ill_formed_test_matches_interpreter(self):
        # A test that mismatches even on a fault-free memory exercises
        # the batch engine's fault-free baseline plane.
        ill = parse_march("⇑(r1); ⇓(r0,w0)", name="ill")
        assert_campaigns_identical(ill, N_WORDS, 4, seed=23)

    def test_uniform_content(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = small_universe(N_WORDS, 4, 31)
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        ref = run_campaign(flow, universe, engine="reference")
        bat = run_campaign(flow, universe, engine="batch")
        assert ref.coverage_vector() == bat.coverage_vector()


class TestCampaignReportExtras:
    def test_stats_populated(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = small_universe(N_WORDS, 4, 3)
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        report = run_campaign(flow, universe, engine="batch")
        assert report.engine == "batch"
        assert set(report.stats) == set(universe)
        for name, stats in report.stats.items():
            assert stats.total == len(universe[name])
            assert stats.seconds >= 0.0
            assert stats.engine == "batch"
        assert report.seconds == sum(s.seconds for s in report.stats.values())

    def test_progress_callback_delivers_early_statistics(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = small_universe(N_WORDS, 4, 3)
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        seen = []
        run_campaign(
            flow,
            universe,
            engine="batch",
            progress=lambda cov, stats: seen.append((cov.name, stats.name)),
        )
        assert seen == [(name, name) for name in universe]

    def test_plain_flow_ignores_engine(self):
        # A bare callable cannot be batched; the campaign falls back to
        # per-fault calls and still reports correctly.
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = {"SAF": small_universe(N_WORDS, 4, 3)["SAF"]}
        structured = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        bare = lambda fault: structured(fault)  # noqa: E731
        a = run_campaign(structured, universe, engine="batch")
        b = run_campaign(bare, universe, engine="batch")
        assert a.coverage_vector() == b.coverage_vector()
        # Stats name the backend that actually ran, not the requested one.
        assert a.engine == "batch" and a.stats["SAF"].engine == "batch"
        assert b.engine is None and b.stats["SAF"].engine == "flow"


class TestAddressFaultFastPath:
    """The AF class takes the subset fast path, never the interpreter."""

    def test_af_never_hits_reference_fallback(self, monkeypatch):
        def boom(self, fault):
            raise AssertionError(f"reference fallback hit for {fault}")

        monkeypatch.setattr(batch_module._CampaignContext, "_fallback", boom)
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = small_universe(N_WORDS, 4, 5)
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=None, seed=5)
        report = run_campaign(flow, universe, engine="batch")
        assert report.total == sum(len(f) for f in universe.values())

    def test_unknown_fault_kind_still_falls_back(self):
        class WeirdFault(Fault):
            @property
            def cells(self):
                return ()

            @property
            def kind(self):
                return "WEIRD"

            def describe(self):
                return "WEIRD"

            def validate(self, n_words, width):
                pass

        twm = twm_transform(catalog.get("March C-"), 4)
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        # The interpreter sees an ordinary fault-free memory, so the
        # fallback verdict must be "not detected" for both oracles.
        verdicts = get_engine("batch").detect_batch(
            flow.test, N_WORDS, 4, flow.words, [WeirdFault()]
        )
        assert verdicts == [False]
        sig = get_engine("batch").detect_signature_batch(
            twm.twmarch, twm.prediction, N_WORDS, 4, flow.words, [WeirdFault()]
        )
        assert sig == [False]

    @pytest.mark.parametrize("wired_or", [False, True])
    def test_af_wiring_variants_match_reference(self, wired_or):
        twm = twm_transform(catalog.get("March U"), 4)
        universe = {
            "AF": list(enumerate_address_faults(4, wired_or=wired_or))
        }
        flow = compare_flow(twm.twmarch, 4, 4, initial=None, seed=29)
        ref = run_campaign(flow, universe, engine="reference")
        bat = run_campaign(flow, universe, engine="batch")
        assert ref.coverage_vector() == bat.coverage_vector()
        assert ref.undetected == bat.undetected


class TestSignatureBatchEquivalence:
    """Batched MISR oracle vs the per-fault TransparentBist session."""

    def make_flow(self, name, n_words, width, seed, misr_width=8):
        twm = twm_transform(catalog.get(name), width)
        return signature_flow(
            twm.twmarch,
            twm.prediction,
            n_words,
            width,
            misr_width=misr_width,
            initial=None,
            seed=seed,
        )

    @pytest.mark.parametrize("name", catalog.names())
    def test_catalog_equivalence(self, name):
        flow = self.make_flow(name, N_WORDS, 4, seed=sum(map(ord, name)) % 499)
        universe = small_universe(N_WORDS, 4, 7)
        per_fault = run_campaign(flow, universe)
        ref = run_campaign(flow, universe, engine="reference")
        bat = run_campaign(flow, universe, engine="batch")
        assert (
            per_fault.coverage_vector()
            == ref.coverage_vector()
            == bat.coverage_vector()
        )
        assert per_fault.undetected == ref.undetected == bat.undetected

    @pytest.mark.parametrize("misr_width", [1, 4, 16])
    def test_misr_widths(self, misr_width):
        # Narrow registers alias aggressively; wide ones fold word bits.
        flow = self.make_flow("March C-", 4, 8, seed=3, misr_width=misr_width)
        universe = small_universe(4, 8, 3)
        ref = run_campaign(flow, universe, engine="reference")
        bat = run_campaign(flow, universe, engine="batch")
        assert ref.coverage_vector() == bat.coverage_vector()
        assert ref.undetected == bat.undetected

    def test_misr_seed_respected(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = {"SAF": small_universe(N_WORDS, 4, 0)["SAF"]}
        for seed in (0, 0x5A):
            flow = signature_flow(
                twm.twmarch, twm.prediction, N_WORDS, 4,
                misr_width=8, misr_seed=seed, initial=0,
            )
            ref = run_campaign(flow, universe, engine="reference")
            bat = run_campaign(flow, universe, engine="batch")
            assert ref.coverage_vector() == bat.coverage_vector()

    def test_underivable_test_raises_in_both(self):
        bad = parse_march("⇕(rc); ⇕(wc); ⇕(wc)", name="bad2")
        # Second element's write has no feeding read -> underivable.
        assert not compile_march(bad, 4).derivable
        prediction = parse_march("⇕(rc)", name="bad2-sp")
        faults = [StuckAtFault(Cell(0, 0), 1)]
        for engine in ("reference", "batch"):
            with pytest.raises(ExecutionError, match="no preceding read"):
                get_engine(engine).detect_signature_batch(
                    bad, prediction, 2, 4, [0, 0], faults
                )


class TestAliasingBatchEquivalence:
    """Batched pair-verdict aliasing oracle vs the per-fault
    TransparentBist session: bit-identical (stream, signature) pairs."""

    def make_flow(self, name, n_words, width, seed, misr_width=8):
        twm = twm_transform(catalog.get(name), width)
        return aliasing_flow(
            twm.twmarch,
            twm.prediction,
            n_words,
            width,
            misr_width=misr_width,
            initial=None,
            seed=seed,
        )

    def reports_equal(self, a, b):
        assert a.coverage_vector() == b.coverage_vector()
        assert a.aliasing_vector() == b.aliasing_vector()
        assert a.undetected == b.undetected
        for name in a.classes:
            ca, cb = a.classes[name], b.classes[name]
            assert (ca.stream_detected, ca.aliased) == (
                cb.stream_detected,
                cb.aliased,
            ), name

    @pytest.mark.parametrize("name", catalog.names())
    def test_catalog_equivalence(self, name):
        flow = self.make_flow(name, N_WORDS, 4, seed=sum(map(ord, name)) % 499)
        universe = small_universe(N_WORDS, 4, 7)
        per_fault = run_campaign(flow, universe)
        ref = run_campaign(flow, universe, engine="reference")
        bat = run_campaign(flow, universe, engine="batch")
        self.reports_equal(per_fault, ref)
        self.reports_equal(per_fault, bat)

    @pytest.mark.parametrize("misr_width", [1, 2, 16])
    def test_misr_widths(self, misr_width):
        flow = self.make_flow("March C-", 4, 8, seed=3, misr_width=misr_width)
        universe = small_universe(4, 8, 3)
        ref = run_campaign(flow, universe, engine="reference")
        bat = run_campaign(flow, universe, engine="batch")
        self.reports_equal(ref, bat)
        if misr_width == 1:
            # A 1-bit signature aliases heavily, so the pair campaign
            # must actually report aliasing events, not zeros.
            assert bat.aliased > 0
            assert bat.stream_detected > bat.detected

    def test_pairs_match_transparent_bist_exactly(self):
        # The acceptance oracle: the controller itself, fault by fault.
        twm = twm_transform(catalog.get("March U"), 4)
        universe = small_universe(N_WORDS, 4, 41)
        words = compare_flow(
            twm.twmarch, N_WORDS, 4, initial=None, seed=41
        ).words
        controller = TransparentBist(twm.twmarch, twm.prediction, misr_width=2)
        for faults in universe.values():
            expected = []
            for fault in faults:
                memory = FaultyMemory(N_WORDS, 4, [fault])
                memory.load(words)
                outcome = controller.run(memory)
                expected.append((outcome.stream_detected, outcome.detected))
            batched = get_engine("batch").detect_aliasing_batch(
                twm.twmarch, twm.prediction, N_WORDS, 4, words, faults,
                misr_width=2,
            )
            assert batched == expected

    def test_jobs_identical(self):
        flow = self.make_flow("March C-", 4, 4, seed=27, misr_width=2)
        universe = small_universe(4, 4, 27)
        seq = run_campaign(flow, universe, engine="batch", jobs=1)
        par = run_campaign(flow, universe, engine="batch", jobs=4)
        self.reports_equal(seq, par)
        assert seq.jobs == 1 and par.jobs == 4

    def test_misr_seed_threaded_through(self):
        # Regression: aliasing_flow used to drop misr_seed entirely.
        flow = self.make_flow("March C-", N_WORDS, 4, seed=5)
        seeded = aliasing_flow(
            flow.test, flow.prediction, N_WORDS, 4,
            misr_width=4, misr_seed=0x5A, initial=0,
        )
        assert seeded.misr_seed == 0x5A
        assert seeded.controller.misr_seed == 0x5A
        assert seeded.work_unit().misr_seed == 0x5A
        universe = {"SAF": small_universe(N_WORDS, 4, 0)["SAF"]}
        ref = run_campaign(seeded, universe, engine="reference")
        bat = run_campaign(seeded, universe, engine="batch")
        self.reports_equal(ref, bat)

    def test_ill_formed_test_baseline_stream(self):
        # A fault-free mismatching test exercises the outside-support
        # contribution of the stream verdict (the controller requires
        # transparent form, so this goes through the engine API).
        ill = parse_march("⇕(rc^1,wc); ⇕(rc)", name="ill-alias")
        prediction = parse_march("⇕(rc)", name="ill-alias-p")
        universe = small_universe(N_WORDS, 4, 37)
        for faults in universe.values():
            ref = get_engine("reference").detect_aliasing_batch(
                ill, prediction, N_WORDS, 4, [1, 2, 3], faults, misr_width=4
            )
            bat = get_engine("batch").detect_aliasing_batch(
                ill, prediction, N_WORDS, 4, [1, 2, 3], faults, misr_width=4
            )
            assert ref == bat
            # Every fault-free read already mismatches, so the stream
            # verdict is True for every fault.
            assert all(stream for stream, _signature in bat)

    def test_underivable_raises_in_both(self):
        bad = parse_march("⇕(rc); ⇕(wc); ⇕(wc)", name="bad3")
        prediction = parse_march("⇕(rc)", name="bad3-sp")
        faults = [StuckAtFault(Cell(0, 0), 1)]
        for engine in ("reference", "batch"):
            with pytest.raises(ExecutionError, match="no preceding read"):
                get_engine(engine).detect_aliasing_batch(
                    bad, prediction, 2, 4, [0, 0], faults
                )

    def test_unknown_fault_kind_falls_back_to_pair(self):
        class WeirdFault(Fault):
            @property
            def cells(self):
                return ()

            @property
            def kind(self):
                return "WEIRD"

            def describe(self):
                return "WEIRD"

            def validate(self, n_words, width):
                pass

        twm = twm_transform(catalog.get("March C-"), 4)
        pairs = get_engine("batch").detect_aliasing_batch(
            twm.twmarch, twm.prediction, N_WORDS, 4, [0, 0, 0], [WeirdFault()]
        )
        assert pairs == [(False, False)]

    def test_batch_speedup_over_per_fault_controller(self):
        # Acceptance: >= 5x over the per-fault TransparentBist loop at
        # the default 16-word workload (observed ~40x; the 5x bar keeps
        # the check robust on loaded CI hosts).
        import time

        twm = twm_transform(catalog.get("March C-"), 8)
        universe = {
            "SAF": standard_fault_universe(16, 8)["SAF"],
            "RDF": list(enumerate_read_disturb(16, 8)),
        }
        flow = aliasing_flow(
            twm.twmarch, twm.prediction, 16, 8, initial=None, seed=0
        )
        started = time.perf_counter()
        per_fault = run_campaign(flow, universe)
        per_fault_seconds = time.perf_counter() - started
        started = time.perf_counter()
        batched = run_campaign(flow, universe, engine="batch")
        batch_seconds = time.perf_counter() - started
        self.reports_equal(per_fault, batched)
        assert per_fault_seconds / batch_seconds >= 5.0


class TestShardedCampaigns:
    """jobs=1 and jobs=N produce bit-identical campaign reports."""

    def reports_equal(self, a, b):
        assert a.coverage_vector() == b.coverage_vector()
        assert list(a.classes) == list(b.classes)
        assert a.undetected == b.undetected
        assert {n: s.total for n, s in a.stats.items()} == {
            n: s.total for n, s in b.stats.items()
        }

    def test_compare_jobs_identical(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = small_universe(4, 4, 19)
        flow = compare_flow(twm.twmarch, 4, 4, initial=None, seed=19)
        seq = run_campaign(flow, universe, engine="batch", jobs=1)
        par = run_campaign(flow, universe, engine="batch", jobs=4)
        self.reports_equal(seq, par)
        assert seq.jobs == 1 and par.jobs == 4

    def test_signature_jobs_identical(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = small_universe(4, 4, 23)
        flow = signature_flow(
            twm.twmarch, twm.prediction, 4, 4, misr_width=8,
            initial=None, seed=23,
        )
        seq = run_campaign(flow, universe, engine="batch", jobs=1)
        par = run_campaign(flow, universe, engine="batch", jobs=4)
        self.reports_equal(seq, par)

    def test_empty_universe(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        report = run_campaign(flow, {}, engine="batch", jobs=4)
        assert report.classes == {} and report.total == 0
        assert report.percent == 100.0

    def test_single_fault_class(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = {"SAF": small_universe(N_WORDS, 4, 2)["SAF"]}
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        seq = run_campaign(flow, universe, engine="batch", jobs=1)
        par = run_campaign(flow, universe, engine="batch", jobs=4)
        self.reports_equal(seq, par)

    def test_forced_sharding_matches_sequential(self):
        # min_chunk small enough that the pool really splits the class.
        twm = twm_transform(catalog.get("March U"), 4)
        universe = small_universe(4, 4, 31)
        flow = compare_flow(twm.twmarch, 4, 4, initial=None, seed=31)
        work = flow.work_unit()
        with CampaignRunner("batch", 3, min_chunk=4) as runner:
            runner.bind(work, universe)
            for name, faults in universe.items():
                sharded = runner.detect_class(work, faults, class_name=name)
                assert sharded == work.run(get_engine("batch"), faults), name

    def test_shard_bounds_partition(self):
        for n, chunks in [(0, 4), (1, 4), (7, 3), (100, 8), (8, 8), (5, 9)]:
            bounds = shard_bounds(n, chunks)
            covered = [i for start, stop in bounds for i in range(start, stop)]
            assert covered == list(range(n)), (n, chunks)

    def test_runner_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            CampaignRunner("batch", 0)

    def test_unregistered_engine_runs_inline(self):
        class Anon(BatchEngine):
            name = "anonymous-not-registered"

        runner = CampaignRunner(Anon(), jobs=4)
        assert runner.jobs == 1  # cannot rehydrate by name in a worker
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = {"SAF": small_universe(N_WORDS, 4, 2)["SAF"]}
        flow = compare_flow(twm.twmarch, N_WORDS, 4, initial=0)
        report = run_campaign(flow, universe, engine=Anon(), jobs=4)
        # The report records what actually ran, not what was requested.
        assert report.jobs == 1

    def test_interleaved_bound_runners_stay_correct(self):
        # Regression for the old global-binding design, where a second
        # runner's bind() clobbered the first's and the best the
        # runtime could do was raise "binding changed".  Per-runner
        # binding stores make interleaved bound runners simply work:
        # each pool's workers only ever see their own runner's
        # campaigns, even when the runners bind conflicting copies of
        # the same class name.
        from repro.engine import parallel as parallel_module

        if parallel_module._pool_context().get_start_method() != "fork":
            pytest.skip("zero-copy binding requires fork")
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = small_universe(4, 4, 11)
        flow = compare_flow(twm.twmarch, 4, 4, initial=None, seed=11)
        work = flow.work_unit()
        engine = get_engine("batch")
        first = CampaignRunner("batch", 2, min_chunk=4)
        second = CampaignRunner("batch", 2, min_chunk=4)
        try:
            first.bind(work, universe)
            short = {"SAF": universe["SAF"][:6]}  # conflicting "SAF"
            second.bind(work, short)
            for name in ("CFst-intra", "SAF"):
                assert first.detect_class(
                    work, universe[name], class_name=name
                ) == work.run(engine, universe[name]), name
            assert second.detect_class(
                work, short["SAF"], class_name="SAF"
            ) == work.run(engine, short["SAF"])
        finally:
            first.close()
            second.close()


class TestMisrHelpers:
    """Micro-optimised MISR loop and the linear-weight machinery."""

    def test_absorb_all_matches_absorb(self):
        rng = random.Random(5)
        stream = [rng.randrange(1 << 24) for _ in range(200)]
        one = Misr(16, seed=3)
        for value in stream:
            one.absorb(value)
        bulk = Misr(16, seed=3)
        bulk.absorb_all(stream)
        assert bulk.signature == one.signature
        assert bulk.absorbed == one.absorbed == 200

    def test_negative_inputs_terminate_and_match_absorb(self):
        # Regression: the rewritten fold loop must keep the historical
        # two's-complement-magnitude interpretation of negative inputs
        # instead of shifting forever.
        assert Misr(16).fold(-5) == 3
        one = Misr(8, seed=2)
        one.absorb(-5)
        bulk = Misr(8, seed=2)
        bulk.absorb_all([-5])
        assert bulk.signature == one.signature

    def test_signature_of_stream(self):
        stream = [1, 2, 3, 4, 5]
        signature, n = signature_of_stream(stream, width=8, seed=1)
        misr = Misr(8, seed=1)
        misr.absorb_all(stream)
        assert (signature, n) == (misr.signature, 5)

    def test_fold_table(self):
        assert fold_table(8, 16) == tuple(range(8))
        assert fold_table(8, 3) == (0, 1, 2, 0, 1, 2, 0, 1)

    @pytest.mark.parametrize("width", [1, 4, 8, 16])
    def test_weight_table_reconstructs_error_signatures(self, width):
        # signature(faulty) == signature(fault-free) XOR the weights of
        # every corrupted input bit — the linearity the batched
        # signature oracle rests on.
        rng = random.Random(width)
        n = 37
        clean = [rng.randrange(1 << width) for _ in range(n)]
        errors = {
            rng.randrange(n): rng.randrange(1, 1 << width) for _ in range(6)
        }
        dirty = [
            value ^ errors.get(k, 0) for k, value in enumerate(clean)
        ]
        weights = absorb_weight_table(n, width)
        delta = 0
        for k, err in errors.items():
            for b in range(width):
                if (err >> b) & 1:
                    delta ^= weights[k][b]
        clean_sig, _ = signature_of_stream(clean, width=width, seed=7)
        dirty_sig, _ = signature_of_stream(dirty, width=width, seed=7)
        assert dirty_sig == clean_sig ^ delta


class TestInitialWordsMasking:
    def test_sequence_initial_masked_to_width(self):
        # Regression: an explicit Sequence[int] initial content used to
        # bypass the word-width mask that Memory.load applies.
        from repro.analysis.coverage import _initial_words

        assert _initial_words(3, 4, [0xFF, 0x10, 0x3], 0) == [0xF, 0x0, 0x3]

    def test_flow_with_overwide_initial(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        wide = compare_flow(twm.twmarch, N_WORDS, 4, initial=[0x1F2, 0xFF, 0x7])
        masked = compare_flow(twm.twmarch, N_WORDS, 4, initial=[0x2, 0xF, 0x7])
        assert wide.words == masked.words
        universe = {"SAF": small_universe(N_WORDS, 4, 0)["SAF"]}
        a = run_campaign(wide, universe, engine="batch")
        b = run_campaign(masked, universe, engine="reference")
        assert a.coverage_vector() == b.coverage_vector()
