"""Tests for the Figure 1 state-analysis machinery."""

import pytest

from repro.analysis.states import (
    intra_word_conditions,
    pair_condition_coverage,
    state_sequence,
    two_cell_trace,
)
from repro.baselines.scheme1 import scheme1_transform
from repro.core.twm import nontransparent_word_reference, twm_transform
from repro.library import catalog


class TestTwoCellTrace:
    def test_march_cm_has_20_events(self):
        # 2 init writes + the 18 numbered steps of Figure 1(a).
        trace = two_cell_trace(catalog.get("March C-"))
        assert len(trace) == 20

    def test_fig1a_sequence(self):
        # After the init element, March C- walks the 18-step sequence.
        trace = two_cell_trace(catalog.get("March C-"))[2:]
        labels = [e.label() for e in trace]
        assert labels == [
            "r0[i]", "w1[i]", "r0[j]", "w1[j]",   # up(r0,w1)
            "r1[i]", "w0[i]", "r1[j]", "w0[j]",   # up(r1,w0)
            "r0[j]", "w1[j]", "r0[i]", "w1[i]",   # down(r0,w1)
            "r1[j]", "w0[j]", "r1[i]", "w0[i]",   # down(r1,w0)
            "r0[i]", "r0[j]",                     # final reads
        ]

    def test_all_four_joint_states_visited(self):
        trace = two_cell_trace(catalog.get("March C-"))
        assert set(state_sequence(trace)) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_mats_plus_misses_states(self):
        trace = two_cell_trace(catalog.get("MATS+"))
        # MATS+ never holds (i=0, j=1) [down order pairs it the other way].
        assert (0, 1) not in set(state_sequence(trace))

    def test_transparent_test_trace(self):
        t = twm_transform(catalog.get("March C-"), 1).twmarch
        trace = two_cell_trace(t, initial=(0, 0))
        assert set(state_sequence(trace)) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_transparent_trace_respects_initial(self):
        t = twm_transform(catalog.get("March C-"), 1).twmarch
        trace = two_cell_trace(t, initial=(1, 0))
        assert trace[0].value == 1  # first read returns c_i = 1


class TestPairConditionCoverage:
    def test_march_cm_is_complete(self):
        trace = two_cell_trace(catalog.get("March C-"))
        cov = pair_condition_coverage(trace)
        assert cov.complete
        assert cov.cfid_complete and cov.cfin_complete and cov.cfst_complete

    @pytest.mark.parametrize("name", ["March U", "March LR"])
    def test_other_full_cf_tests_complete(self, name):
        cov = pair_condition_coverage(two_cell_trace(catalog.get(name)))
        assert cov.complete, f"{name}: cfid={sorted(cov.cfid)}"

    def test_mats_plus_incomplete(self):
        cov = pair_condition_coverage(two_cell_trace(catalog.get("MATS+")))
        assert not cov.complete

    def test_march_x_covers_cfin_not_all_cfid(self):
        cov = pair_condition_coverage(two_cell_trace(catalog.get("March X")))
        assert not cov.cfid_complete

    def test_counts_bounded(self):
        cov = pair_condition_coverage(two_cell_trace(catalog.get("March C-")))
        assert len(cov.cfid) == 8
        assert len(cov.cfin) == 4
        assert len(cov.cfst) == 8


class TestIntraWordConditions:
    def test_solid_only_covers_diagonal(self):
        # SMarch alone writes 0...0 and 1...1: only (0,0) and (1,1).
        from repro.core.twm import solid_background_test

        smarch, _ = solid_background_test(catalog.get("March C-"))
        cond = intra_word_conditions(smarch, 4)
        for pats in cond.covered.values():
            assert pats == {(0, 0), (1, 1)}

    def test_reference_covers_three_patterns_per_pair(self):
        # SMarch+AMarch adds one mixed orientation per pair (the
        # checkerboards pick one), so 3 of 4 patterns per ordered pair.
        ref = nontransparent_word_reference(catalog.get("March C-"), 4)
        cond = intra_word_conditions(ref, 4)
        assert cond.pairs_with(3) == len(cond.covered)
        assert not cond.all_pairs_full

    def test_twmarch_matches_reference_conditions(self):
        width = 8
        ref = nontransparent_word_reference(catalog.get("March C-"), width)
        twm = twm_transform(catalog.get("March C-"), width).twmarch
        ref_cond = intra_word_conditions(ref, width)
        twm_cond = intra_word_conditions(twm, width, initial=0)
        assert ref_cond.covered == twm_cond.covered

    def test_scheme1_covers_all_four(self):
        # Scheme 1 writes both polarities of every checkerboard.
        s1 = scheme1_transform(catalog.get("March C-"), 4).transparent
        cond = intra_word_conditions(s1, 4, initial=0)
        assert cond.all_pairs_full

    def test_missing_reports_complement(self):
        ref = nontransparent_word_reference(catalog.get("March C-"), 4)
        cond = intra_word_conditions(ref, 4)
        missing = cond.missing()
        assert missing
        for (i, j), pats in missing.items():
            assert len(pats) == 1
            # The missing pattern for (i,j) mirrors the one for (j,i).
            (p,) = pats
            (q,) = missing[(j, i)]
            assert p == (q[1], q[0])

    def test_pair_count(self):
        cond = intra_word_conditions(
            nontransparent_word_reference(catalog.get("March C-"), 4), 4
        )
        assert len(cond.covered) == 4 * 3
