"""Packed class-level verdict passes and streaming fault universes.

The megaword contract has three parts, each tested here:

* **streaming universes** — :class:`~repro.memory.injection.FaultClass`
  descriptors enumerate bit-identically to the legacy eager
  enumerators (including the rng-sampled inter-word coupling classes),
  with O(1) ``len`` and index arithmetic instead of materialized
  ``Fault`` lists;
* **packed verdict bitsets** —
  :class:`~repro.engine.PackedVerdicts` /
  :class:`~repro.engine.PackedPairVerdicts` round-trip the per-fault
  verdicts exactly (counts, missed indices, chunk concat, pickling);
* **class kernels** — the batch engine's
  :meth:`~repro.engine.BatchEngine.detect_class_batch` one-pass
  kernels are bit-identical to per-fault dispatch and the reference
  interpreter, at small sizes fully and at megaword sizes on strided
  samples, across edge widths (1, non-power-of-two, > 64).
"""

import pickle
import random

import pytest

from repro.analysis.coverage import compare_flow, run_campaign
from repro.cli import main
from repro.core.twm import twm_transform
from repro.engine import (
    PackedPairVerdicts,
    PackedVerdicts,
    compile_march,
    get_engine,
)
from repro.engine import batch as batch_module
from repro.engine.program import compile_symbolic, pack_words
from repro.engine.symbolic import _SymbolicCampaign
from repro.library import catalog
from repro.memory.injection import (
    AddressFaultClass,
    FaultClass,
    InterWordCFClass,
    IntraWordCFClass,
    ReadDisturbClass,
    StuckAtClass,
    TransitionClass,
    enumerate_address_faults,
    enumerate_intra_word_cf,
    enumerate_inter_word_cf,
    enumerate_read_disturb,
    enumerate_stuck_at,
    enumerate_transition,
    standard_fault_universe,
)


def _words(n_words, width, seed):
    rng = random.Random(seed)
    return [rng.randrange(1 << width) for _ in range(n_words)]


class TestStreamingUniverseOrdering:
    """FaultClass descriptors reproduce the eager enumerator orders."""

    def test_single_cell_classes_match_enumerators(self):
        for n, w in [(3, 4), (2, 1), (5, 3), (1, 8)]:
            assert list(StuckAtClass(n, w)) == list(enumerate_stuck_at(n, w))
            assert list(TransitionClass(n, w)) == list(
                enumerate_transition(n, w)
            )
            for deceptive in (False, True):
                assert list(
                    ReadDisturbClass(n, w, deceptive=deceptive)
                ) == list(
                    enumerate_read_disturb(n, w, deceptive=deceptive)
                ), (n, w, deceptive)
            assert list(AddressFaultClass(n)) == list(
                enumerate_address_faults(n)
            )

    def test_intra_cf_classes_match_enumerators(self):
        for n, w in [(3, 4), (2, 2), (4, 3)]:
            for kind in ("CFst", "CFid", "CFin"):
                assert list(IntraWordCFClass(n, w, kind)) == list(
                    enumerate_intra_word_cf(n, w, kind)
                ), (n, w, kind)

    def test_inter_cf_sampling_matches_legacy(self):
        # The shared campaign rng must be consumed identically, so the
        # sampled pair sets agree fault for fault across all kinds.
        for seed in (0, 7, 11):
            for cap in (4, 16, None):
                for kind in ("CFst", "CFid", "CFin"):
                    legacy = list(
                        enumerate_inter_word_cf(
                            4,
                            3,
                            kind,
                            max_pairs=cap,
                            rng=random.Random(seed),
                            same_bit_only=(kind == "CFin"),
                        )
                    )
                    streaming = InterWordCFClass(
                        4,
                        3,
                        kind,
                        max_pairs=cap,
                        rng=random.Random(seed),
                        same_bit_only=(kind == "CFin"),
                    )
                    assert list(streaming) == legacy, (seed, cap, kind)

    def test_standard_universe_streaming_equals_legacy(self):
        for seed in (1, 9):
            streaming = standard_fault_universe(
                4,
                4,
                max_inter_pairs=10,
                rng=random.Random(seed),
                include_rdf=True,
                include_af=True,
            )
            legacy = standard_fault_universe(
                4,
                4,
                max_inter_pairs=10,
                rng=random.Random(seed),
                include_rdf=True,
                include_af=True,
                streaming=False,
            )
            assert list(streaming) == list(legacy)  # key order
            for name in streaming:
                assert isinstance(streaming[name], FaultClass), name
                assert list(streaming[name]) == list(legacy[name]), name

    def test_sequence_protocol(self):
        fc = StuckAtClass(5, 3)
        assert len(fc) == 2 * 5 * 3
        assert fc[0] == next(iter(enumerate_stuck_at(5, 3)))
        assert fc[-1] == list(enumerate_stuck_at(5, 3))[-1]
        assert fc[3:7] == list(enumerate_stuck_at(5, 3))[3:7]
        assert isinstance(fc[3:7], list)
        with pytest.raises(IndexError):
            fc[len(fc)]

    def test_megaword_len_is_lazy(self):
        # Descriptor construction and len never enumerate: instant even
        # at 2^20 words (16.7M stuck-at faults).
        fc = StuckAtClass(1 << 20, 8)
        assert len(fc) == 2 * (1 << 20) * 8
        assert fc[len(fc) - 1].cell.addr == (1 << 20) - 1

    def test_spec_equality_and_pickling(self):
        a = TransitionClass(4, 4)
        b = TransitionClass(4, 4)
        c = TransitionClass(5, 4)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "TF"
        restored = pickle.loads(pickle.dumps(a))
        assert restored == a and list(restored) == list(a)


class TestPackedVerdictContainers:
    def test_from_bools_round_trip(self):
        bools = [True, False, False, True, True]
        packed = PackedVerdicts.from_bools(bools)
        assert list(packed) == bools
        assert packed.tolist() == bools
        assert packed.count() == 3
        assert packed == bools
        assert len(packed) == 5

    def test_from_bools_rejects_non_bool(self):
        with pytest.raises(TypeError, match="expected a bool verdict"):
            PackedVerdicts.from_bools([True, (True, False)])

    def test_strided_layout(self):
        # stride=2: fault i = bit i//2 of vectors[i % 2].
        packed = PackedVerdicts(6, (0b101, 0b010), stride=2)
        assert list(packed) == [True, False, False, True, True, False]
        assert packed.count() == 3
        assert packed.missed_indices(10) == [1, 2, 5]
        assert packed.missed_indices(2) == [1, 2]

    def test_slot_stride_layout(self):
        # slot_stride=3: verdicts live at every third bit.
        packed = PackedVerdicts(3, (0b001000001,), stride=1, slot_stride=3)
        assert list(packed) == [True, False, True]
        assert packed.missed_indices(5) == [1]

    def test_concat_and_pickle(self):
        parts = [
            PackedVerdicts.from_bools([True, False]),
            PackedVerdicts.from_bools([False]),
            PackedVerdicts.from_bools([True, True]),
        ]
        merged = PackedVerdicts.concat(parts)
        assert list(merged) == [True, False, False, True, True]
        restored = pickle.loads(pickle.dumps(merged))
        assert list(restored) == list(merged)

    def test_pair_verdicts(self):
        pairs = [(True, True), (True, False), (False, False)]
        packed = PackedPairVerdicts.from_pairs(pairs)
        assert packed.tolist() == pairs
        assert packed.count() == 1  # signature detections
        assert packed.stream_count() == 2
        assert packed.aliased_count() == 1  # stream hit, signature miss
        assert packed.missed_indices(5) == [1, 2]
        restored = pickle.loads(pickle.dumps(packed))
        assert restored.tolist() == pairs

    def test_pair_verdicts_reject_malformed(self):
        with pytest.raises(TypeError):
            PackedPairVerdicts.from_pairs([(True, False), True])

    def test_pack_words_matches_naive(self):
        for n, w in [(0, 4), (1, 7), (13, 3), (100, 8)]:
            words = [random.Random(n).randrange(1 << w) for _ in range(n)]
            naive = 0
            for i, word in enumerate(words):
                naive |= word << (i * w)
            assert pack_words(words, w) == naive, (n, w)


def _context(test, n_words, width, seed):
    program = compile_march(test, width)
    return batch_module._CampaignContext(
        program, n_words, _words(n_words, width, seed), True
    )


def _classes(n_words, width):
    out = {
        "SAF": StuckAtClass(n_words, width),
        "TF": TransitionClass(n_words, width),
        "RDF": ReadDisturbClass(n_words, width, deceptive=False),
        "DRDF": ReadDisturbClass(n_words, width, deceptive=True),
    }
    if width > 1:
        for kind in ("CFst", "CFid", "CFin"):
            out[kind] = IntraWordCFClass(n_words, width, kind)
    return out


class TestClassKernelEquivalence:
    """Packed class passes == per-fault dispatch == reference."""

    def test_full_equality_small(self):
        for name in ("March C-", "MATS+"):
            twm = twm_transform(catalog.get(name), 4).twmarch
            ctx = _context(twm, 1 << 10, 4, seed=5)
            for cname, fc in _classes(1 << 10, 4).items():
                if cname not in ("SAF", "TF", "RDF", "DRDF"):
                    continue  # intra kernels covered at smaller n below
                packed = ctx.detect_class(fc)
                assert len(packed) == len(fc)
                per_fault = [ctx.detect(f) for f in fc]
                assert packed == per_fault, (name, cname)

    def test_intra_cf_kernels_small(self):
        twm = twm_transform(catalog.get("March C-"), 4).twmarch
        ctx = _context(twm, 16, 4, seed=3)
        for cname, fc in _classes(16, 4).items():
            packed = ctx.detect_class(fc)
            assert packed == [ctx.detect(f) for f in fc], cname

    def test_edge_widths(self):
        # Width 1 (no intra classes), non-power-of-two 3 and 5 (raw
        # march: TWM needs power-of-two widths), and > 64 (beyond any
        # machine-word assumption).
        base = catalog.get("March C-")
        for n, w in [(8, 1), (6, 3), (5, 5), (2, 65)]:
            test = twm_transform(base, w).twmarch if w & (w - 1) == 0 else base
            ctx = _context(test, n, w, seed=n * w)
            for cname, fc in _classes(n, w).items():
                packed = ctx.detect_class(fc)
                assert packed == [ctx.detect(f) for f in fc], (n, w, cname)

    def test_megaword_sampled(self):
        # 2^16 and 2^20 words: packed bitset vs strided per-fault
        # samples (full per-fault dispatch would take minutes).
        twm = twm_transform(catalog.get("March C-"), 8).twmarch
        for n in (1 << 16, 1 << 20):
            ctx = _context(twm, n, 8, seed=1)
            for cname, fc in _classes(n, 8).items():
                if cname not in ("SAF", "TF", "RDF", "DRDF"):
                    continue
                packed = ctx.detect_class(fc)
                assert len(packed) == len(fc)
                stride = max(1, len(fc) // 48)
                for i in range(0, len(fc), stride):
                    assert packed[i] == ctx.detect(fc[i]), (n, cname, i)

    def test_matches_reference_engine(self):
        twm = twm_transform(catalog.get("March U"), 4).twmarch
        n, w, seed = 5, 4, 13
        words = _words(n, w, seed)
        batch = get_engine("batch")
        reference = get_engine("reference")
        for cname, fc in _classes(n, w).items():
            packed = batch.detect_class_batch(twm, n, w, words, fc)
            assert isinstance(packed, PackedVerdicts)
            ref = reference.detect_batch(twm, n, w, words, list(fc))
            assert packed == ref, cname

    def test_ill_formed_baseline_falls_back(self):
        # An ill-formed march (reads before initializing) mismatches
        # fault free on random content, so the strided kernels must not
        # apply; the streaming per-fault path still answers exactly.
        from repro.core.notation import parse_march

        raw = parse_march("⇕(r0);⇑(w1,r1)", name="ill-formed")
        ctx = _context(raw, 6, 4, seed=2)
        assert ctx._baseline_plane() != 0
        for cname, fc in _classes(6, 4).items():
            packed = ctx.detect_class(fc)
            assert packed == [ctx.detect(f) for f in fc], cname

    def test_geometry_mismatch_streams(self):
        # A class narrower than the campaign streams per fault (except
        # SAF, whose kernel replicates at the class lane width).
        twm = twm_transform(catalog.get("March C-"), 8).twmarch
        ctx = _context(twm, 6, 8, seed=4)
        for fc in (TransitionClass(6, 4), StuckAtClass(6, 4)):
            packed = ctx.detect_class(fc)
            assert packed == [ctx.detect(f) for f in fc]

    def test_campaign_jobs_deterministic_streaming(self):
        twm = twm_transform(catalog.get("March C-"), 4)
        universe = standard_fault_universe(
            4, 4, max_inter_pairs=8, rng=random.Random(3)
        )
        flow = compare_flow(twm.twmarch, 4, 4, initial=None, seed=3)
        seq = run_campaign(flow, universe, engine="batch", jobs=1)
        par = run_campaign(flow, universe, engine="batch", jobs=2)
        assert seq.coverage_vector() == par.coverage_vector()
        assert seq.undetected == par.undetected


class TestSymbolicFamilyTables:
    def test_family_tables_match_scalar_replay(self):
        base = catalog.get("March C-")
        for w in (2, 4):
            test = twm_transform(base, w).twmarch
            program = compile_symbolic(test)
            packed = _SymbolicCampaign(program, True)
            scalar = _SymbolicCampaign(program, True)
            universe = standard_fault_universe(
                3,
                w,
                max_inter_pairs=6,
                rng=random.Random(2),
                include_rdf=True,
            )
            for cname, faults in universe.items():
                for fault in faults:
                    assert (
                        packed.verdict(fault).table
                        == scalar._cell_table(fault)
                    ), (w, cname, fault)

    def test_family_fills_siblings(self):
        test = twm_transform(catalog.get("March C-"), 4).twmarch
        campaign = _SymbolicCampaign(compile_symbolic(test), True)
        fault = StuckAtClass(2, 4)[0]
        campaign.verdict(fault)
        # One packed replay priced both stuck values of the shape.
        sig = campaign._sig_id(fault.cell.bit)
        assert ("SAF", 0, sig) in campaign._tables
        assert ("SAF", 1, sig) in campaign._tables


class TestCliValidation:
    def test_rejects_non_positive_geometry(self, capsys):
        for argv in (
            ["coverage", "March C-", "--words", "0"],
            ["coverage", "March C-", "--width", "-3"],
            ["coverage", "March C-", "--jobs", "0"],
            ["coverage", "March C-", "--max-inter-pairs", "0"],
            ["transform", "March C-", "--width", "0"],
            ["table2", "--words", "-1"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2, argv
            assert "positive integer" in capsys.readouterr().err

    def test_rejects_non_integer(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["coverage", "March C-", "--words", "many"])
        assert excinfo.value.code == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_classes_filter(self, capsys):
        assert (
            main(
                [
                    "coverage",
                    "March C-",
                    "--width",
                    "4",
                    "--words",
                    "4",
                    "--classes",
                    "SAF,TF",
                    "--no-extension-classes",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "SAF" in out and "TF" in out
        assert "CFst-intra" not in out

    def test_classes_filter_unknown(self, capsys):
        assert (
            main(["coverage", "March C-", "--classes", "SAF,NOPE"]) == 2
        )
        err = capsys.readouterr().err
        assert "NOPE" in err and "SAF" in err
