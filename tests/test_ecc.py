"""Tests for the parity/Hamming ECC substrate."""

import random

import pytest

from repro.ecc.codec import CodedMemory
from repro.ecc.hamming import HammingSEC, HammingSECDED, check_bits_for
from repro.ecc.parity import ParityCodec
from repro.memory.model import Memory


class TestParity:
    @pytest.mark.parametrize("even", [True, False])
    def test_round_trip(self, even):
        codec = ParityCodec(4, even=even)
        for data in range(16):
            result = codec.decode(codec.encode(data))
            assert result.data == data
            assert not result.error_detected

    def test_detects_single_bit_errors(self):
        codec = ParityCodec(4)
        for data in range(16):
            cw = codec.encode(data)
            for bit in range(codec.code_bits):
                assert codec.decode(cw ^ (1 << bit)).error_detected

    def test_misses_double_bit_errors(self):
        codec = ParityCodec(4)
        cw = codec.encode(0b1010)
        assert not codec.decode(cw ^ 0b0011).error_detected

    def test_widths(self):
        codec = ParityCodec(8)
        assert codec.data_bits == 8
        assert codec.code_bits == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            ParityCodec(0)


class TestCheckBits:
    @pytest.mark.parametrize(
        "data,check", [(1, 2), (4, 3), (8, 4), (11, 4), (16, 5), (32, 6), (64, 7)]
    )
    def test_known_values(self, data, check):
        assert check_bits_for(data) == check

    def test_validation(self):
        with pytest.raises(ValueError):
            check_bits_for(0)


class TestHammingSEC:
    @pytest.mark.parametrize("data_bits", [4, 8, 11, 16])
    def test_round_trip(self, data_bits):
        codec = HammingSEC(data_bits)
        rng = random.Random(0)
        for _ in range(64):
            data = rng.randrange(1 << data_bits)
            result = codec.decode(codec.encode(data))
            assert result.data == data
            assert not result.error_detected

    @pytest.mark.parametrize("data_bits", [4, 8, 16])
    def test_corrects_every_single_bit_error(self, data_bits):
        codec = HammingSEC(data_bits)
        rng = random.Random(1)
        for _ in range(16):
            data = rng.randrange(1 << data_bits)
            cw = codec.encode(data)
            for bit in range(codec.code_bits):
                result = codec.decode(cw ^ (1 << bit))
                assert result.error_detected
                assert result.corrected
                assert result.data == data

    def test_code_dimensions(self):
        codec = HammingSEC(8)
        assert codec.code_bits == 12
        assert codec.check_bits == 4


class TestHammingSECDED:
    @pytest.mark.parametrize("data_bits", [4, 8, 16])
    def test_round_trip(self, data_bits):
        codec = HammingSECDED(data_bits)
        rng = random.Random(2)
        for _ in range(32):
            data = rng.randrange(1 << data_bits)
            result = codec.decode(codec.encode(data))
            assert result.data == data and not result.error_detected

    @pytest.mark.parametrize("data_bits", [4, 8])
    def test_corrects_single_errors(self, data_bits):
        codec = HammingSECDED(data_bits)
        data = 0b1011 & ((1 << data_bits) - 1)
        cw = codec.encode(data)
        for bit in range(codec.code_bits):
            result = codec.decode(cw ^ (1 << bit))
            assert result.error_detected
            assert result.corrected
            assert result.data == data

    @pytest.mark.parametrize("data_bits", [4, 8])
    def test_detects_double_errors_without_miscorrection(self, data_bits):
        codec = HammingSECDED(data_bits)
        rng = random.Random(3)
        for _ in range(8):
            data = rng.randrange(1 << data_bits)
            cw = codec.encode(data)
            for b1 in range(codec.code_bits):
                for b2 in range(b1 + 1, codec.code_bits):
                    result = codec.decode(cw ^ (1 << b1) ^ (1 << b2))
                    assert result.error_detected
                    assert result.uncorrectable
                    assert not result.corrected

    def test_dimensions(self):
        codec = HammingSECDED(8)
        assert codec.code_bits == 13
        assert codec.check_bits == 5


class TestCodedMemory:
    def make(self, data_bits=8, n_words=4):
        codec = HammingSECDED(data_bits)
        backing = Memory(n_words, codec.code_bits)
        coded = CodedMemory(backing, codec)
        coded.load_data([0] * n_words)
        return coded, backing

    def test_write_read(self):
        coded, _ = self.make()
        coded.write(1, 0xAB)
        assert coded.read(1) == 0xAB
        assert coded.errors_detected == 0

    def test_dimension_mismatch_rejected(self):
        codec = HammingSECDED(8)
        with pytest.raises(ValueError):
            CodedMemory(Memory(4, 8), codec)

    def test_detects_physical_corruption(self):
        coded, backing = self.make()
        coded.write(0, 0x55)
        stored = backing.snapshot()[0]
        backing.load([stored ^ 1] + backing.snapshot()[1:])
        assert coded.read(0) == 0x55  # corrected
        assert coded.errors_detected == 1
        assert coded.errors_corrected == 1

    def test_uncorrectable_counted(self):
        coded, backing = self.make()
        coded.write(0, 0x55)
        words = backing.snapshot()
        words[0] ^= 0b11  # double error
        backing.load(words)
        coded.read(0)
        assert coded.uncorrectable == 1

    def test_snapshot_decodes(self):
        coded, _ = self.make()
        coded.write(2, 0x3C)
        assert coded.snapshot()[2] == 0x3C

    def test_reset_counters(self):
        coded, backing = self.make()
        coded.write(0, 1)
        words = backing.snapshot()
        words[0] ^= 1
        backing.load(words)
        coded.read(0)
        coded.reset_counters()
        assert coded.errors_detected == 0

    def test_properties(self):
        coded, _ = self.make(data_bits=8, n_words=4)
        assert coded.n_words == 4
        assert coded.width == 8
