"""Tests for fault diagnosis from read logs."""

import random

import pytest

from repro.analysis.diagnosis import analyse_records, diagnose_memory
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.faults import (
    AddressDecoderFault,
    Cell,
    InversionCouplingFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from repro.memory.injection import FaultyMemory
from repro.memory.model import Memory

N_WORDS, WIDTH = 8, 8


def diagnose(fault, name="March C-", seed=1):
    result = twm_transform(catalog.get(name), WIDTH)
    memory = FaultyMemory(N_WORDS, WIDTH, [fault])
    memory.randomize(random.Random(seed))
    return diagnose_memory(result.twmarch, memory)


class TestCleanMemory:
    def test_no_fault_no_suspects(self):
        result = twm_transform(catalog.get("March C-"), WIDTH)
        memory = Memory(N_WORDS, WIDTH)
        memory.randomize(random.Random(0))
        diagnosis = diagnose_memory(result.twmarch, memory)
        assert not diagnosis.detected
        assert diagnosis.classification == "no-fault"
        assert "no fault" in diagnosis.render()


class TestStuckAtLocalization:
    @pytest.mark.parametrize("value", [0, 1])
    def test_locates_the_cell(self, value):
        fault = StuckAtFault(Cell(5, 3), value)
        diagnosis = diagnose(fault)
        assert diagnosis.suspect_cells() == {(5, 3)}
        assert diagnosis.failing_addresses == [5]

    def test_classifies_polarity(self):
        assert diagnose(StuckAtFault(Cell(2, 6), 0)).classification == "stuck-at-0"
        assert diagnose(StuckAtFault(Cell(2, 6), 1)).classification == "stuck-at-1"

    def test_render_mentions_cell(self):
        text = diagnose(StuckAtFault(Cell(1, 0), 1)).render()
        assert "(1,0)" in text


class TestTransitionLocalization:
    @pytest.mark.parametrize("rising", [True, False])
    def test_locates_the_cell(self, rising):
        fault = TransitionFault(Cell(4, 2), rising=rising)
        diagnosis = diagnose(fault)
        assert diagnosis.suspect_cells() == {(4, 2)}

    def test_distinguished_from_stuck_when_content_differs(self):
        # A rising-TF cell that *starts* at 1 (power-up content) is seen
        # holding 1 early on, which separates it from SAF0.
        result = twm_transform(catalog.get("March C-"), WIDTH)
        memory = FaultyMemory(
            N_WORDS, WIDTH, [TransitionFault(Cell(4, 2), rising=True)]
        )
        memory.fill(0xFF)
        diagnosis = diagnose_memory(result.twmarch, memory)
        assert diagnosis.suspect_cells() == {(4, 2)}
        assert diagnosis.classification == "transition-or-state"

    def test_indistinguishable_when_content_matches(self):
        # With the cell starting at 0, TF-up behaves exactly like SAF0 —
        # the classic ambiguity; the classifier reports stuck-at-0.
        result = twm_transform(catalog.get("March C-"), WIDTH)
        memory = FaultyMemory(
            N_WORDS, WIDTH, [TransitionFault(Cell(4, 2), rising=True)]
        )
        memory.fill(0x00)
        diagnosis = diagnose_memory(result.twmarch, memory)
        assert diagnosis.classification == "stuck-at-0"


class TestCouplingLocalization:
    def test_victim_is_suspect(self):
        fault = InversionCouplingFault(Cell(2, 1), Cell(6, 1), rising=True)
        diagnosis = diagnose(fault)
        assert (6, 1) in diagnosis.suspect_cells()

    def test_inter_word_same_bit_classification(self):
        fault = StateCouplingFault(Cell(2, 1), Cell(6, 1), 1, 0)
        diagnosis = diagnose(fault)
        if len(diagnosis.failing_addresses) > 1:
            assert diagnosis.classification == "inter-word-coupling-or-column"
        else:
            assert diagnosis.detected


class TestAddressFaultSmear:
    def test_af_none_flags_whole_word(self):
        diagnosis = diagnose(AddressDecoderFault(3, "none"))
        assert 3 in diagnosis.failing_addresses
        word3 = [c for c in diagnosis.suspect_cells() if c[0] == 3]
        assert len(word3) >= WIDTH // 2

    def test_af_multi_flags_multiple_addresses(self):
        diagnosis = diagnose(AddressDecoderFault(1, "multi", 6))
        assert len(diagnosis.failing_addresses) >= 2


class TestAnalyseRecords:
    def test_empty_records(self):
        diagnosis = analyse_records([], 8)
        assert not diagnosis.detected

    def test_manual_records(self):
        from repro.bist.executor import ReadRecord

        records = [
            ReadRecord(0, 0, 2, raw=0b0001, expected=0b0000, mask_value=0),
            ReadRecord(1, 0, 2, raw=0b0001, expected=0b0000, mask_value=0),
        ]
        diagnosis = analyse_records(records, 4)
        assert diagnosis.suspect_cells() == {(2, 0)}
        assert diagnosis.classification == "stuck-at-1"

    def test_suspects_sorted_by_error_count(self):
        from repro.bist.executor import ReadRecord

        records = [
            ReadRecord(0, 0, 1, raw=1, expected=0, mask_value=0),
            ReadRecord(1, 0, 2, raw=1, expected=0, mask_value=0),
            ReadRecord(2, 0, 2, raw=1, expected=0, mask_value=0),
        ]
        diagnosis = analyse_records(records, 4)
        assert diagnosis.suspects[0].addr == 2
