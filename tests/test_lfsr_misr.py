"""Tests for the LFSR/MISR signature datapath."""

import pytest

from repro.bist.lfsr import Lfsr, parity, tap_mask
from repro.bist.misr import Misr, signature_of


class TestParity:
    def test_values(self):
        assert parity(0) == 0
        assert parity(1) == 1
        assert parity(0b1010) == 0
        assert parity(0b1110) == 1


class TestTapMask:
    def test_width1(self):
        assert tap_mask(1) == 1

    def test_width8(self):
        # Taps (8, 6, 5, 4) -> bits 7, 5, 4, 3.
        assert tap_mask(8) == (1 << 7) | (1 << 5) | (1 << 4) | (1 << 3)

    def test_unknown_width(self):
        with pytest.raises(ValueError, match="tap set"):
            tap_mask(37)


class TestLfsr:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8, 10])
    def test_maximal_period(self, width):
        lfsr = Lfsr(width, seed=1)
        assert lfsr.period() == (1 << width) - 1

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(8, seed=0)

    def test_seed_masked_then_checked(self):
        with pytest.raises(ValueError):
            Lfsr(4, seed=0x10)  # masks to zero

    def test_run_returns_states(self):
        lfsr = Lfsr(4, seed=1)
        states = lfsr.run(5)
        assert len(states) == 5
        assert all(0 < s < 16 for s in states)

    def test_deterministic(self):
        assert Lfsr(8, seed=3).run(20) == Lfsr(8, seed=3).run(20)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Lfsr(0)


class TestMisr:
    def test_deterministic(self):
        assert signature_of([1, 2, 3], 16) == signature_of([1, 2, 3], 16)

    def test_order_sensitive(self):
        assert signature_of([1, 2], 16) != signature_of([2, 1], 16)

    def test_value_sensitive(self):
        assert signature_of([0, 0, 0], 16) != signature_of([0, 1, 0], 16)

    def test_single_bit_flip_changes_signature(self):
        base = [0xAAAA, 0x5555, 0x1234]
        for i in range(len(base)):
            for bit in range(4):
                mutated = list(base)
                mutated[i] ^= 1 << bit
                assert signature_of(mutated, 16) != signature_of(base, 16)

    def test_fold_wide_input(self):
        misr = Misr(8)
        assert misr.fold(0x1FF) == (0xFF ^ 0x01)
        assert misr.fold(0xAB) == 0xAB

    def test_absorb_counts(self):
        misr = Misr(8)
        misr.absorb_all([1, 2, 3])
        assert misr.absorbed == 3

    def test_reset(self):
        misr = Misr(8, seed=5)
        misr.absorb(0xFF)
        misr.reset()
        assert misr.signature == 5
        assert misr.absorbed == 0

    def test_spawn_matches_configuration(self):
        misr = Misr(8, seed=5)
        clone = misr.spawn()
        misr.absorb(1)
        clone.absorb(1)
        assert misr.signature == clone.signature

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Misr(0)

    def test_empty_signature_is_seed(self):
        assert Misr(16, seed=0xBEEF).signature == 0xBEEF

    def test_wide_words_accumulate(self):
        # 32-bit reads into a 16-bit register still distinguish streams.
        a = signature_of([0xDEADBEEF, 0x12345678], 16)
        b = signature_of([0xDEADBEEF, 0x12345679], 16)
        assert a != b

    def test_shift_distinguishes_xor_equal_streams(self):
        # Streams with equal XOR-sum but different order/content.
        a = signature_of([0b01, 0b10], 4)
        b = signature_of([0b11, 0b00], 4)
        assert a != b
