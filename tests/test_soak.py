"""Tests for the soak runtime: arrivals, streaming workload, the
degradation-aware scheduler, and the supervised campaign layer."""

import json
import random

import pytest

from repro.analysis.soak import (
    latency_stats,
    render_soak_campaign,
    render_soak_report,
)
from repro.bist.scheduler import SessionStepper
from repro.cli import main as cli_main
from repro.core.twm import twm_transform
from repro.engine import FaultPlan, RetryPolicy
from repro.library import catalog
from repro.memory.faults import Cell, StuckAtFault
from repro.memory.injection import FaultyMemory
from repro.soak import (
    ArrivalSpec,
    FaultTimeline,
    LfsrWorkload,
    SoakScenario,
    SoakSchedule,
    run_scenario,
    run_soak_campaign,
    scenario_matrix,
)
from repro.soak.arrivals import FaultEpisode
from repro.soak.campaign import matrix_fingerprint
from repro.soak.scheduler import SoakReport


def timeline_key(timeline):
    return [
        (e.index, e.flavor, e.start, e.end, e.fault.describe())
        for e in timeline
    ]


class TestArrivals:
    def test_timeline_is_pure_in_spec_and_seed(self):
        spec = ArrivalSpec(rate=4.0)
        a = FaultTimeline.generate(spec, 8, 8, 50_000, seed=5)
        b = FaultTimeline.generate(spec, 8, 8, 50_000, seed=5)
        assert len(a) > 0
        assert timeline_key(a) == timeline_key(b)

    def test_different_seeds_differ(self):
        spec = ArrivalSpec(rate=4.0)
        a = FaultTimeline.generate(spec, 8, 8, 50_000, seed=5)
        b = FaultTimeline.generate(spec, 8, 8, 50_000, seed=6)
        assert timeline_key(a) != timeline_key(b)

    def test_rate_scales_arrivals(self):
        lo = FaultTimeline.generate(
            ArrivalSpec(rate=0.5), 8, 8, 100_000, seed=1
        )
        hi = FaultTimeline.generate(
            ArrivalSpec(rate=8.0), 8, 8, 100_000, seed=1
        )
        assert len(hi) > len(lo)

    def test_burst_process_supported(self):
        spec = ArrivalSpec(rate=4.0, process="burst")
        timeline = FaultTimeline.generate(spec, 8, 8, 100_000, seed=2)
        assert len(timeline) > 0
        starts = [e.start for e in timeline]
        assert starts == sorted(starts)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(rate=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(process="weibull")
        with pytest.raises(ValueError):
            ArrivalSpec(mix=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            FaultTimeline.generate(
                ArrivalSpec(classes=("bogus",)), 8, 8, 1000, seed=0
            )

    def test_spec_round_trips_through_json(self):
        spec = ArrivalSpec(rate=2.5, process="burst", classes=("SAF",))
        clone = ArrivalSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert clone == spec

    def test_intermittent_duty_cycle_windows(self):
        fault = StuckAtFault(Cell(0, 0), 1)
        episode = FaultEpisode(
            0, "intermittent", fault, start=100, end=1000,
            duty_on=50, duty_off=150,
        )
        assert not episode.active_at(99)
        assert episode.active_at(100)
        assert episode.active_at(149)
        assert not episode.active_at(150)  # quiet part of the duty cycle
        assert episode.active_at(300)  # next period
        assert not episode.active_at(1000)  # lifetime over
        # overlaps() must see through a quiet window into the next burst.
        assert episode.overlaps(150, 320)
        assert not episode.overlaps(150, 299)
        assert not episode.overlaps(0, 99)

    def test_transient_toggles_in_and_out(self):
        fault = StuckAtFault(Cell(0, 0), 1)
        episode = FaultEpisode(0, "transient", fault, start=10, end=40)
        assert episode.toggles(100) == [(10, True), (40, False)]
        assert episode.toggles(30) == [(10, True)]


class TestLfsrWorkload:
    def events(self, workload, cycles):
        return [workload(cycle, None) for cycle in range(cycles)]

    def test_stream_is_pure_in_seed(self):
        a = LfsrWorkload(8, 8, seed=7)
        b = LfsrWorkload(8, 8, seed=7)
        assert self.events(a, 2000) == self.events(b, 2000)

    def test_stream_mix_follows_thresholds(self):
        workload = LfsrWorkload(8, 8, idle_permille=700, write_permille=40,
                                seed=1)
        events = self.events(workload, 30_000)
        idle = sum(1 for e in events if e is None)
        busy = [e for e in events if e is not None]
        writes = sum(1 for e in busy if e.kind == "w")
        assert 0.6 < idle / len(events) < 0.8
        assert 0.01 < writes / len(busy) < 0.08
        assert all(0 <= e.addr < 8 for e in busy)

    def test_degenerate_thresholds(self):
        always_idle = LfsrWorkload(8, 8, idle_permille=1000, seed=3)
        assert self.events(always_idle, 500) == [None] * 500
        all_writes = LfsrWorkload(
            8, 8, idle_permille=0, write_permille=1000, seed=3
        )
        assert all(e.kind == "w" for e in self.events(all_writes, 500))

    def test_state_restore_resumes_bit_identically(self):
        workload = LfsrWorkload(8, 8, seed=11)
        self.events(workload, 1000)
        mark = workload.state
        tail = self.events(workload, 1000)
        resumed = LfsrWorkload(8, 8, seed=11)
        resumed.restore(mark)
        assert self.events(resumed, 1000) == tail

    def test_spawn_checker_is_independent(self):
        workload = LfsrWorkload(8, 8, seed=11)
        checker = workload.spawn_checker()
        state = workload.state
        checker.step()
        assert workload.state == state  # generator unperturbed

    def test_validation(self):
        with pytest.raises(ValueError):
            LfsrWorkload(8, 8, idle_permille=1001)
        with pytest.raises(ValueError):
            LfsrWorkload(8, 8, write_permille=-1)


class TestTimeVaryingInjection:
    def test_remove_withdraws_one_injection(self):
        fault = StuckAtFault(Cell(2, 0), 1)
        memory = FaultyMemory(4, 8)
        memory.fill(0)
        memory.inject(fault)
        assert memory.read(2) & 1 == 1
        memory.remove(fault)
        # The stored content keeps what the fault last forced.
        assert memory.read(2) & 1 == 1
        memory.write(2, 0)
        assert memory.read(2) == 0

    def test_remove_absent_fault_fails_loudly(self):
        memory = FaultyMemory(4, 8)
        with pytest.raises(ValueError, match="fault not injected"):
            memory.remove(StuckAtFault(Cell(0, 0), 1))


class TestStreamingChecker:
    def test_stream_checker_is_alias_free_ground_truth(self):
        result = twm_transform(catalog.get("March C-"), 8)
        aliased = 0
        for addr in range(8):
            for bit in range(8):
                memory = FaultyMemory(
                    8, 8, [StuckAtFault(Cell(addr, bit), 1)]
                )
                memory.randomize(random.Random(addr * 8 + bit))
                stepper = SessionStepper(
                    memory, result.twmarch, result.prediction, 1,
                    track_stream=True,
                )
                while not stepper.finished:
                    stepper.step(64)
                # The elementwise compare never misses a SAF...
                assert stepper.stream_detected
                if not stepper.detected:
                    aliased += 1
        # ...but a 1-bit MISR pair aliases some of them away.
        assert aliased > 0

    def test_fault_free_session_stays_silent(self):
        result = twm_transform(catalog.get("March C-"), 8)
        memory = FaultyMemory(8, 8)
        memory.randomize(random.Random(0))
        stepper = SessionStepper(
            memory, result.twmarch, result.prediction, 16, track_stream=True
        )
        while not stepper.finished:
            stepper.step(64)
        assert not stepper.detected
        assert not stepper.stream_detected


def small_scenario(**overrides):
    defaults = dict(
        name="unit",
        n_words=8,
        width=8,
        cycles=12_000,
        arrival=ArrivalSpec(rate=4.0),
        schedule=SoakSchedule(period=1000),
        seed=1,
    )
    defaults.update(overrides)
    return SoakScenario(**defaults)


class TestScenario:
    def test_run_scenario_is_pure(self):
        scenario = small_scenario()
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a == b
        assert a.arrivals > 0
        assert a.sessions_completed > 0

    def test_detection_latency_contract(self):
        report = run_scenario(small_scenario())
        assert report.arrivals == report.detections + report.missed
        for episode in report.episodes:
            if episode.detected_cycle is not None:
                assert episode.detected_cycle >= episode.start
                assert episode.attribution in ("suspects", "window")
        assert all(lat >= 0 for lat in report.detection_latencies)
        assert report.missed_transient_windows <= report.missed

    def test_report_round_trips_through_json(self):
        report = run_scenario(small_scenario())
        clone = SoakReport.from_dict(json.loads(json.dumps(report.as_dict())))
        assert clone == report

    def test_sub_seeds_are_role_disjoint(self):
        scenario = small_scenario()
        roles = ("content", "arrivals", "workload", "protocol")
        seeds = {scenario.sub_seed(role) for role in roles}
        assert len(seeds) == len(roles)

    def test_validation(self):
        with pytest.raises(ValueError):
            small_scenario(n_words=1)
        with pytest.raises(ValueError):
            small_scenario(cycles=0)

    def test_matrix_names_unique_and_sized(self):
        matrix = scenario_matrix(
            tests=("March C-", "MATS+"),
            geometries=((8, 8), (16, 8)),
            rates=(1.0, 4.0),
            mixes=("mixed", "permanent"),
            periods=(1000,),
        )
        assert len(matrix) == 2 * 2 * 2 * 2
        names = [s.name for s in matrix]
        assert len(set(names)) == len(names)

    def test_matrix_rejects_unknown_mix(self):
        with pytest.raises(ValueError, match="unknown mix"):
            scenario_matrix(mixes=("sometimes",))


class TestDegradationLadder:
    def test_hostile_budget_degrades_and_accounts_starvation(self):
        scenario = small_scenario(
            cycles=15_000,
            schedule=SoakSchedule(
                period=1000, budget=30, starvation_window=2,
                recovery_window=4,
            ),
        )
        report = run_scenario(scenario)
        # A 30-op budget cannot fit any full session: the ladder must
        # walk down and the bottom rung must count starved periods.
        assert report.degradations >= 1
        assert report.starved_periods >= 1
        assert report.final_step != "March C-"

    def test_generous_budget_stays_on_primary(self):
        report = run_scenario(small_scenario())
        assert report.degradations == 0
        assert report.starved_periods == 0
        assert report.final_step == "March C-"

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            SoakSchedule(period=0)
        with pytest.raises(ValueError):
            SoakSchedule(budget=0)
        with pytest.raises(ValueError):
            SoakSchedule(starvation_window=0)


def small_matrix(seed=1):
    return scenario_matrix(
        geometries=((8, 8),),
        rates=(2.0, 4.0),
        mixes=("mixed", "permanent"),
        cycles=8_000,
        seed=seed,
    )


class TestSoakCampaign:
    def test_sharded_run_is_bit_identical(self):
        matrix = small_matrix()
        base = run_soak_campaign(matrix, jobs=1)
        par = run_soak_campaign(matrix, jobs=2)
        assert base.completed and par.completed
        assert par.reports == base.reports

    def test_chaos_crash_and_corrupt_recover_bit_identically(self):
        matrix = small_matrix()
        base = run_soak_campaign(matrix, jobs=1)
        chaos = run_soak_campaign(
            matrix,
            jobs=2,
            chaos=FaultPlan.parse("crash:soak:0,corrupt:soak:1"),
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        assert chaos.reports == base.reports
        stats = chaos.fault_tolerance
        assert stats is not None
        assert stats.crashes >= 1
        assert stats.corrupt_chunks >= 1
        assert stats.degraded_chunks == 0

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        matrix = small_matrix()
        base = run_soak_campaign(matrix, jobs=1)
        bank = tmp_path / "bank.json"
        partial = run_soak_campaign(
            matrix, checkpoint=bank, batch_size=1, max_batches=1
        )
        assert not partial.completed
        assert partial.scenarios == 1
        resumed = run_soak_campaign(matrix, checkpoint=bank, batch_size=1)
        assert resumed.completed
        assert resumed.resumed_scenarios == 1
        assert resumed.reports == base.reports

    def test_checkpoint_rejects_foreign_matrix(self, tmp_path):
        bank = tmp_path / "bank.json"
        run_soak_campaign(small_matrix(seed=1), checkpoint=bank)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            run_soak_campaign(small_matrix(seed=2), checkpoint=bank)

    def test_duplicate_scenario_names_rejected(self):
        scenario = small_scenario()
        with pytest.raises(ValueError, match="unique"):
            run_soak_campaign([scenario, scenario])

    def test_fingerprint_tracks_matrix_content(self):
        assert matrix_fingerprint(small_matrix(seed=1)) != matrix_fingerprint(
            small_matrix(seed=2)
        )


class TestRendering:
    def test_latency_stats_nearest_rank(self):
        stats = latency_stats([30, 10, 20, 40])
        assert stats == {
            "count": 4, "min": 10, "p50": 20, "p90": 40, "max": 40,
            "mean": 25.0,
        }
        assert latency_stats([]) == {"count": 0}

    def test_render_report_lines(self):
        report = run_scenario(small_scenario())
        text = render_soak_report(report)
        assert "episodes:" in text
        assert "latency:" in text
        assert "schedule:" in text

    def test_render_campaign_aggregates(self):
        campaign = run_soak_campaign(small_matrix())
        text = render_soak_campaign(campaign)
        assert "Soak scenario matrix" in text
        assert "aggregate episodes:" in text


class TestSoakCli:
    def test_soak_subcommand_smoke(self, capsys):
        rc = cli_main(
            [
                "soak", "--geometries", "8x8", "--rates", "4",
                "--cycles", "6000", "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenario " in out
        assert "aggregate episodes:" in out
        assert "ran 1/1 scenario(s)" in out
