"""Property-based tests (hypothesis) for core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.bist.executor import run_march
from repro.bist.misr import Misr, signature_of
from repro.core.backgrounds import checker_backgrounds, covers_all_pairs
from repro.core.element import AddressOrder, MarchElement
from repro.core.march import MarchTest
from repro.core.notation import format_march, parse_march
from repro.core.ops import Mask, Op, checker, checkerboard
from repro.core.transparent import to_transparent
from repro.core.twm import twm_transform
from repro.core.validate import validate_solid, validate_transparent
from repro.ecc.hamming import HammingSEC, HammingSECDED
from repro.memory.faults import Cell, StuckAtFault
from repro.memory.injection import FaultyMemory
from repro.memory.model import Memory


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

orders = st.sampled_from(list(AddressOrder))
widths = st.sampled_from([1, 2, 4, 8, 16, 32])


@st.composite
def bit_march_tests(draw):
    """A random *valid* bit-oriented March test.

    Built by construction: a pure-write init element followed by
    elements whose reads always expect the tracked content value.
    """
    init_value = draw(st.integers(0, 1))
    elements = [
        MarchElement(
            draw(orders), (Op.w1() if init_value else Op.w0(),)
        )
    ]
    current = init_value
    for _ in range(draw(st.integers(1, 5))):
        ops = []
        for _ in range(draw(st.integers(1, 5))):
            if draw(st.booleans()):
                ops.append(Op.r1() if current else Op.r0())
            else:
                current = draw(st.integers(0, 1))
                ops.append(Op.w1() if current else Op.w0())
        elements.append(MarchElement(draw(orders), tuple(ops)))
    return MarchTest("random", tuple(elements))


# ---------------------------------------------------------------------------
# Background properties
# ---------------------------------------------------------------------------


@given(st.integers(1, 6), widths)
def test_checkerboard_matches_rule(k, width):
    value = checkerboard(k, width)
    for j in range(width):
        assert (value >> j) & 1 == (1 if (j >> (k - 1)) % 2 == 0 else 0)


@given(st.sampled_from([2, 4, 8, 16, 32, 64]))
def test_checker_plan_separates_pairs(width):
    assert covers_all_pairs(checker_backgrounds(width), width)


@given(st.lists(st.integers(1, 5), max_size=6), widths)
def test_mask_xor_is_involutive(ks, width):
    mask = Mask.ZERO
    for k in ks:
        mask ^= Mask.of(checker(k))
    twice = mask
    for k in ks:
        twice ^= Mask.of(checker(k))
        twice ^= Mask.of(checker(k))
    assert twice == mask
    # Resolution distributes over XOR.
    resolved = 0
    for k in ks:
        resolved ^= checkerboard(k, width)
    assert mask.resolve(width) == resolved


# ---------------------------------------------------------------------------
# Notation round trip
# ---------------------------------------------------------------------------


@given(bit_march_tests())
def test_notation_round_trip(test):
    assert parse_march(str(test)).same_structure(test)
    assert parse_march(format_march(test, ascii_only=True)).same_structure(test)


@given(bit_march_tests())
def test_generated_tests_are_valid(test):
    assert validate_solid(test).ok


# ---------------------------------------------------------------------------
# Transformation invariants
# ---------------------------------------------------------------------------


@given(bit_march_tests())
@settings(max_examples=60)
def test_transparent_transform_is_valid_and_restoring(test):
    result = to_transparent(test)
    assert validate_transparent(result.transparent).ok


@given(bit_march_tests(), st.sampled_from([1, 2, 4, 8, 16]), st.integers(0, 2**32))
@settings(max_examples=60)
def test_twmarch_transparency_invariant(test, width, seed):
    """The central invariant: TWMarch restores any initial content."""
    result = twm_transform(test, width)
    memory = Memory(5, width)
    memory.randomize(random.Random(seed))
    before = memory.snapshot()
    run = run_march(result.twmarch, memory)
    assert not run.detected
    assert memory.snapshot() == before


@given(bit_march_tests(), st.sampled_from([2, 4, 8]))
@settings(max_examples=40)
def test_twm_prediction_counts_reads(test, width):
    result = twm_transform(test, width)
    assert result.tcp == result.twmarch.n_reads
    assert all(op.is_read for op in result.prediction.all_ops)


@given(bit_march_tests(), st.sampled_from([2, 4, 8]), st.integers(0, 2**32))
@settings(max_examples=40)
def test_prediction_signature_matches_fault_free_run(test, width, seed):
    result = twm_transform(test, width)
    memory = Memory(4, width)
    memory.randomize(random.Random(seed))
    snapshot = memory.snapshot()

    predicted = Misr(16)
    run_march(
        result.prediction,
        memory,
        snapshot=snapshot,
        read_sink=lambda rec: predicted.absorb(rec.raw ^ rec.mask_value),
    )
    actual = Misr(16)
    run_march(
        result.twmarch,
        memory,
        snapshot=snapshot,
        read_sink=lambda rec: actual.absorb(rec.raw),
    )
    assert predicted.signature == actual.signature


@given(bit_march_tests(), st.sampled_from([2, 4]))
@settings(max_examples=30)
def test_prediction_leaves_memory_untouched(test, width):
    result = twm_transform(test, width)
    memory = Memory(4, width)
    memory.randomize(random.Random(0))
    before = memory.snapshot()
    run_march(result.prediction, memory)
    assert memory.snapshot() == before


# ---------------------------------------------------------------------------
# Memory & fault properties
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 255)), min_size=1, max_size=30
    )
)
def test_memory_matches_reference_model(ops):
    memory = Memory(4, 8)
    reference = [0, 0, 0, 0]
    for addr, value in ops:
        memory.write(addr, value)
        reference[addr] = value
    assert memory.snapshot() == reference


@given(
    st.integers(0, 3),
    st.integers(0, 7),
    st.integers(0, 1),
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 255)), max_size=20),
)
def test_stuck_cell_is_always_stuck(addr, bit, value, ops):
    memory = FaultyMemory(4, 8, [StuckAtFault(Cell(addr, bit), value)])
    for a, v in ops:
        memory.write(a, v)
        assert memory.get_bit(addr, bit) == value


# ---------------------------------------------------------------------------
# MISR / ECC properties
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(0, 2**16 - 1), max_size=40))
def test_misr_deterministic(stream):
    assert signature_of(stream, 16) == signature_of(stream, 16)


@given(st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=40), st.data())
def test_misr_single_flip_changes_signature(stream, data):
    index = data.draw(st.integers(0, len(stream) - 1))
    bit = data.draw(st.integers(0, 15))
    mutated = list(stream)
    mutated[index] ^= 1 << bit
    # A single-bit input flip always changes a linear signature
    # (the error polynomial is a non-zero monomial).
    assert signature_of(mutated, 16) != signature_of(stream, 16)


@given(st.sampled_from([4, 8, 16, 32]), st.data())
def test_hamming_sec_round_trip_and_correction(data_bits, data):
    codec = HammingSEC(data_bits)
    value = data.draw(st.integers(0, (1 << data_bits) - 1))
    cw = codec.encode(value)
    assert codec.decode(cw).data == value
    flip = data.draw(st.integers(0, codec.code_bits - 1))
    result = codec.decode(cw ^ (1 << flip))
    assert result.corrected and result.data == value


@given(st.sampled_from([4, 8, 16]), st.data())
def test_secded_double_error_detection(data_bits, data):
    codec = HammingSECDED(data_bits)
    value = data.draw(st.integers(0, (1 << data_bits) - 1))
    cw = codec.encode(value)
    b1 = data.draw(st.integers(0, codec.code_bits - 1))
    b2 = data.draw(
        st.integers(0, codec.code_bits - 1).filter(lambda b: b != b1)
    )
    result = codec.decode(cw ^ (1 << b1) ^ (1 << b2))
    assert result.error_detected and result.uncorrectable
