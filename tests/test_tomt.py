"""Tests for the TOMT (Scheme 2) baseline."""

import pytest

from repro.baselines.tomt import (
    TOMT_EXTRA_OPS,
    TOMT_OPS_PER_BIT,
    TomtBaseline,
    plain_memory_tomt,
    tomt_tcm,
    tomt_test,
)
from repro.core.validate import (
    check_transparency_by_execution,
    validate_transparent,
)
from repro.ecc.parity import ParityCodec
from repro.memory.faults import Cell, StuckAtFault, TransitionFault
from repro.memory.model import Memory


class TestTestStructure:
    @pytest.mark.parametrize("width", [1, 2, 4, 8, 32])
    def test_op_count_formula(self, width):
        assert tomt_test(width).op_count == tomt_tcm(width)
        assert tomt_tcm(width) == TOMT_OPS_PER_BIT * width + TOMT_EXTRA_OPS

    def test_headline_value(self):
        # 32-bit words: 9*32 + 2 = 290 ops per word.
        assert tomt_tcm(32) == 290

    def test_transparent_form(self):
        t = tomt_test(8)
        assert t.is_transparent_form
        assert validate_transparent(t).ok

    def test_transparency_by_execution(self):
        assert check_transparency_by_execution(tomt_test(8))

    def test_element_per_bit(self):
        t = tomt_test(4)
        assert len(t.elements) == 4 + 2  # lead + per-bit + tail

    def test_bit_element_exercises_both_transitions_twice(self):
        element = tomt_test(4).elements[1]
        writes = [op for op in element.ops if op.is_write]
        assert len(writes) == 4  # flip, restore, flip, restore

    def test_width_validation(self):
        with pytest.raises(ValueError):
            tomt_test(0)


class TestBaselineRunner:
    def test_fault_free_run(self):
        baseline = TomtBaseline(8)
        memory = baseline.make_memory(8, fill=0x5A)
        outcome = baseline.run(memory)
        assert not outcome.detected
        assert outcome.ops_executed == tomt_tcm(8) * 8

    def test_data_bit_fault_detected_by_code(self):
        baseline = TomtBaseline(8)
        # Bit 2 of the codeword is a data position for Hamming ordering,
        # but any stuck cell in the array must be caught.
        memory = baseline.make_memory(4, [StuckAtFault(Cell(1, 2), 1)], fill=0)
        outcome = baseline.run(memory)
        assert outcome.detected

    def test_check_bit_fault_detected(self):
        baseline = TomtBaseline(8)
        codec = baseline.codec
        check_position = codec.code_bits - 1  # overall parity bit
        memory = baseline.make_memory(
            4, [StuckAtFault(Cell(0, check_position), 1)], fill=0
        )
        outcome = baseline.run(memory)
        assert outcome.detected

    def test_transition_fault_detected(self):
        baseline = TomtBaseline(8)
        memory = baseline.make_memory(
            4, [TransitionFault(Cell(2, 0), rising=True)], fill=0
        )
        assert baseline.run(memory).detected

    def test_detection_channel_is_code(self):
        baseline = TomtBaseline(8)
        memory = baseline.make_memory(4, [StuckAtFault(Cell(1, 0), 1)], fill=0)
        outcome = baseline.run(memory)
        assert outcome.code_detected

    def test_parity_codec_variant(self):
        baseline = TomtBaseline(4, codec=ParityCodec(4))
        memory = baseline.make_memory(4, fill=0xA)
        assert not baseline.run(memory).detected

    def test_codec_width_mismatch(self):
        with pytest.raises(ValueError):
            TomtBaseline(8, codec=ParityCodec(4))

    def test_restores_content(self):
        baseline = TomtBaseline(8)
        memory = baseline.make_memory(4, fill=0x37)
        before = memory.snapshot()
        baseline.run(memory)
        assert memory.snapshot() == before


class TestPlainMemoryTomt:
    def test_fault_free(self):
        outcome = plain_memory_tomt(Memory(4, 8, fill=0x12))
        assert not outcome.detected
        assert outcome.code_errors == 0

    def test_detects_via_stream(self):
        from repro.memory.injection import FaultyMemory

        m = FaultyMemory(4, 8, [StuckAtFault(Cell(0, 3), 1)])
        outcome = plain_memory_tomt(m)
        assert outcome.detected
        assert outcome.stream_mismatches > 0
