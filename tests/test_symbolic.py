"""Tests for the symbolic content tracker (Table 1 + trace machinery)."""

import pytest

from repro.analysis.symbolic import (
    SymbolicContent,
    symbolic_rows,
    symbolic_trace,
    table1_rows,
)
from repro.core.notation import parse_march
from repro.core.ops import Mask, checker
from repro.core.twm import atmarch, twm_transform
from repro.library import catalog


class TestSymbolicRows:
    def test_row_count_full_atmarch(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail)
        assert len(rows) == tail.op_count == 16

    def test_first_three_elements_slice(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail, elements=slice(0, 3))
        assert len(rows) == 15
        assert {r.element_index for r in rows} == {0, 1, 2}

    def test_content_follows_writes(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail, elements=slice(0, 1))
        # r c, w c^D1, r, w c, r  ->  content: c, c^D1, c^D1, c, c.
        masks = [row.content_mask for row in rows]
        d1 = Mask.of(checker(1))
        assert masks == [Mask.ZERO, d1, d1, Mask.ZERO, Mask.ZERO]

    def test_content_bits_rendering(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail, elements=slice(0, 1))
        after_d1 = rows[1]
        bits = after_d1.content_bits(8)
        # D1 = 01010101: even bit positions complemented (MSB first).
        assert bits == ["a7", "~a6", "a5", "~a4", "a3", "~a2", "a1", "~a0"]

    def test_initial_row_is_plain_content(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail)
        assert rows[0].content_string(8) == "a7 a6 a5 a4 a3 a2 a1 a0"

    def test_start_mask_offsets_content(self):
        tail = atmarch(8, inverted=True)
        rows = symbolic_rows(tail, start_mask=Mask.ONES)
        assert rows[0].content_bits(8)[0] == "~a7"

    def test_rejects_solid_test(self):
        with pytest.raises(ValueError):
            symbolic_rows(catalog.get("March C-"))

    def test_custom_symbol(self):
        tail = atmarch(4, inverted=False)
        rows = symbolic_rows(tail)
        assert rows[0].content_string(4, symbol="x") == "x3 x2 x1 x0"


class TestSymbolicTrace:
    """The full-address-space generalization behind the symbolic engine."""

    def test_transparent_content_matches_rows(self):
        tail = atmarch(8, inverted=False)
        trace = symbolic_trace(tail)
        rows = symbolic_rows(tail)
        assert len(trace.steps) == len(rows)
        for step, row in zip(trace.steps, rows):
            assert step.content_after.relative
            assert step.content_after.mask == row.content_mask

    def test_solid_test_drops_c(self):
        trace = symbolic_trace(catalog.get("March C-"))
        # After the first absolute write, content is a bare background.
        first_write = next(s for s in trace.steps if not s.is_read)
        assert not first_write.content_after.relative
        assert trace.final.relative is False

    def test_initial_content_is_c(self):
        trace = symbolic_trace(atmarch(4, inverted=False))
        assert trace.steps[0].content_before == SymbolicContent(True, Mask.ZERO)
        assert trace.content_entering(0).mask.is_zero

    def test_element_boundaries(self):
        tail = atmarch(8, inverted=False)
        trace = symbolic_trace(tail)
        # Every ATMarch element restores the content to plain c.
        for element_index in range(len(tail.elements)):
            assert trace.content_leaving(element_index).mask.is_zero
        with pytest.raises(IndexError):
            trace.content_entering(99)

    def test_derived_writes_well_formed_equal_oracle(self):
        tail = atmarch(8, inverted=False)
        oracle = symbolic_trace(tail, derive_writes=False)
        derived = symbolic_trace(tail, derive_writes=True)
        for a, b in zip(oracle.steps, derived.steps):
            assert a.content_after == b.content_after

    def test_derived_writes_ill_formed_diverge(self):
        # rc^1 feeds the derived write, so the stored value picks up
        # the extra inversion the oracle datapath would not.
        ill = parse_march("⇕(rc^1,wc); ⇕(rc)", name="ill")
        oracle = symbolic_trace(ill, derive_writes=False)
        derived = symbolic_trace(ill, derive_writes=True)
        assert oracle.steps[1].content_after.mask.is_zero
        assert derived.steps[1].content_after.mask == Mask.ONES

    def test_underivable_raises(self):
        bad = parse_march("⇕(wc); ⇕(rc)", name="bad")
        with pytest.raises(ValueError, match="no preceding read"):
            symbolic_trace(bad, derive_writes=True)
        # The oracle view is still defined.
        assert symbolic_trace(bad, derive_writes=False).final.relative

    def test_read_mismatch_bits(self):
        well = atmarch(8, inverted=False)
        trace = symbolic_trace(well)
        assert not any(
            step.read_mismatch_bit(j, c)
            for step in trace.read_steps
            for j in range(8)
            for c in (0, 1)
        )
        ill = parse_march("⇕(rc^1,wc); ⇕(rc)", name="ill2")
        ill_trace = symbolic_trace(ill)
        assert all(
            ill_trace.read_steps[0].read_mismatch_bit(j, c)
            for j in range(8)
            for c in (0, 1)
        )

    def test_content_bit_at_is_width_generic(self):
        content = SymbolicContent(True, Mask.of(checker(1)))
        for width in (4, 8, 32):
            resolved = content.resolve(width, initial=0)
            for j in range(width):
                assert (resolved >> j) & 1 == content.bit_at(j, 0)


class TestTable1:
    def test_row_shape(self):
        result = twm_transform(catalog.get("March U"), 8)
        rows = table1_rows(result.atmarch)
        assert len(rows) == 15
        op, content = rows[0]
        assert op == "rc"
        assert content == "a7 a6 a5 a4 a3 a2 a1 a0"

    def test_paper_patterns_appear(self):
        result = twm_transform(catalog.get("March U"), 8)
        rows = table1_rows(result.atmarch)
        ops = [op for op, _ in rows]
        assert "w(c^D1)" in ops
        assert "w(c^D2)" in ops
        assert "w(c^D3)" in ops

    def test_each_element_restores_content(self):
        result = twm_transform(catalog.get("March U"), 8)
        rows = table1_rows(result.atmarch)
        # Rows 5, 10, 15 are the element-final reads: content is back to c.
        for idx in (4, 9, 14):
            assert rows[idx][1] == "a7 a6 a5 a4 a3 a2 a1 a0"
