"""Tests for the symbolic word tracker (Table 1 machinery)."""

import pytest

from repro.analysis.symbolic import symbolic_rows, table1_rows
from repro.core.ops import Mask, checker
from repro.core.twm import atmarch, twm_transform
from repro.library import catalog


class TestSymbolicRows:
    def test_row_count_full_atmarch(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail)
        assert len(rows) == tail.op_count == 16

    def test_first_three_elements_slice(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail, elements=slice(0, 3))
        assert len(rows) == 15
        assert {r.element_index for r in rows} == {0, 1, 2}

    def test_content_follows_writes(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail, elements=slice(0, 1))
        # r c, w c^D1, r, w c, r  ->  content: c, c^D1, c^D1, c, c.
        masks = [row.content_mask for row in rows]
        d1 = Mask.of(checker(1))
        assert masks == [Mask.ZERO, d1, d1, Mask.ZERO, Mask.ZERO]

    def test_content_bits_rendering(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail, elements=slice(0, 1))
        after_d1 = rows[1]
        bits = after_d1.content_bits(8)
        # D1 = 01010101: even bit positions complemented (MSB first).
        assert bits == ["a7", "~a6", "a5", "~a4", "a3", "~a2", "a1", "~a0"]

    def test_initial_row_is_plain_content(self):
        tail = atmarch(8, inverted=False)
        rows = symbolic_rows(tail)
        assert rows[0].content_string(8) == "a7 a6 a5 a4 a3 a2 a1 a0"

    def test_start_mask_offsets_content(self):
        tail = atmarch(8, inverted=True)
        rows = symbolic_rows(tail, start_mask=Mask.ONES)
        assert rows[0].content_bits(8)[0] == "~a7"

    def test_rejects_solid_test(self):
        with pytest.raises(ValueError):
            symbolic_rows(catalog.get("March C-"))

    def test_custom_symbol(self):
        tail = atmarch(4, inverted=False)
        rows = symbolic_rows(tail)
        assert rows[0].content_string(4, symbol="x") == "x3 x2 x1 x0"


class TestTable1:
    def test_row_shape(self):
        result = twm_transform(catalog.get("March U"), 8)
        rows = table1_rows(result.atmarch)
        assert len(rows) == 15
        op, content = rows[0]
        assert op == "rc"
        assert content == "a7 a6 a5 a4 a3 a2 a1 a0"

    def test_paper_patterns_appear(self):
        result = twm_transform(catalog.get("March U"), 8)
        rows = table1_rows(result.atmarch)
        ops = [op for op, _ in rows]
        assert "w(c^D1)" in ops
        assert "w(c^D2)" in ops
        assert "w(c^D3)" in ops

    def test_each_element_restores_content(self):
        result = twm_transform(catalog.get("March U"), 8)
        rows = table1_rows(result.atmarch)
        # Rows 5, 10, 15 are the element-final reads: content is back to c.
        for idx in (4, 9, 14):
            assert rows[idx][1] == "a7 a6 a5 a4 a3 a2 a1 a0"
