"""Campaign-context runtime: cache correctness, keying, persistence.

The amortization contract of ``repro.engine.context`` /
``repro.engine.parallel``:

* verdicts are bit-identical whether a campaign context is built cold
  or replayed warm from the cache (a context is a pure precomputation);
* cache keys separate every input that can change a verdict — words,
  width, geometry, mode — and deliberately *share* the two-phase
  session state between the signature and aliasing oracles;
* persistent workers build each distinct context at most once per
  process, across chunks, classes, campaigns and modes, and
  ``jobs=1`` ≡ ``jobs=N`` stays bit-identical under all of it.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.coverage import (
    aliasing_flow,
    compare_flow,
    run_campaign,
    signature_flow,
)
from repro.core.twm import twm_transform
from repro.engine import (
    CampaignRunner,
    ContextCache,
    ContextStats,
    ExecutionError,
    get_engine,
    work_key,
)
from repro.library import catalog
from repro.memory.injection import standard_fault_universe

N_WORDS = 8
WIDTH = 8


@pytest.fixture(scope="module")
def twm():
    return twm_transform(catalog.get("March C-"), WIDTH)


@pytest.fixture(scope="module")
def universe():
    return standard_fault_universe(
        N_WORDS,
        WIDTH,
        max_inter_pairs=4,
        rng=random.Random(0),
        include_rdf=True,
        include_af=True,
    )


def _flows(twm, seed=0, misr_width=16):
    return {
        "compare": compare_flow(
            twm.twmarch, N_WORDS, WIDTH, initial=None, seed=seed
        ),
        "signature": signature_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH,
            misr_width=misr_width, initial=None, seed=seed,
        ),
        "aliasing": aliasing_flow(
            twm.twmarch, twm.prediction, N_WORDS, WIDTH,
            misr_width=misr_width, initial=None, seed=seed,
        ),
    }


class TestContextCache:
    def test_cold_vs_warm_identical_verdicts(self, twm, universe):
        engine = get_engine("batch")
        cache = ContextCache(engine)
        for name, flow in _flows(twm).items():
            work = flow.work_unit()
            faults = universe["CFst-intra"]
            cold = work.run(engine, faults)
            ctx = cache.get(work)
            warm = work.run(engine, faults, context=ctx.payload)
            again = work.run(
                engine, faults, context=cache.get(work).payload
            )
            assert cold == warm == again, name

    def test_hit_miss_build_counters(self, twm):
        cache = ContextCache(get_engine("batch"))
        work = _flows(twm)["signature"].work_unit()
        ctx = cache.get(work)
        assert ctx.payload is not None
        assert cache.get(work) is ctx
        stats = cache.stats
        assert (stats.builds, stats.hits, stats.misses) == (1, 1, 1)
        assert stats.build_seconds >= 0.0
        delta = cache.take_stats()
        assert (delta.builds, delta.hits, delta.misses) == (1, 1, 1)
        # The cursor advanced: a fresh delta is empty.
        empty = cache.take_stats()
        assert (empty.builds, empty.hits, empty.misses) == (0, 0, 0)

    def test_keying_separates_words_width_and_mode(self, twm):
        compare = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=3)
        other_words = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=5)
        wider = twm_transform(catalog.get("March C-"), 16)
        other_width = compare_flow(wider.twmarch, N_WORDS, 16, initial=3)
        signature = _flows(twm)["signature"]
        keys = {
            compare.work_unit().context_key(),
            other_words.work_unit().context_key(),
            other_width.work_unit().context_key(),
            signature.work_unit().context_key(),
        }
        assert len(keys) == 4

    def test_signature_and_aliasing_share_one_session_context(self, twm):
        flows = _flows(twm)
        sig = flows["signature"].work_unit()
        ali = flows["aliasing"].work_unit()
        # Same context (the session state is oracle-agnostic)...
        assert sig.context_key() == ali.context_key()
        # ...but distinct dispatch identities (different verdict types).
        assert work_key(sig) != work_key(ali)
        cache = ContextCache(get_engine("batch"))
        ctx = cache.get(sig)
        assert cache.get(ali) is ctx
        stats = cache.stats
        assert (stats.builds, stats.hits, stats.misses) == (1, 1, 1)

    def test_eviction_rebuilds_correctly(self, twm, universe):
        engine = get_engine("batch")
        cache = ContextCache(engine, max_contexts=1)
        a = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=3).work_unit()
        b = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=5).work_unit()
        faults = universe["SAF"]
        first = a.run(engine, faults, context=cache.get(a).payload)
        cache.get(b)  # evicts a
        assert len(cache) == 1
        rebuilt = a.run(engine, faults, context=cache.get(a).payload)
        assert first == rebuilt
        assert cache.stats.misses == 3  # a, b, a again

    def test_reference_engine_has_nothing_to_amortize(self, twm):
        cache = ContextCache(get_engine("reference"))
        ctx = cache.get(_flows(twm)["compare"].work_unit())
        assert ctx.payload is None
        assert cache.stats.builds == 0
        assert cache.stats.misses == 1

    def test_mismatched_context_is_rejected(self, twm, universe):
        engine = get_engine("batch")
        cache = ContextCache(engine)
        a = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=3).work_unit()
        b = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=5).work_unit()
        wrong = cache.get(a).payload
        with pytest.raises(ExecutionError, match="context"):
            b.run(engine, universe["SAF"], context=wrong)

    def test_context_for_other_test_is_rejected(self, twm, universe):
        engine = get_engine("batch")
        other = twm_transform(catalog.get("March U"), WIDTH)
        # Same width, geometry and words — only the march differs.
        mine = compare_flow(twm.twmarch, N_WORDS, WIDTH, initial=3)
        theirs = compare_flow(other.twmarch, N_WORDS, WIDTH, initial=3)
        wrong = ContextCache(engine).get(theirs.work_unit()).payload
        with pytest.raises(ExecutionError, match="context"):
            mine.work_unit().run(engine, universe["SAF"], context=wrong)

    def test_session_context_for_other_prediction_is_rejected(self, twm):
        engine = get_engine("batch")
        flows = _flows(twm)
        sig = flows["signature"].work_unit()
        ctx = ContextCache(engine).get(sig).payload
        with pytest.raises(ExecutionError, match="prediction|MISR"):
            engine.detect_signature_batch(
                sig.test,
                sig.test,  # a different (self-)prediction program
                sig.n_words,
                sig.width,
                list(sig.words),
                [],
                misr_width=sig.misr_width,
                misr_seed=sig.misr_seed,
                context=ctx,
            )

    def test_stats_merge_roundtrip(self):
        total = ContextStats()
        total.merge(ContextStats(1, 2, 3, 0.5))
        total.merge({"builds": 1, "hits": 1, "misses": 1,
                     "build_seconds": 0.25})
        assert (total.builds, total.hits, total.misses) == (2, 3, 4)
        assert total.build_seconds == 0.75
        assert ContextStats(**total.as_dict()).as_dict() == total.as_dict()
        assert "2 built" in total.render()


class TestPersistentWorkers:
    def test_mixed_mode_shared_runner_is_bit_identical(self, twm, universe):
        flows = _flows(twm)
        baseline = {
            mode: run_campaign(flow, universe, engine="batch", jobs=1)
            for mode, flow in flows.items()
        }
        with CampaignRunner("batch", 4, min_chunk=8) as runner:
            runner.bind(
                [flow.work_unit() for flow in flows.values()], universe
            )
            shared = {
                mode: run_campaign(flow, universe, runner=runner)
                for mode, flow in flows.items()
            }
        for mode in flows:
            assert (
                shared[mode].coverage_vector()
                == baseline[mode].coverage_vector()
            ), mode
            assert shared[mode].undetected == baseline[mode].undetected, mode
            assert (
                shared[mode].aliasing_vector()
                == baseline[mode].aliasing_vector()
            ), mode
        # The aliasing campaign reused the signature campaign's session
        # contexts: mostly hits, and at most one cold build per worker
        # the pool scheduler never handed a signature chunk (the
        # deterministic zero-build proof is the jobs=1 test below).
        assert shared["aliasing"].context_stats.builds <= 4
        assert shared["aliasing"].context_stats.hits > 0

    def test_warm_second_campaign_is_amortized(self, twm, universe):
        flow = _flows(twm)["compare"]
        with CampaignRunner("batch", 2, min_chunk=8) as runner:
            runner.bind(flow.work_unit(), universe)
            cold = run_campaign(flow, universe, runner=runner)
            warm = run_campaign(flow, universe, runner=runner)
        assert cold.coverage_vector() == warm.coverage_vector()
        assert cold.context_stats.builds >= 1
        # Per-worker amortization contract: at most one build per
        # worker process plus the inline cache, per campaign — and
        # across both campaigns combined, since the warm run may only
        # build in a worker the cold run's scheduler never used.
        assert cold.context_stats.builds <= 2 + 1
        assert (
            cold.context_stats.builds + warm.context_stats.builds <= 2 + 1
        )
        assert warm.context_stats.hits > 0

    def test_jobs1_shared_runner_keeps_cache_across_modes(
        self, twm, universe
    ):
        # The CLI's mixed-mode default (jobs=1): re-binding the same
        # works and universe must not wipe the inline context cache,
        # so the aliasing campaign reuses the signature session.
        flows = _flows(twm)
        with CampaignRunner("batch", 1) as runner:
            runner.bind(
                [flow.work_unit() for flow in flows.values()], universe
            )
            run_campaign(flows["signature"], universe, runner=runner)
            aliasing = run_campaign(flows["aliasing"], universe, runner=runner)
        assert aliasing.context_stats.builds == 0
        assert aliasing.context_stats.misses == 0
        assert aliasing.context_stats.hits == len(universe)

    def test_jobs1_report_carries_context_stats(self, twm, universe):
        report = run_campaign(
            _flows(twm)["signature"],
            universe,
            engine="batch",
            jobs=1,
        )
        stats = report.context_stats
        assert stats is not None
        # One context for the whole campaign, one hit per further class.
        assert stats.builds == 1
        assert stats.misses == 1
        assert stats.hits == len(universe) - 1
        assert "built" in report.render()

    def test_bare_flow_reports_no_context_stats(self, universe, twm):
        flow = _flows(twm)["compare"]
        report = run_campaign(
            lambda fault: flow(fault), {"SAF": universe["SAF"][:4]}
        )
        assert report.context_stats is None

    def test_old_signature_custom_engine_still_runs(self, twm, universe):
        # A custom engine written before the context parameter existed
        # (overriding the documented pre-context signatures) must keep
        # working: context= only travels when a payload exists, and
        # the base build hooks return None.
        from repro.engine import Engine

        class Legacy(Engine):
            name = "legacy-test-engine"

            def detect_batch(
                self, test, n_words, width, words, faults, *,
                derive_writes=True,
            ):
                return get_engine("reference").detect_batch(
                    test, n_words, width, words, faults,
                    derive_writes=derive_writes,
                )

        flow = _flows(twm)["compare"]
        small = {"SAF": universe["SAF"]}
        report = run_campaign(flow, small, engine=Legacy())
        baseline = run_campaign(flow, small, engine="reference")
        assert report.coverage_vector() == baseline.coverage_vector()
        assert report.context_stats.builds == 0  # nothing to amortize

    def test_shared_runner_engine_mismatch_raises(self, twm, universe):
        flow = _flows(twm)["compare"]
        with CampaignRunner("batch", 1) as runner:
            with pytest.raises(ValueError, match="engine"):
                run_campaign(
                    flow, universe, engine="reference", runner=runner
                )

    def test_shared_runner_without_engine_uses_runners(self, twm, universe):
        flow = _flows(twm)["compare"]
        with CampaignRunner("batch", 1) as runner:
            report = run_campaign(flow, universe, runner=runner)
        assert report.engine == "batch"

    def test_rebinding_different_universe_stays_correct(self, twm, universe):
        flow = _flows(twm)["compare"]
        small = {"SAF": universe["SAF"], "TF": universe["TF"]}
        with CampaignRunner("batch", 2, min_chunk=8) as runner:
            runner.bind(flow.work_unit(), universe)
            full = run_campaign(flow, universe, runner=runner)
            trimmed = run_campaign(flow, small, runner=runner)
        assert full.coverage_vector() == run_campaign(
            flow, universe, engine="batch"
        ).coverage_vector()
        assert trimmed.coverage_vector() == {
            name: full.coverage_vector()[name] for name in small
        }
