"""Property-based tests for the baselines and extension modules."""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines.scheme1 import scheme1_transform
from repro.baselines.tomt import tomt_test
from repro.bist.executor import run_march
from repro.bist.symmetry import (
    SymmetricBist,
    XorAccumulator,
    is_symmetric,
    symmetrize,
)
from repro.core.notation import parse_march
from repro.core.twm import twm_transform
from repro.core.validate import validate_transparent
from repro.memory.faults import AddressDecoderFault, Cell, ReadDisturbFault
from repro.memory.injection import FaultyMemory
from repro.memory.model import Memory
from tests.test_properties import bit_march_tests  # reuse the strategy

widths = st.sampled_from([1, 2, 4, 8, 16])


@given(bit_march_tests(), st.sampled_from([2, 4, 8]), st.integers(0, 2**32))
@settings(max_examples=40)
def test_scheme1_transparency_invariant(test, width, seed):
    result = scheme1_transform(test, width)
    assert validate_transparent(result.transparent).ok
    memory = Memory(4, width)
    memory.randomize(random.Random(seed))
    before = memory.snapshot()
    run = run_march(result.transparent, memory)
    assert not run.detected
    assert memory.snapshot() == before


@given(bit_march_tests(), st.sampled_from([4, 8, 16]))
@settings(max_examples=30)
def test_scheme1_longer_than_twm_for_realistic_tests(test, width):
    # The proposed scheme's advantage needs a non-degenerate test: its
    # ATMarch tail is a fixed ~8*log2(b) ops while Scheme 1 multiplies
    # N+Q by log2(b)+1, so the crossover sits near N+Q ~ 9.  All real
    # March tests are far above it (MATS+ already has N+Q = 7+... = 7).
    s1 = scheme1_transform(test, width)
    twm = twm_transform(test, width)
    if test.op_count + test.n_reads >= 10:
        assert s1.tcm + s1.tcp >= twm.tcm + twm.tcp


@given(widths, st.integers(0, 2**32))
@settings(max_examples=30)
def test_tomt_transparency_invariant(width, seed):
    memory = Memory(4, width)
    memory.randomize(random.Random(seed))
    before = memory.snapshot()
    run = run_march(tomt_test(width), memory)
    assert not run.detected
    assert memory.snapshot() == before


@given(bit_march_tests(), st.sampled_from([2, 4, 8]))
@settings(max_examples=30)
def test_generated_tests_notation_round_trips(test, width):
    for generated in (
        twm_transform(test, width).twmarch,
        scheme1_transform(test, width).transparent,
        tomt_test(width),
    ):
        assert parse_march(str(generated)).same_structure(generated)


@given(bit_march_tests(), st.sampled_from([1, 2, 3]))
@settings(max_examples=25)
def test_symmetrize_always_balances(test, lanes):
    twmarch = twm_transform(test, 4).twmarch
    balanced = symmetrize(twmarch, lanes)
    assert balanced.n_reads % (2 * lanes) == 0
    assert validate_transparent(balanced).ok


@given(bit_march_tests(), st.integers(0, 2**32))
@settings(max_examples=20, deadline=None)
def test_symmetric_bist_silent_on_fault_free(test, seed):
    result = twm_transform(test, 4)
    bist = SymmetricBist(result.twmarch, 3, 4, lanes=3)
    memory = Memory(3, 4)
    memory.randomize(random.Random(seed))
    assert not bist.run(memory)


@given(bit_march_tests())
@settings(max_examples=20, deadline=None)
def test_xor_accumulator_symmetry_criterion(test):
    # Even per-word read count <=> symmetric under the XOR accumulator.
    twmarch = twm_transform(test, 4).twmarch
    expected = twmarch.n_reads % 2 == 0
    assert is_symmetric(twmarch, 3, 4, XorAccumulator(16)) == expected


@given(
    st.integers(0, 3),
    st.integers(0, 3),
    st.booleans(),
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 15)), max_size=15),
)
def test_drdf_preserves_returned_value_on_first_read(addr, bit, deceptive, ops):
    """DRDF's defining property: the first read after any write returns
    the written (correct) value; RDF returns the flipped one."""
    memory = FaultyMemory(4, 4, [ReadDisturbFault(Cell(addr, bit), deceptive)])
    for a, v in ops:
        memory.write(a, v)
        got = memory.read(a)
        stored_expectation = v & 0xF
        if a == addr:
            if deceptive:
                assert got == stored_expectation
            else:
                assert got == stored_expectation ^ (1 << bit)
        else:
            assert got == stored_expectation


@given(
    st.integers(0, 3),
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 15)), max_size=15),
)
def test_dead_address_never_changes_other_words(dead, ops):
    memory = FaultyMemory(4, 4, [AddressDecoderFault(dead, "none")])
    reference = [0, 0, 0, 0]
    for a, v in ops:
        memory.write(a, v)
        if a != dead:
            reference[a] = v
    snapshot = memory.snapshot()
    for a in range(4):
        if a != dead:
            assert snapshot[a] == reference[a]
    assert snapshot[dead] == 0  # never written


@given(
    st.integers(0, 2),
    st.integers(0, 15),
    st.integers(0, 2**32),
)
def test_wrong_address_is_alias(addr, value, seed):
    other = addr + 1
    memory = FaultyMemory(4, 4, [AddressDecoderFault(addr, "other", other)])
    memory.write(addr, value)
    assert memory.read(addr) == memory.snapshot()[other] == value & 0xF
