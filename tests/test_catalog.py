"""Tests for the March-test catalog."""

import pytest

from repro.core.validate import validate_solid
from repro.library import CATALOG, MARCH_CM, MARCH_U, entry, get, names


# (name, N, Q) per the literature.
EXPECTED_COUNTS = {
    "MATS": (4, 2),
    "MATS+": (5, 2),
    "March X": (6, 3),
    "March Y": (8, 5),
    "March C-": (10, 5),
    "March C": (11, 6),
    "March A": (15, 4),
    "March B": (17, 6),
    "March U": (13, 6),
    "March LR": (14, 7),
    "March SR": (14, 8),
    "March SS": (22, 13),
    "March RAW": (26, 17),
}


class TestCatalogContents:
    def test_names_complete(self):
        assert set(names()) == set(EXPECTED_COUNTS)

    @pytest.mark.parametrize("name", list(EXPECTED_COUNTS))
    def test_operation_counts(self, name):
        n, q = EXPECTED_COUNTS[name]
        test = get(name)
        assert test.op_count == n, f"{name}: N={test.op_count}, expected {n}"
        assert test.n_reads == q, f"{name}: Q={test.n_reads}, expected {q}"

    @pytest.mark.parametrize("name", list(EXPECTED_COUNTS))
    def test_all_tests_are_consistent(self, name):
        report = validate_solid(get(name))
        assert report.ok, f"{name}: {report}"

    @pytest.mark.parametrize("name", list(EXPECTED_COUNTS))
    def test_all_tests_are_bit_oriented_solid(self, name):
        assert get(name).is_solid_form

    def test_entries_have_references(self):
        for e in CATALOG.values():
            assert e.reference
            assert e.name == e.test.name

    def test_march_cm_handle(self):
        assert MARCH_CM.name == "March C-"
        assert MARCH_U.name == "March U"

    def test_march_cm_detects_all_cf(self):
        detects = entry("March C-").detects
        assert {"SAF", "TF", "CFin", "CFid", "CFst"} <= detects

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="March C-"):
            get("March Z")
        with pytest.raises(KeyError):
            entry("March Z")

    def test_march_u_structure_matches_paper(self):
        # Section 4 of the paper quotes March U explicitly.
        assert str(MARCH_U) == (
            "{⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)}"
        )

    def test_march_cm_structure_matches_paper(self):
        assert str(MARCH_CM) == (
            "{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}"
        )

    def test_all_start_with_pure_write_init(self):
        for name in names():
            assert get(name).elements[0].is_pure_write, name
