"""Tests for the online (idle-time) test scheduler."""

import random

import pytest

from repro.bist.scheduler import OnlineTestScheduler, random_workload
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.faults import Cell, StuckAtFault
from repro.memory.injection import FaultyMemory
from repro.memory.model import Memory
from repro.memory.traces import AccessEvent


def make_scheduler(memory, name="March C-", width=8, **kwargs):
    result = twm_transform(catalog.get(name), width)
    return OnlineTestScheduler(
        memory, result.twmarch, result.prediction, **kwargs
    )


def idle_workload(cycle, rng):
    return None


class TestIdleOnlyOperation:
    def test_sessions_complete_and_stay_silent(self):
        memory = Memory(4, 8)
        memory.randomize(random.Random(0))
        sched = make_scheduler(memory, ops_per_idle_cycle=8)
        cycles = sched.session_ops * 3 // 8 + 10
        report = sched.run(idle_workload, cycles)
        assert report.sessions_completed >= 2
        assert report.detections == []
        assert report.sessions_aborted == 0
        assert report.idle_cycles == cycles

    def test_memory_unchanged_after_sessions(self):
        memory = Memory(4, 8)
        memory.randomize(random.Random(1))
        before = memory.snapshot()
        sched = make_scheduler(memory, ops_per_idle_cycle=16)
        sched.run(idle_workload, sched.session_ops)
        assert memory.snapshot() == before

    def test_session_ops_accounting(self):
        memory = Memory(4, 8)
        result = twm_transform(catalog.get("March C-"), 8)
        sched = OnlineTestScheduler(memory, result.twmarch, result.prediction)
        assert sched.session_ops == (result.tcm + result.tcp) * 4


class TestWorkloadInterference:
    def test_system_write_aborts_session(self):
        memory = Memory(4, 8)
        sched = make_scheduler(memory, ops_per_idle_cycle=1)

        def mostly_idle_with_one_write(cycle, rng):
            if cycle == 5:
                return AccessEvent("w", 0, 0xAA)
            return None

        report = sched.run(mostly_idle_with_one_write, 10)
        assert report.sessions_aborted == 1

    def test_system_read_does_not_abort(self):
        memory = Memory(4, 8)
        sched = make_scheduler(memory, ops_per_idle_cycle=1)

        def reads_only(cycle, rng):
            return AccessEvent("r", 1, 0) if cycle % 3 == 0 else None

        report = sched.run(reads_only, 30)
        assert report.sessions_aborted == 0

    def test_busy_system_starves_testing(self):
        memory = Memory(4, 8)
        sched = make_scheduler(memory)

        def always_busy(cycle, rng):
            return AccessEvent("r", 0, 0)

        report = sched.run(always_busy, 50)
        assert report.sessions_completed == 0
        assert report.idle_cycles == 0

    def test_random_workload_mix(self):
        memory = Memory(2, 8)
        memory.randomize(random.Random(2))
        sched = make_scheduler(memory, ops_per_idle_cycle=8)
        workload = random_workload(2, 8, idle_fraction=0.9, write_fraction=0.05)
        report = sched.run(workload, 4000)
        assert report.sessions_completed > 0
        # No fault injected: completed sessions must not fire.
        assert report.detections == []

    def test_shorter_tests_interfere_less(self):
        # The paper's motivation: a shorter transparent test has a higher
        # chance of fitting between system writes.  Compare TWM against
        # the much longer Scheme 1 test under the same hostile workload.
        from repro.baselines.scheme1 import scheme1_transform

        completed = {}
        for label, factory in {
            "twm": lambda: twm_transform(catalog.get("March C-"), 32),
            "s1": lambda: scheme1_transform(catalog.get("March C-"), 32),
        }.items():
            result = factory()
            memory = Memory(2, 32)
            memory.randomize(random.Random(5))
            sched = OnlineTestScheduler(
                memory,
                result.twmarch if label == "twm" else result.transparent,
                result.prediction,
                ops_per_idle_cycle=4,
                rng=random.Random(9),
            )
            workload = random_workload(2, 32, idle_fraction=0.9, write_fraction=0.1)
            completed[label] = sched.run(workload, 6000).sessions_completed
        assert completed["twm"] >= completed["s1"]
        assert completed["twm"] > 0


class TestFaultDetection:
    def test_detection_latency_measured(self):
        memory = FaultyMemory(4, 8)
        memory.randomize(random.Random(3))
        sched = make_scheduler(memory, ops_per_idle_cycle=8)
        inject_cycle = sched.session_ops // 8 // 2

        def inject(mem):
            mem.inject(StuckAtFault(Cell(2, 3), 1))

        cycles = sched.session_ops * 4
        report = sched.run(idle_workload, cycles, fault_at=(inject_cycle, inject))
        assert report.fault_cycle == inject_cycle
        assert report.detections, "fault never detected"
        assert report.detection_latency is not None
        assert report.detection_latency >= 0

    def test_latency_none_when_no_fault(self):
        memory = Memory(4, 8)
        sched = make_scheduler(memory, ops_per_idle_cycle=4)
        report = sched.run(idle_workload, 100)
        assert report.detection_latency is None

    def test_more_idle_time_means_lower_latency(self):
        latencies = {}
        for ops_per_cycle in (1, 8):
            memory = FaultyMemory(4, 8)
            memory.randomize(random.Random(4))
            sched = make_scheduler(memory, ops_per_idle_cycle=ops_per_cycle)

            def inject(mem):
                mem.inject(StuckAtFault(Cell(1, 1), 0))

            report = sched.run(
                idle_workload,
                sched.session_ops * 6,
                fault_at=(3, inject),
            )
            latencies[ops_per_cycle] = report.detection_latency
        assert latencies[8] is not None
        assert latencies[1] is None or latencies[8] <= latencies[1]


class TestSessionEdgeCases:
    def test_abort_lands_mid_prediction_phase(self):
        memory = Memory(4, 8)
        memory.randomize(random.Random(7))
        sched = make_scheduler(memory, ops_per_idle_cycle=1)
        seen_phases = []

        def write_during_prediction(cycle, rng):
            session = sched._session
            if session is not None and session.phase == "prediction":
                seen_phases.append(session.phase)
                return AccessEvent("w", 1, 0x55)
            return None

        report = sched.run(write_during_prediction, 6)
        assert seen_phases and all(p == "prediction" for p in seen_phases)
        assert report.sessions_aborted == len(seen_phases)
        assert report.sessions_completed == 0

    def test_zero_idle_period_never_starts_a_session(self):
        memory = Memory(4, 8)
        memory.randomize(random.Random(8))
        sched = make_scheduler(memory)

        def write_storm(cycle, rng):
            return AccessEvent("w", cycle % 4, cycle & 0xFF)

        report = sched.run(write_storm, 64)
        assert report.idle_cycles == 0
        assert report.sessions_completed == 0
        # A write with no session in flight has nothing to abort.
        assert report.sessions_aborted == 0

    def test_fault_at_cycle_zero_detected_by_first_session(self):
        memory = FaultyMemory(4, 8)
        memory.randomize(random.Random(9))
        sched = make_scheduler(memory, ops_per_idle_cycle=8)

        def inject(mem):
            mem.inject(StuckAtFault(Cell(0, 0), 1))

        report = sched.run(
            idle_workload, sched.session_ops, fault_at=(0, inject)
        )
        assert report.fault_cycle == 0
        assert report.sessions_completed >= 1
        assert report.detections
        assert report.detection_latency == report.detections[0]

    def test_back_to_back_sessions_use_fresh_misrs(self):
        memory = FaultyMemory(4, 8)
        memory.randomize(random.Random(10))
        sched = make_scheduler(memory, ops_per_idle_cycle=16)

        def inject(mem):
            mem.inject(StuckAtFault(Cell(3, 2), 0))

        report = sched.run(
            idle_workload, sched.session_ops, fault_at=(0, inject)
        )
        assert report.sessions_completed >= 2
        # Every session seeds a fresh MISR pair: each one must detect the
        # persistent fault on its own, with no signature state carried
        # over from the session before it.
        assert len(report.detections) == report.sessions_completed
        assert report.detections == sorted(report.detections)


class TestWorkloadFactory:
    def test_idle_fraction_bounds(self):
        with pytest.raises(ValueError):
            random_workload(4, 8, idle_fraction=1.5)
        with pytest.raises(ValueError):
            random_workload(4, 8, write_fraction=-0.1)

    def test_workload_event_shape(self):
        workload = random_workload(4, 8, idle_fraction=0.0, write_fraction=1.0)
        event = workload(0, random.Random(0))
        assert event is not None
        assert event.kind == "w"
        assert 0 <= event.addr < 4
        assert 0 <= event.value < 256

    def test_rejects_solid_test(self):
        with pytest.raises(ValueError):
            OnlineTestScheduler(Memory(4, 8), catalog.get("March C-"))
