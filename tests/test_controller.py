"""Tests for the two-phase transparent BIST controller."""

import random

import pytest

from repro.bist.controller import TransparentBist
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.faults import Cell, StuckAtFault, TransitionFault
from repro.memory.injection import FaultyMemory
from repro.memory.model import Memory


def make_bist(name="March C-", width=8, **kwargs):
    return TransparentBist.from_twm(twm_transform(catalog.get(name), width), **kwargs)


class TestFaultFree:
    def test_signatures_match(self):
        bist = make_bist()
        m = Memory(16, 8)
        m.randomize(random.Random(0))
        outcome = bist.run(m)
        assert outcome.predicted_signature == outcome.test_signature
        assert not outcome.detected
        assert not outcome.stream_detected
        assert not outcome.aliased

    def test_transparent_flag(self):
        bist = make_bist()
        m = Memory(16, 8)
        m.randomize(random.Random(1))
        outcome = bist.run(m)
        assert outcome.transparent

    def test_counts(self):
        bist = make_bist(width=8)
        m = Memory(4, 8)
        outcome = bist.run(m)
        result = twm_transform(catalog.get("March C-"), 8)
        assert outcome.prediction_reads == result.tcp * 4
        assert outcome.test_ops == result.tcm * 4

    @pytest.mark.parametrize("content", [0x00, 0xFF, 0xA5])
    def test_any_initial_content(self, content):
        bist = make_bist()
        m = Memory(8, 8, fill=content)
        assert not bist.run(m).detected


class TestFaultDetection:
    @pytest.mark.parametrize("value", [0, 1])
    def test_stuck_at_detected(self, value):
        bist = make_bist()
        m = FaultyMemory(8, 8, [StuckAtFault(Cell(3, 2), value)])
        m.randomize(random.Random(2))
        outcome = bist.run(m)
        assert outcome.stream_detected
        assert outcome.detected  # 16-bit MISR: no aliasing here

    @pytest.mark.parametrize("rising", [True, False])
    def test_transition_fault_detected(self, rising):
        bist = make_bist()
        m = FaultyMemory(8, 8, [TransitionFault(Cell(5, 1), rising=rising)])
        m.randomize(random.Random(3))
        assert bist.run(m).detected

    def test_detection_independent_of_content(self):
        bist = make_bist()
        for seed in range(5):
            m = FaultyMemory(8, 8, [StuckAtFault(Cell(0, 0), 1)])
            m.randomize(random.Random(seed))
            assert bist.run(m).detected


class TestConfiguration:
    def test_rejects_solid_test(self):
        with pytest.raises(ValueError, match="not transparent"):
            TransparentBist(catalog.get("March C-"))

    def test_prediction_derived_when_omitted(self):
        result = twm_transform(catalog.get("March U"), 8)
        bist = TransparentBist(result.twmarch)
        assert bist.prediction.op_count == result.tcp

    def test_misr_width_configurable(self):
        bist = make_bist(misr_width=4)
        assert bist.misr_width == 4
        m = Memory(4, 8)
        assert not bist.run(m).detected

    def test_controller_reusable(self):
        bist = make_bist()
        for seed in range(3):
            m = Memory(8, 8)
            m.randomize(random.Random(seed))
            assert not bist.run(m).detected


class TestAliasing:
    def test_tiny_misr_can_alias(self):
        # With a 1-bit MISR, some faulty streams collide; scan fault
        # sites until one aliases to prove the measurement channel works.
        result = twm_transform(catalog.get("March C-"), 4)
        bist = TransparentBist.from_twm(result, misr_width=1)
        saw_alias = False
        saw_detect = False
        for addr in range(8):
            for bit in range(4):
                for value in (0, 1):
                    m = FaultyMemory(8, 4, [StuckAtFault(Cell(addr, bit), value)])
                    m.randomize(random.Random(addr * 8 + bit))
                    outcome = bist.run(m)
                    if outcome.aliased:
                        saw_alias = True
                    if outcome.detected:
                        saw_detect = True
        assert saw_detect
        assert saw_alias, "1-bit MISR never aliased across 64 fault sites"

    def test_wide_misr_rarely_aliases(self):
        result = twm_transform(catalog.get("March C-"), 4)
        bist = TransparentBist.from_twm(result, misr_width=32)
        aliases = 0
        for addr in range(8):
            m = FaultyMemory(8, 4, [StuckAtFault(Cell(addr, 0), 1)])
            m.randomize(random.Random(addr))
            if bist.run(m).aliased:
                aliases += 1
        assert aliases == 0
