"""End-to-end integration tests across the whole stack."""

import random

import pytest

from repro import (
    FaultyMemory,
    Memory,
    OnlineTestScheduler,
    StuckAtFault,
    TransparentBist,
    library,
    nontransparent_word_reference,
    run_march,
    scheme1_transform,
    twm_transform,
)
from repro.analysis.coverage import compare_flow, run_campaign
from repro.baselines.tomt import TomtBaseline
from repro.memory.faults import Cell, IdempotentCouplingFault
from repro.memory.injection import standard_fault_universe


class TestFullBistPipeline:
    """Transform -> predict -> test -> compare, per scheme."""

    @pytest.mark.parametrize("name", ["March C-", "March U", "March B"])
    @pytest.mark.parametrize("width", [4, 16])
    def test_twm_pipeline_fault_free(self, name, width):
        result = twm_transform(library.get(name), width)
        bist = TransparentBist.from_twm(result)
        memory = Memory(8, width)
        memory.randomize(random.Random(0))
        outcome = bist.run(memory)
        assert not outcome.detected
        assert outcome.transparent

    @pytest.mark.parametrize("name", ["March C-", "March U"])
    def test_twm_pipeline_detects_injected_fault(self, name):
        result = twm_transform(library.get(name), 8)
        bist = TransparentBist.from_twm(result)
        memory = FaultyMemory(8, 8, [StuckAtFault(Cell(4, 5), 0)])
        memory.randomize(random.Random(1))
        assert bist.run(memory).detected

    def test_scheme1_pipeline(self):
        result = scheme1_transform(library.get("March C-"), 8)
        bist = TransparentBist(result.transparent, result.prediction)
        memory = Memory(8, 8)
        memory.randomize(random.Random(2))
        assert not bist.run(memory).detected

        faulty = FaultyMemory(8, 8, [StuckAtFault(Cell(0, 0), 1)])
        faulty.randomize(random.Random(3))
        assert bist.run(faulty).detected

    def test_tomt_pipeline(self):
        baseline = TomtBaseline(8)
        clean = baseline.make_memory(8, fill=0x42)
        assert not baseline.run(clean).detected
        faulty = baseline.make_memory(8, [StuckAtFault(Cell(3, 1), 1)], fill=0x42)
        assert baseline.run(faulty).detected

    def test_intra_word_cfid_detected_when_orientation_matches(self):
        # D1 flips bit 0 while bit 1 holds: aggressor bit0 -> victim bit1.
        fault = IdempotentCouplingFault(
            Cell(2, 0), Cell(2, 1), rising=True, forced_value=1
        )
        result = twm_transform(library.get("March C-"), 8)
        memory = FaultyMemory(8, 8, [fault])
        memory.load([0] * 8)
        bist = TransparentBist.from_twm(result)
        assert bist.run(memory).detected


class TestCrossSchemeConsistency:
    def test_all_schemes_transparent_on_same_memory(self):
        width = 8
        memory = Memory(4, width)
        memory.randomize(random.Random(5))
        before = memory.snapshot()
        for test in (
            twm_transform(library.get("March C-"), width).twmarch,
            scheme1_transform(library.get("March C-"), width).transparent,
        ):
            run = run_march(test, memory)
            assert not run.detected
            assert memory.snapshot() == before

    def test_twm_is_shortest(self):
        width = 32
        twm = twm_transform(library.get("March C-"), width)
        s1 = scheme1_transform(library.get("March C-"), width)
        from repro.baselines.tomt import tomt_tcm

        assert twm.tcm + twm.tcp < s1.tcm + s1.tcp < tomt_tcm(width) + 1


class TestCampaignIntegration:
    def test_small_full_universe_campaign(self):
        n, b = 4, 4
        result = twm_transform(library.get("March C-"), b)
        universe = standard_fault_universe(
            n, b, max_inter_pairs=8, rng=random.Random(0)
        )
        flow = compare_flow(result.twmarch, n, b, initial=None, seed=1)
        report = run_campaign(flow, universe, flow_name="integration")
        assert report.classes["SAF"].percent == 100.0
        assert report.classes["TF"].percent == 100.0
        assert report.classes["CFin-inter"].percent == 100.0
        assert report.percent > 75.0

    def test_reference_vs_twm_summary(self):
        n, b = 4, 4
        twm = twm_transform(library.get("March C-"), b)
        ref = nontransparent_word_reference(library.get("March C-"), b)
        universe = standard_fault_universe(
            n, b, max_inter_pairs=6, rng=random.Random(2)
        )
        rep_ref = run_campaign(compare_flow(ref, n, b, initial=0), universe)
        rep_twm = run_campaign(
            compare_flow(twm.twmarch, n, b, initial=None, seed=9), universe
        )
        # Identical except the documented intra-word CFst static gap.
        for name in universe:
            if name == "CFst-intra":
                continue
            assert (
                rep_ref.classes[name].percent == rep_twm.classes[name].percent
            ), name


class TestSchedulerIntegration:
    def test_life_time_scenario(self):
        """The paper's motivating scenario: a system runs, idles, a
        fault appears mid-life, the periodic transparent test finds it."""
        result = twm_transform(library.get("March C-"), 8)
        memory = FaultyMemory(4, 8)
        memory.randomize(random.Random(7))
        sched = OnlineTestScheduler(
            memory,
            result.twmarch,
            result.prediction,
            ops_per_idle_cycle=4,
            rng=random.Random(8),
        )

        def workload(cycle, rng):
            # Bursty but mostly idle system.
            if cycle % 97 == 0:
                from repro.memory.traces import AccessEvent

                return AccessEvent("r", rng.randrange(4), 0)
            return None

        def inject(mem):
            mem.inject(StuckAtFault(Cell(1, 6), 1))

        cycles = sched.session_ops * 5
        report = sched.run(workload, cycles, fault_at=(cycles // 3, inject))
        assert report.sessions_completed > 2
        assert report.detection_latency is not None
        # Sessions completed before injection must be silent.
        assert all(c >= report.fault_cycle for c in report.detections)
