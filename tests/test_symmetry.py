"""Tests for the symmetric transparent BIST extension."""

import random

import pytest

from repro.bist.misr import Misr
from repro.bist.symmetry import (
    SymmetricBist,
    XorAccumulator,
    content_dependence,
    is_symmetric,
    reference_signature,
    symmetrize,
)
from repro.core.notation import parse_march
from repro.core.twm import twm_transform
from repro.library import catalog
from repro.memory.faults import Cell, StuckAtFault
from repro.memory.injection import FaultyMemory
from repro.memory.model import Memory

N_WORDS, WIDTH = 4, 4


def twm(name="March C-"):
    return twm_transform(catalog.get(name), WIDTH)


class TestXorAccumulator:
    def test_order_insensitive(self):
        a = XorAccumulator(8)
        b = XorAccumulator(8)
        a.absorb_all([1, 2, 3])
        b.absorb_all([3, 1, 2])
        assert a.signature == b.signature

    def test_even_multiplicity_cancels(self):
        acc = XorAccumulator(8)
        acc.absorb_all([0x5A, 0x5A])
        assert acc.signature == 0

    def test_fold(self):
        acc = XorAccumulator(8)
        acc.absorb(0x1FF)
        assert acc.signature == (0xFF ^ 0x01)

    def test_reset_and_spawn(self):
        acc = XorAccumulator(8, seed=3)
        acc.absorb(1)
        clone = acc.spawn()
        acc.reset()
        assert acc.signature == 3
        assert clone.signature == 3

    def test_width_validation(self):
        with pytest.raises(ValueError):
            XorAccumulator(0)


class TestContentDependence:
    def test_xor_accumulator_even_reads_symmetric(self):
        # TWMarch C- at b=4 reads every word 12 times (even).
        result = twm()
        assert result.twmarch.n_reads % 2 == 0
        assert is_symmetric(result.twmarch, N_WORDS, WIDTH, XorAccumulator(16))

    def test_misr_not_symmetric(self):
        # The shifting MISR weighs reads by time position: content leaks.
        result = twm()
        report = content_dependence(result.twmarch, N_WORDS, WIDTH, Misr(16))
        assert not report.symmetric
        assert report.dependent_cells > 0

    def test_odd_read_test_not_symmetric(self):
        t = parse_march("⇕(rc,w~c); ⇕(r~c,wc); ⇕(rc)", name="odd-reads")
        assert t.n_reads % 2 == 1
        assert not is_symmetric(t, N_WORDS, WIDTH, XorAccumulator(16))

    def test_dependence_rejects_solid_tests(self):
        with pytest.raises(ValueError):
            content_dependence(catalog.get("March C-"), N_WORDS, WIDTH)


class TestSymmetrize:
    def test_appends_read_for_odd_count(self):
        t = parse_march("⇕(rc,w~c); ⇕(r~c,wc); ⇕(rc)", name="odd-reads")
        sym = symmetrize(t)
        assert sym.n_reads == t.n_reads + 1
        assert is_symmetric(sym, N_WORDS, WIDTH, XorAccumulator(16))

    def test_no_change_for_even_count(self):
        result = twm()
        assert symmetrize(result.twmarch) is result.twmarch

    def test_symmetrized_test_still_transparent(self):
        from repro.core.validate import validate_transparent

        t = parse_march("⇕(rc,w~c); ⇕(r~c,wc); ⇕(rc)", name="odd-reads")
        assert validate_transparent(symmetrize(t)).ok

    def test_rejects_solid_tests(self):
        with pytest.raises(ValueError):
            symmetrize(catalog.get("March C-"))


class TestReferenceSignature:
    def test_constant_across_contents(self):
        result = twm()
        ref = reference_signature(result.twmarch, N_WORDS, WIDTH)
        for seed in range(3):
            memory = Memory(N_WORDS, WIDTH)
            memory.randomize(random.Random(seed))
            acc = XorAccumulator(16)
            from repro.bist.executor import run_march

            run_march(
                result.twmarch,
                memory,
                read_sink=lambda rec: acc.absorb(rec.raw),
            )
            assert acc.signature == ref

    def test_rejects_asymmetric_pairs(self):
        result = twm()
        with pytest.raises(ValueError, match="not symmetric"):
            reference_signature(result.twmarch, N_WORDS, WIDTH, Misr(16))


class TestSymmetricBist:
    def setup_method(self):
        # TWMarch C- at b=4 has 12 reads/word: divisible by 2*3 lanes,
        # so no padding is needed.
        self.bist = SymmetricBist(twm().twmarch, N_WORDS, WIDTH, lanes=3)

    def test_fault_free_silent(self):
        for seed in range(3):
            memory = Memory(N_WORDS, WIDTH)
            memory.randomize(random.Random(seed))
            assert not self.bist.run(memory)

    @pytest.mark.parametrize("value", [0, 1])
    def test_detects_stuck_at(self, value):
        memory = FaultyMemory(N_WORDS, WIDTH, [StuckAtFault(Cell(2, 1), value)])
        memory.randomize(random.Random(1))
        assert self.bist.run(memory)

    def test_detects_every_saf_and_tf(self):
        from repro.memory.injection import enumerate_stuck_at, enumerate_transition

        for fault in list(enumerate_stuck_at(N_WORDS, WIDTH)) + list(
            enumerate_transition(N_WORDS, WIDTH)
        ):
            memory = FaultyMemory(N_WORDS, WIDTH, [fault])
            memory.randomize(random.Random(5))
            assert self.bist.run(memory), fault.describe()

    def test_no_prediction_cost(self):
        # Session = test phase only; the two-phase flow pays TCM+TCP.
        two_phase = twm()
        assert self.bist.session_ops == two_phase.tcm
        assert self.bist.session_ops < two_phase.tcm + two_phase.tcp

    def test_padding_applied_when_needed(self):
        # TWMarch C- at b=8 has 15 reads/word: pad to 18 for 3 lanes.
        result = twm_transform(catalog.get("March C-"), 8)
        bist = SymmetricBist(result.twmarch, N_WORDS, 8, lanes=3)
        assert bist.test.n_reads == 18
        assert bist.session_ops == result.tcm + 3

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            self.bist.run(Memory(N_WORDS + 1, WIDTH))

    def test_single_lane_has_systematic_masking(self):
        # lanes=1 is the plain XOR accumulator: even-multiplicity fault
        # effects cancel; the 3-lane default repairs this on SAF/TF.
        from repro.memory.injection import enumerate_stuck_at

        single = SymmetricBist(twm().twmarch, N_WORDS, WIDTH, lanes=1)
        missed = 0
        for fault in enumerate_stuck_at(N_WORDS, WIDTH):
            memory = FaultyMemory(N_WORDS, WIDTH, [fault])
            memory.randomize(random.Random(5))
            missed += not single.run(memory)
        assert missed > 0  # the weakness is real and measurable

    def test_lanes_validation(self):
        with pytest.raises(ValueError):
            SymmetricBist(twm().twmarch, N_WORDS, WIDTH, lanes=0)
