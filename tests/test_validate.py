"""Tests for March-test validation."""

from repro.core.notation import parse_march
from repro.core.twm import twm_transform
from repro.core.validate import (
    check_transparency_by_execution,
    validate_solid,
    validate_transparent,
)
from repro.library import catalog


class TestValidateSolid:
    def test_catalog_is_valid(self):
        for name in catalog.names():
            assert validate_solid(catalog.get(name)).ok

    def test_detects_wrong_read(self):
        t = parse_march("⇕(w0); ⇑(r1,w1)", name="bad")
        report = validate_solid(t)
        assert not report.ok
        assert "read expects" in report.problems[0]

    def test_detects_read_before_init(self):
        t = parse_march("⇕(r0,w0)", name="uninit")
        report = validate_solid(t)
        assert not report.ok
        assert "uninitialized" in report.problems[0]

    def test_rejects_transparent_tests(self):
        t = twm_transform(catalog.get("March C-"), 4).twmarch
        assert not validate_solid(t).ok

    def test_reads_within_element_track_writes(self):
        t = parse_march("⇕(w0); ⇑(r0,w1,r1,w0,r0)", name="tracked")
        assert validate_solid(t).ok

    def test_report_str(self):
        assert str(validate_solid(catalog.get("March C-"))) == "OK"


class TestValidateTransparent:
    def test_generated_tests_valid(self):
        for name in catalog.names():
            for width in (2, 8):
                result = twm_transform(catalog.get(name), width)
                assert validate_transparent(result.twmarch).ok

    def test_detects_solid_ops(self):
        assert not validate_transparent(catalog.get("March C-")).ok

    def test_detects_non_restoring(self):
        t = parse_march("⇕(rc,w~c)", name="flips")
        report = validate_transparent(t)
        assert not report.ok
        assert any("not transparent" in p for p in report.problems)

    def test_detects_phase_mismatch(self):
        t = parse_march("⇕(rc,w~c); ⇕(rc,wc)", name="bad-phase")
        report = validate_transparent(t)
        assert not report.ok

    def test_detects_underivable_write(self):
        t = parse_march("⇕(w~c,r~c); ⇕(r~c,wc)", name="w-first")
        report = validate_transparent(t)
        assert any("precedes any read" in p for p in report.problems)

    def test_valid_simple(self):
        t = parse_march("⇕(rc,w~c); ⇕(r~c,wc); ⇕(rc)", name="good")
        assert validate_transparent(t).ok


class TestDynamicCheck:
    def test_transparent_test_passes(self):
        t = twm_transform(catalog.get("March C-"), 8).twmarch
        assert check_transparency_by_execution(t)

    def test_non_restoring_test_fails(self):
        t = parse_march("⇕(rc,w~c)", name="flips")
        assert not check_transparency_by_execution(t)

    def test_respects_dimensions(self):
        t = twm_transform(catalog.get("March C-"), 4).twmarch
        assert check_transparency_by_execution(t, n_words=3, width=4, trials=2)

    def test_structured_result_on_pass(self):
        t = parse_march("⇕(rc,w~c); ⇕(r~c,wc)", name="good")
        check = check_transparency_by_execution(t, n_words=4, width=4)
        assert check.ok
        assert check.violation is None
        assert check.diagnostic() is None
        assert check.test_name == "good"
        assert "3 randomized trials" in str(check)

    def test_structured_result_on_failure(self):
        t = parse_march("⇕(rc,w~c)", name="flips")
        check = check_transparency_by_execution(t, n_words=4, width=4)
        assert not check.ok
        assert not check
        violation = check.violation
        assert violation.trial == 0
        assert 0 <= violation.address < 4
        assert violation.after == violation.before ^ 0xF

    def test_failure_converts_to_diagnostic(self):
        t = parse_march("⇕(rc,w~c)", name="flips")
        diagnostic = check_transparency_by_execution(t).diagnostic()
        assert diagnostic.rule == "X001"
        assert diagnostic.severity.name == "ERROR"
        assert "transparency violated" in diagnostic.message
        assert diagnostic.location.subject == "flips"
