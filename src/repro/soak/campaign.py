"""Soak scenario matrices through the supervised campaign fabric.

Scenario sweeps ride the exact machinery every other campaign uses:
:class:`SoakWork` is a work unit in the
:class:`~repro.engine.parallel.CampaignRunner` sense (``context_key`` /
``build_context`` / ``run_class``), a scenario list is its "fault
class", and :class:`ScenarioVerdicts` is its packed result container —
so soak sweeps are sharded across persistent workers, lease-supervised
(crash/hang/corrupt detection, bounded retries, chaos injection) and
merge deterministically: ``jobs=N`` is bit-identical to ``jobs=1``.

On top of that sits **checkpoint/resume**: the driver runs the matrix
in batches, writing a JSON checkpoint (scenario-name -> report, plus a
fingerprint of the full matrix) after each batch.  A killed run
re-invoked with the same checkpoint path skips every banked scenario
and produces a final report bit-identical to an undisturbed run —
scenarios are pure functions of their specs, so re-execution and
replay-from-checkpoint are indistinguishable.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..engine.parallel import CampaignRunner
from .scenario import SoakReport, SoakScenario, run_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.chaos import FaultPlan
    from ..engine.retry import FaultToleranceStats, RetryPolicy

DEFAULT_BATCH = 4


@dataclass(frozen=True)
class ScenarioVerdicts:
    """Packed result container for a sharded scenario chunk.

    The campaign fabric only needs ``len()`` (integrity check: one
    verdict per input) and ``concat`` (deterministic in-order merge).
    """

    reports: tuple[SoakReport, ...] = ()

    def __len__(self) -> int:
        return len(self.reports)

    def tolist(self) -> list[SoakReport]:
        return list(self.reports)

    @classmethod
    def concat(
        cls, parts: "Sequence[ScenarioVerdicts]"
    ) -> "ScenarioVerdicts":
        reports: list[SoakReport] = []
        for part in parts:
            reports.extend(part.reports)
        return cls(tuple(reports))


@dataclass(frozen=True)
class SoakWork:
    """The soak work unit: evaluates scenarios, ignores the engine.

    Scenarios carry their whole context by value, so there is nothing
    to amortize per worker — ``build_context`` returns ``None`` and the
    context cache simply remembers the probe.
    """

    def context_key(self) -> tuple:
        return ("soak",)

    def build_context(self, engine) -> object:
        return None

    def run(self, engine, scenarios, context=None) -> ScenarioVerdicts:
        return self.run_class(engine, scenarios, context=context)

    def run_class(self, engine, scenarios, context=None) -> ScenarioVerdicts:
        return ScenarioVerdicts(
            tuple(run_scenario(scenario) for scenario in scenarios)
        )


def matrix_fingerprint(scenarios: Sequence[SoakScenario]) -> str:
    """A stable identity of the full matrix (checkpoint compatibility)."""
    payload = json.dumps(
        [scenario.as_dict() for scenario in scenarios], sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class SoakCampaignReport:
    """A finished (or checkpoint-limited) soak sweep.

    ``reports`` is in matrix order and is the bit-identity surface the
    acceptance tests compare; ``seconds`` and ``fault_tolerance`` are
    run accounting, deliberately outside any equality assertion.
    """

    reports: list[SoakReport] = field(default_factory=list)
    completed: bool = True
    resumed_scenarios: int = 0
    seconds: float = 0.0
    fault_tolerance: "FaultToleranceStats | None" = None

    @property
    def scenarios(self) -> int:
        return len(self.reports)


class SoakCheckpoint:
    """JSON bank of finished scenario reports, keyed by scenario name."""

    def __init__(self, path: Path | str, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.reports: dict[str, SoakReport] = {}

    def load(self) -> int:
        """Read banked reports; returns how many were resumed.  A
        checkpoint written for a different matrix is rejected loudly —
        resuming it would silently splice unrelated results."""
        if not self.path.exists():
            return 0
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        if payload.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"checkpoint {self.path} was written for a different "
                "scenario matrix (fingerprint mismatch); delete it or "
                "point --checkpoint elsewhere"
            )
        self.reports = {
            name: SoakReport.from_dict(report)
            for name, report in payload["reports"].items()
        }
        return len(self.reports)

    def bank(self, reports: Sequence[SoakReport]) -> None:
        for report in reports:
            self.reports[report.scenario] = report
        payload = {
            "fingerprint": self.fingerprint,
            "reports": {
                name: report.as_dict()
                for name, report in sorted(self.reports.items())
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self.path)


def run_soak_campaign(
    scenarios: Sequence[SoakScenario],
    *,
    jobs: int = 1,
    retry: "RetryPolicy | None" = None,
    chaos: "FaultPlan | None" = None,
    degrade: bool = True,
    runner: CampaignRunner | None = None,
    checkpoint: Path | str | None = None,
    batch_size: int = DEFAULT_BATCH,
    max_batches: int | None = None,
) -> SoakCampaignReport:
    """Run a scenario matrix, sharded and supervised.

    ``checkpoint`` banks finished batches to a JSON file and resumes
    from it on re-invocation.  ``max_batches`` bounds how many *new*
    batches this invocation runs (a time-boxed soak slice: the
    checkpoint holds whatever finished; re-invoke to continue) —
    ``completed`` is False on a limited run that stopped early.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    scenarios = list(scenarios)
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ValueError("scenario names must be unique within a matrix")
    started = time.perf_counter()
    bank: SoakCheckpoint | None = None
    resumed = 0
    if checkpoint is not None:
        bank = SoakCheckpoint(checkpoint, matrix_fingerprint(scenarios))
        resumed = bank.load()

    done = dict(bank.reports) if bank is not None else {}
    pending = [s for s in scenarios if s.name not in done]
    batches = [
        pending[i : i + batch_size]
        for i in range(0, len(pending), batch_size)
    ]

    work = SoakWork()
    own_runner = runner is None
    if own_runner:
        # min_chunk=1: scenario lists are short but each element is a
        # whole simulated uptime, so even a handful shards profitably.
        runner = CampaignRunner(
            "reference",
            jobs,
            min_chunk=1,
            chunks_per_job=1,
            retry=retry,
            chaos=chaos,
            degrade=degrade,
        )
    completed = True
    try:
        for ordinal, batch in enumerate(batches):
            if max_batches is not None and ordinal >= max_batches:
                completed = False
                break
            runner.bind(work, {"soak": batch})
            verdicts = runner.detect_class_packed(
                work, batch, class_name="soak"
            )
            for report in verdicts.tolist():
                done[report.scenario] = report
            if bank is not None:
                bank.bank(verdicts.tolist())
        fault_stats = runner.take_fault_stats()
    finally:
        if own_runner:
            runner.close()

    reports = [done[name] for name in names if name in done]
    return SoakCampaignReport(
        reports=reports,
        completed=completed and len(reports) == len(scenarios),
        resumed_scenarios=resumed,
        seconds=time.perf_counter() - started,
        fault_tolerance=fault_stats,
    )
