"""Stochastic fault arrival processes over simulated uptime.

A soak scenario does not inject one hand-placed fault: defects *arrive*
while the memory serves traffic.  This module turns a seeded
:class:`ArrivalSpec` into a concrete :class:`FaultTimeline` — a sorted
set of :class:`FaultEpisode` instances, each one fault drawn from the
standard universe with a lifetime flavor:

* **permanent** — injected at its arrival cycle, never withdrawn;
* **transient** — active for an exponentially distributed window, then
  withdrawn (the stored content keeps whatever the defect last forced,
  as in real silicon — see :meth:`FaultyMemory.remove`);
* **intermittent** — toggles with a duty cycle (``duty_on`` active
  cycles, ``duty_off`` quiet cycles) until its lifetime ends.

Arrival instants come from a Poisson process (exponential
inter-arrival times) or a *burst* process (Poisson bursts, geometric
burst sizes, arrivals packed within a short span) — both driven by one
``random.Random(seed)``, so a timeline is a pure function of
``(spec, geometry, horizon, seed)`` and every soak run that shares a
seed sees bit-identical fault weather.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..memory.faults import Fault
from ..memory.injection import standard_fault_universe

FLAVORS = ("permanent", "transient", "intermittent")


@dataclass(frozen=True)
class ArrivalSpec:
    """Parameters of one fault arrival process.

    ``rate`` is the expected number of arrivals per 10 000 simulated
    cycles; ``mix`` weights the (permanent, transient, intermittent)
    flavors.  ``classes`` restricts which standard-universe classes
    faults are drawn from (``None`` = every class, extension classes
    included).
    """

    rate: float = 1.0
    process: str = "poisson"
    mix: tuple[float, float, float] = (0.34, 0.33, 0.33)
    burst_mean: float = 3.0
    burst_span: int = 64
    transient_mean: float = 2500.0
    intermittent_mean: float = 10000.0
    duty_on: int = 150
    duty_off: int = 450
    classes: tuple[str, ...] | None = None
    max_inter_pairs: int = 4

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be > 0")
        if self.process not in ("poisson", "burst"):
            raise ValueError(f"unknown arrival process {self.process!r}")
        if len(self.mix) != 3 or any(w < 0 for w in self.mix):
            raise ValueError("mix must be three non-negative weights")
        if sum(self.mix) <= 0:
            raise ValueError("mix weights must not all be zero")
        if self.burst_mean < 1:
            raise ValueError("burst_mean must be >= 1")
        if self.burst_span < 1:
            raise ValueError("burst_span must be >= 1")
        if self.transient_mean <= 0 or self.intermittent_mean <= 0:
            raise ValueError("lifetime means must be > 0")
        if self.duty_on < 1 or self.duty_off < 0:
            raise ValueError("duty_on must be >= 1 and duty_off >= 0")

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "process": self.process,
            "mix": list(self.mix),
            "burst_mean": self.burst_mean,
            "burst_span": self.burst_span,
            "transient_mean": self.transient_mean,
            "intermittent_mean": self.intermittent_mean,
            "duty_on": self.duty_on,
            "duty_off": self.duty_off,
            "classes": None if self.classes is None else list(self.classes),
            "max_inter_pairs": self.max_inter_pairs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArrivalSpec":
        data = dict(payload)
        data["mix"] = tuple(data["mix"])
        if data.get("classes") is not None:
            data["classes"] = tuple(data["classes"])
        return cls(**data)


@dataclass(frozen=True)
class FaultEpisode:
    """One fault's lifetime within a scenario."""

    index: int
    flavor: str
    fault: Fault
    start: int
    end: int | None  # exclusive; None = permanent
    duty_on: int = 0
    duty_off: int = 0

    def active_at(self, cycle: int) -> bool:
        if cycle < self.start:
            return False
        if self.end is not None and cycle >= self.end:
            return False
        if self.flavor != "intermittent" or self.duty_off == 0:
            return True
        phase = (cycle - self.start) % (self.duty_on + self.duty_off)
        return phase < self.duty_on

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether any active window intersects ``[lo, hi]``."""
        if hi < self.start:
            return False
        if self.end is not None and lo >= self.end:
            return False
        if self.flavor != "intermittent" or self.duty_off == 0:
            return True
        period = self.duty_on + self.duty_off
        lo = max(lo, self.start)
        if self.end is not None:
            hi = min(hi, self.end - 1)
        if lo > hi:
            return False
        phase = (lo - self.start) % period
        if phase < self.duty_on:
            return True
        # Quiet at lo: active again at the next period boundary.
        return lo + (period - phase) <= hi

    def toggles(self, horizon: int) -> list[tuple[int, bool]]:
        """``(cycle, active)`` state changes within ``[0, horizon)``."""
        events: list[tuple[int, bool]] = []
        if self.start >= horizon:
            return events
        end = horizon if self.end is None else min(self.end, horizon)
        if self.flavor != "intermittent" or self.duty_off == 0:
            events.append((self.start, True))
            if self.end is not None and self.end < horizon:
                events.append((self.end, False))
            return events
        period = self.duty_on + self.duty_off
        cycle = self.start
        while cycle < end:
            events.append((cycle, True))
            off_at = min(cycle + self.duty_on, end)
            if off_at < horizon:
                events.append((off_at, False))
            cycle += period
        return events


@dataclass(frozen=True)
class FaultTimeline:
    """Every fault episode of one scenario, sorted by arrival."""

    episodes: tuple[FaultEpisode, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.episodes)

    def __iter__(self):
        return iter(self.episodes)

    def toggle_events(self, horizon: int) -> dict[int, list[tuple[int, bool]]]:
        """``cycle -> [(episode index, active)]`` for the run loop."""
        events: dict[int, list[tuple[int, bool]]] = {}
        for episode in self.episodes:
            for cycle, active in episode.toggles(horizon):
                events.setdefault(cycle, []).append((episode.index, active))
        return events

    @classmethod
    def generate(
        cls,
        spec: ArrivalSpec,
        n_words: int,
        width: int,
        horizon: int,
        seed: int,
    ) -> "FaultTimeline":
        """A timeline drawn from *spec* over ``[0, horizon)`` cycles."""
        rng = random.Random(seed)
        universe = standard_fault_universe(
            n_words,
            width,
            max_inter_pairs=spec.max_inter_pairs,
            rng=random.Random(seed ^ 0x5F5E1),
            include_rdf=True,
            include_af=True,
        )
        if spec.classes is not None:
            unknown = [c for c in spec.classes if c not in universe]
            if unknown:
                raise ValueError(
                    f"unknown fault classes {unknown}; universe has "
                    f"{', '.join(universe)}"
                )
            names = list(spec.classes)
        else:
            names = list(universe)

        arrivals: list[int] = []
        if spec.process == "poisson":
            t = rng.expovariate(spec.rate / 10_000.0)
            while t < horizon:
                arrivals.append(int(t))
                t += rng.expovariate(spec.rate / 10_000.0)
        else:  # burst
            burst_rate = spec.rate / (10_000.0 * spec.burst_mean)
            t = rng.expovariate(burst_rate)
            while t < horizon:
                size = 1
                if spec.burst_mean > 1:
                    # Geometric burst size with the requested mean.
                    p = 1.0 / spec.burst_mean
                    while rng.random() > p:
                        size += 1
                offsets = sorted(
                    rng.randrange(spec.burst_span) for _ in range(size)
                )
                for offset in offsets:
                    cycle = int(t) + offset
                    if cycle < horizon:
                        arrivals.append(cycle)
                t += rng.expovariate(burst_rate)
        arrivals.sort()

        total = sum(spec.mix)
        cuts = (
            spec.mix[0] / total,
            (spec.mix[0] + spec.mix[1]) / total,
        )
        episodes: list[FaultEpisode] = []
        for index, start in enumerate(arrivals):
            draw = rng.random()
            if draw < cuts[0]:
                flavor = "permanent"
            elif draw < cuts[1]:
                flavor = "transient"
            else:
                flavor = "intermittent"
            fault_class = universe[names[rng.randrange(len(names))]]
            fault = fault_class[rng.randrange(len(fault_class))]
            end: int | None = None
            duty_on = duty_off = 0
            if flavor == "transient":
                end = start + 1 + int(rng.expovariate(1.0 / spec.transient_mean))
            elif flavor == "intermittent":
                end = start + 1 + int(
                    rng.expovariate(1.0 / spec.intermittent_mean)
                )
                duty_on, duty_off = spec.duty_on, spec.duty_off
            episodes.append(
                FaultEpisode(index, flavor, fault, start, end, duty_on, duty_off)
            )
        return cls(tuple(episodes))
