"""Soak runtime: long-horizon online-test scenarios.

Stochastic fault arrivals (:mod:`arrivals`), streaming LFSR traffic
(:mod:`workload`), degradation-aware periodic scheduling on top of the
BIST session stepper (:mod:`scheduler`), scenario specs and matrices
(:mod:`scenario`), and supervised, checkpointable scenario sweeps
through the campaign fabric (:mod:`campaign`).
"""

from .arrivals import FLAVORS, ArrivalSpec, FaultEpisode, FaultTimeline
from .campaign import (
    ScenarioVerdicts,
    SoakCampaignReport,
    SoakCheckpoint,
    SoakWork,
    matrix_fingerprint,
    run_soak_campaign,
)
from .scenario import (
    MIXES,
    SoakScenario,
    run_scenario,
    scenario_matrix,
    with_seed,
)
from .scheduler import (
    EpisodeOutcome,
    SoakReport,
    SoakSchedule,
    SoakScheduler,
    TestRung,
)
from .workload import LfsrWorkload

__all__ = [
    "FLAVORS",
    "MIXES",
    "ArrivalSpec",
    "EpisodeOutcome",
    "FaultEpisode",
    "FaultTimeline",
    "LfsrWorkload",
    "ScenarioVerdicts",
    "SoakCampaignReport",
    "SoakCheckpoint",
    "SoakReport",
    "SoakScenario",
    "SoakSchedule",
    "SoakScheduler",
    "SoakWork",
    "TestRung",
    "matrix_fingerprint",
    "run_scenario",
    "run_soak_campaign",
    "scenario_matrix",
    "with_seed",
]
