"""Streaming LFSR workload generation for soak scenarios.

The SATA BIST idiom (SNIPPETS.md Snippet 3): the traffic generator and
every checker share one seeded pseudo-random register, so nothing is
ever materialized — per cycle the workload draws a handful of bits from
a maximal-length :class:`~repro.bist.lfsr.Lfsr` and decides idle /
read / write, the address, and the write data on the fly.  Errors are
likewise counted on the fly by the session stepper's streaming checker
(:class:`~repro.bist.scheduler.SessionStepper` with
``track_stream=True``); no access trace or expected-data buffer scales
with uptime.

The entire generator state is the LFSR register (one integer), so a
checkpointed soak run resumes the traffic stream bit-identically via
:meth:`LfsrWorkload.state` / :meth:`LfsrWorkload.restore`.
"""

from __future__ import annotations

import random

from ..bist.lfsr import Lfsr
from ..memory.traces import AccessEvent

_DECISION_BITS = 10  # idle/write draws resolve to 1/1024 granularity
_SCALE = 1 << _DECISION_BITS


class LfsrWorkload:
    """Seeded streaming workload: ``workload(cycle, rng) -> event``.

    Satisfies the :data:`repro.bist.scheduler.Workload` protocol but
    ignores the scheduler's rng — all randomness comes from the owned
    LFSR, so two runs (or a run and its resumed half) that share the
    seed replay the exact same traffic.

    ``idle_permille`` is the probability (in 1/1000) that a cycle is
    idle; ``write_permille`` the probability that a busy cycle is a
    write rather than a read.
    """

    def __init__(
        self,
        n_words: int,
        width: int,
        *,
        idle_permille: int = 700,
        write_permille: int = 250,
        seed: int = 1,
        lfsr_width: int = 32,
    ) -> None:
        if not 0 <= idle_permille <= 1000:
            raise ValueError("idle_permille must be in [0, 1000]")
        if not 0 <= write_permille <= 1000:
            raise ValueError("write_permille must be in [0, 1000]")
        self.n_words = n_words
        self.width = width
        self.idle_threshold = idle_permille * _SCALE // 1000
        self.write_threshold = write_permille * _SCALE // 1000
        seed = seed & ((1 << lfsr_width) - 1)
        self._lfsr = Lfsr(lfsr_width, seed if seed else 1)

    # -- checkpointing -------------------------------------------------
    @property
    def state(self) -> int:
        """The full generator state (one LFSR register)."""
        return self._lfsr.state

    def restore(self, state: int) -> None:
        """Resume the stream from a previously captured :attr:`state`."""
        self._lfsr = Lfsr(self._lfsr.width, state)

    def spawn_checker(self) -> "Lfsr":
        """An independent register at the current state — the checker
        half of the generator/checker pair for callers that re-derive
        expected data instead of storing it."""
        return self._lfsr.copy()

    # -- the stream ----------------------------------------------------
    def __call__(
        self, cycle: int, rng: random.Random | None = None
    ) -> AccessEvent | None:
        draw = self._lfsr.draw(_DECISION_BITS)
        if draw < self.idle_threshold:
            return None
        addr = self._lfsr.draw(16) % self.n_words
        if self._lfsr.draw(_DECISION_BITS) < self.write_threshold:
            return AccessEvent("w", addr, self._lfsr.draw(self.width))
        return AccessEvent("r", addr, 0)
