"""Soak scenarios: specs, single-scenario execution, scenario matrices.

A :class:`SoakScenario` is a frozen, picklable, JSON-round-trippable
value — the *only* input of :func:`run_scenario` besides the spec's own
seed.  That purity is load-bearing: the campaign layer shards scenario
lists across supervised workers, retries them after chaos-injected
crashes, and resumes killed runs from checkpoints, and every one of
those paths asserts the recovered reports are bit-identical to an
undisturbed run.

Sub-streams (memory content, workload traffic, fault weather, the
scheduler's protocol rng) each derive their own seed from the scenario
seed and name via CRC-32, so changing one axis of a scenario never
perturbs the random draws of another.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from ..core.twm import twm_transform
from ..library import catalog
from ..memory.injection import FaultyMemory
from .arrivals import ArrivalSpec, FaultTimeline
from .scheduler import SoakReport, SoakSchedule, SoakScheduler, TestRung
from .workload import LfsrWorkload

# Named fault-mix presets for CLI/matrix ergonomics: weights of
# (permanent, transient, intermittent) arrivals.
MIXES: dict[str, tuple[float, float, float]] = {
    "permanent": (1.0, 0.0, 0.0),
    "transient": (0.0, 1.0, 0.0),
    "intermittent": (0.0, 0.0, 1.0),
    "mixed": (0.34, 0.33, 0.33),
}


@dataclass(frozen=True)
class SoakScenario:
    """One cell of the soak matrix: everything a run needs, by value."""

    name: str
    test: str = "March C-"
    fallback_test: str | None = "MATS+"
    n_words: int = 16
    width: int = 8
    cycles: int = 20_000
    idle_permille: int = 700
    write_permille: int = 40
    misr_width: int = 16
    schedule: SoakSchedule = SoakSchedule()
    arrival: ArrivalSpec = ArrivalSpec()
    diagnose: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_words < 2 or self.width < 2:
            raise ValueError("soak scenarios need n_words >= 2, width >= 2")
        if self.cycles < 1:
            raise ValueError("cycles must be >= 1")

    def sub_seed(self, role: str) -> int:
        """A per-stream seed derived from (name, seed, role)."""
        return zlib.crc32(f"{self.name}|{self.seed}|{role}".encode())

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "test": self.test,
            "fallback_test": self.fallback_test,
            "n_words": self.n_words,
            "width": self.width,
            "cycles": self.cycles,
            "idle_permille": self.idle_permille,
            "write_permille": self.write_permille,
            "misr_width": self.misr_width,
            "schedule": self.schedule.as_dict(),
            "arrival": self.arrival.as_dict(),
            "diagnose": self.diagnose,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SoakScenario":
        data = dict(payload)
        data["schedule"] = SoakSchedule.from_dict(data["schedule"])
        data["arrival"] = ArrivalSpec.from_dict(data["arrival"])
        return cls(**data)


def _rung(test_name: str, width: int) -> TestRung:
    result = twm_transform(catalog.get(test_name), width)
    return TestRung(test_name, result.twmarch, result.prediction)


def run_scenario(scenario: SoakScenario) -> SoakReport:
    """Execute one scenario end to end; pure in ``(scenario,)``."""
    primary = _rung(scenario.test, scenario.width)
    fallback = (
        _rung(scenario.fallback_test, scenario.width)
        if scenario.fallback_test is not None
        and scenario.fallback_test != scenario.test
        else None
    )
    memory = FaultyMemory(scenario.n_words, scenario.width)
    memory.randomize(random.Random(scenario.sub_seed("content")))
    timeline = FaultTimeline.generate(
        scenario.arrival,
        scenario.n_words,
        scenario.width,
        scenario.cycles,
        scenario.sub_seed("arrivals"),
    )
    workload = LfsrWorkload(
        scenario.n_words,
        scenario.width,
        idle_permille=scenario.idle_permille,
        write_permille=scenario.write_permille,
        seed=scenario.sub_seed("workload"),
    )
    scheduler = SoakScheduler(
        memory,
        primary,
        fallback,
        scenario.schedule,
        timeline,
        misr_width=scenario.misr_width,
        rng=random.Random(scenario.sub_seed("protocol")),
        diagnose=scenario.diagnose,
        scenario_name=scenario.name,
    )
    return scheduler.run(workload, scenario.cycles)


def scenario_matrix(
    *,
    tests: tuple[str, ...] = ("March C-",),
    geometries: tuple[tuple[int, int], ...] = ((16, 8),),
    rates: tuple[float, ...] = (1.0,),
    mixes: tuple[str, ...] = ("mixed",),
    periods: tuple[int, ...] = (1500,),
    cycles: int = 20_000,
    idle_permille: int = 700,
    write_permille: int = 40,
    budget: int | None = None,
    fallback_test: str | None = "MATS+",
    misr_width: int = 16,
    seed: int = 0,
    processes: tuple[str, ...] | None = None,
) -> list[SoakScenario]:
    """The full cross product (tests x geometries x rates x mixes x
    schedules) as named scenarios, each with its own derived seed."""
    scenarios: list[SoakScenario] = []
    for test in tests:
        for n_words, width in geometries:
            for rate in rates:
                for mix in mixes:
                    if mix not in MIXES:
                        raise ValueError(
                            f"unknown mix {mix!r}; choose from "
                            f"{', '.join(MIXES)}"
                        )
                    mix_processes = processes or ("poisson",)
                    for process in mix_processes:
                        for period in periods:
                            name = (
                                f"{test}|{n_words}x{width}|r{rate:g}|"
                                f"{mix}|{process}|p{period}"
                            )
                            scenarios.append(
                                SoakScenario(
                                    name=name,
                                    test=test,
                                    fallback_test=fallback_test,
                                    n_words=n_words,
                                    width=width,
                                    cycles=cycles,
                                    idle_permille=idle_permille,
                                    write_permille=write_permille,
                                    misr_width=misr_width,
                                    schedule=SoakSchedule(
                                        period=period, budget=budget
                                    ),
                                    arrival=ArrivalSpec(
                                        rate=rate,
                                        process=process,
                                        mix=MIXES[mix],
                                    ),
                                    seed=seed,
                                )
                            )
    return scenarios


def with_seed(scenario: SoakScenario, seed: int) -> SoakScenario:
    """The same scenario under a different seed (dataclasses.replace
    preserving the frozen spec)."""
    return replace(scenario, seed=seed)
