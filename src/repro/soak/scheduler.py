"""Degradation-aware periodic scheduling for long-horizon soak runs.

This is the soak rewrite of :mod:`repro.bist.scheduler`: the same
cycle-based discrete-event simulation (workload owns busy cycles, the
BIST steals idle ones, a system write aborts the in-flight session),
grown into the paper's deployment story:

* faults **arrive over time** from a :class:`~repro.soak.arrivals.
  FaultTimeline` — permanent, transient (withdrawn after a window) and
  intermittent (duty-cycled) episodes toggle in and out of the
  :class:`~repro.memory.injection.FaultyMemory` mid-run;
* the transparent test runs **periodically under a budget**: each
  period grants at most ``budget`` BIST operations, the scheduler
  launches one session per period and resumes (restarts) it after
  interfering writes while budget remains;
* when the budget **starves** the test, the scheduler degrades down an
  explicit ladder — primary catalog test → shorter fallback test →
  fallback at 2x, 4x, ... the period — and climbs back after sustained
  healthy periods.  Periods that complete no session at the bottom
  rung are accounted as ``starved`` (mirroring the campaign runner's
  retry → degrade → fail-loudly contract);
* every completed session runs the MISR pair *and* the streaming
  alias-free checker (``track_stream=True``), so signature detections,
  aliasing escapes (stream mismatch, signatures equal) and detection
  latency per fault episode are all measured exactly;
* a signature detection triggers an offline diagnosis pass
  (:func:`~repro.analysis.diagnosis.diagnose_memory`) whose suspect
  cells attribute the detection to concrete fault episodes — the
  per-scenario diagnosis-accuracy figure.

Everything in the resulting :class:`SoakReport` is a pure function of
``(memory geometry, tests, schedule, timeline, workload seed)``: no
wall clock, no global RNG, no hash-ordered iteration — the property
the campaign layer's checkpoint/resume and chaos recovery rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.diagnosis import diagnose_memory
from ..bist.scheduler import SessionStepper, Workload
from ..core.march import MarchTest
from ..memory.faults import AddressDecoderFault
from ..memory.injection import FaultyMemory
from .arrivals import FaultTimeline


@dataclass(frozen=True)
class SoakSchedule:
    """Idle/duty-cycle budget of the periodic test.

    ``period`` is the nominal cycle count between session launches,
    ``budget`` the BIST operations granted per period (``None`` =
    unlimited), ``max_widen`` the largest period multiplier the
    degradation ladder may reach.  ``starvation_window`` consecutive
    zero-session periods trigger one rung down;
    ``recovery_window`` consecutive healthy periods climb one rung up.
    """

    period: int = 1500
    ops_per_idle_cycle: int = 8
    budget: int | None = None
    max_widen: int = 4
    starvation_window: int = 2
    recovery_window: int = 4

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.ops_per_idle_cycle < 1:
            raise ValueError("ops_per_idle_cycle must be >= 1")
        if self.budget is not None and self.budget < 1:
            raise ValueError("budget must be >= 1 (or None)")
        if self.max_widen < 1:
            raise ValueError("max_widen must be >= 1")
        if self.starvation_window < 1 or self.recovery_window < 1:
            raise ValueError("ladder windows must be >= 1")

    def as_dict(self) -> dict:
        return {
            "period": self.period,
            "ops_per_idle_cycle": self.ops_per_idle_cycle,
            "budget": self.budget,
            "max_widen": self.max_widen,
            "starvation_window": self.starvation_window,
            "recovery_window": self.recovery_window,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SoakSchedule":
        return cls(**payload)


@dataclass(frozen=True)
class TestRung:
    """One catalog test on the ladder: label + transparent test pair."""

    label: str
    test: MarchTest
    prediction: MarchTest

    def __post_init__(self) -> None:
        if not self.test.is_transparent_form:
            raise ValueError(f"rung {self.label!r} needs a transparent test")


@dataclass
class EpisodeOutcome:
    """One fault episode's fate in a finished scenario (JSON-safe)."""

    index: int
    flavor: str
    kind: str
    description: str
    start: int
    end: int | None
    detected_cycle: int | None = None
    attribution: str | None = None  # "suspects" | "window" | None

    @property
    def latency(self) -> int | None:
        if self.detected_cycle is None:
            return None
        return self.detected_cycle - self.start

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "flavor": self.flavor,
            "kind": self.kind,
            "description": self.description,
            "start": self.start,
            "end": self.end,
            "detected_cycle": self.detected_cycle,
            "attribution": self.attribution,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EpisodeOutcome":
        return cls(**payload)


@dataclass
class SoakReport:
    """Everything one soak scenario measured.

    Deterministic and value-comparable: two runs of the same scenario
    spec and seed produce equal reports, which is what the campaign
    layer's chaos and checkpoint/resume guarantees are asserted
    against.
    """

    scenario: str
    cycles: int
    idle_cycles: int = 0
    busy_reads: int = 0
    busy_writes: int = 0
    bist_ops: int = 0
    diagnosis_ops: int = 0
    sessions_completed: int = 0
    sessions_aborted: int = 0
    aborted_in_prediction: int = 0
    aborted_in_test: int = 0
    sessions_detecting: int = 0
    aliasing_escapes: int = 0
    spurious_detections: int = 0
    periods: int = 0
    starved_periods: int = 0
    degradations: int = 0
    recoveries: int = 0
    final_step: str = ""
    diagnoses: int = 0
    diagnoses_correct: int = 0
    episodes: list[EpisodeOutcome] = field(default_factory=list)

    @property
    def arrivals(self) -> int:
        return len(self.episodes)

    @property
    def detections(self) -> int:
        return sum(1 for e in self.episodes if e.detected_cycle is not None)

    @property
    def detection_latencies(self) -> list[int]:
        return [e.latency for e in self.episodes if e.latency is not None]

    @property
    def missed(self) -> int:
        return sum(1 for e in self.episodes if e.detected_cycle is None)

    @property
    def missed_transient_windows(self) -> int:
        """Transient/intermittent episodes that came and went without a
        detecting session — the window was simply never tested."""
        return sum(
            1
            for e in self.episodes
            if e.detected_cycle is None and e.flavor != "permanent"
        )

    @property
    def diagnosis_accuracy(self) -> float | None:
        if not self.diagnoses:
            return None
        return self.diagnoses_correct / self.diagnoses

    def as_dict(self) -> dict:
        payload = {
            key: getattr(self, key)
            for key in (
                "scenario", "cycles", "idle_cycles", "busy_reads",
                "busy_writes", "bist_ops", "diagnosis_ops",
                "sessions_completed", "sessions_aborted",
                "aborted_in_prediction", "aborted_in_test",
                "sessions_detecting", "aliasing_escapes",
                "spurious_detections", "periods", "starved_periods",
                "degradations", "recoveries", "final_step",
                "diagnoses", "diagnoses_correct",
            )
        }
        payload["episodes"] = [e.as_dict() for e in self.episodes]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SoakReport":
        data = dict(payload)
        data["episodes"] = [
            EpisodeOutcome.from_dict(e) for e in data["episodes"]
        ]
        return cls(**data)


class SoakScheduler:
    """Runs the periodic transparent test through a fault timeline.

    ``primary`` is the full catalog test, ``fallback`` the shorter
    test the ladder degrades to (``None`` = widen the primary only).
    """

    def __init__(
        self,
        memory: FaultyMemory,
        primary: TestRung,
        fallback: TestRung | None,
        schedule: SoakSchedule,
        timeline: FaultTimeline,
        *,
        misr_width: int = 16,
        rng: random.Random | None = None,
        diagnose: bool = True,
        scenario_name: str = "soak",
    ) -> None:
        self.memory = memory
        self.schedule = schedule
        self.timeline = timeline
        self.misr_width = misr_width
        self.rng = rng if rng is not None else random.Random(0)
        self.diagnose = diagnose
        self.scenario_name = scenario_name
        self.steps: list[tuple[TestRung, int]] = [(primary, 1)]
        short = fallback if fallback is not None else primary
        if fallback is not None:
            self.steps.append((fallback, 1))
        widen = 2
        while widen <= schedule.max_widen:
            self.steps.append((short, widen))
            widen *= 2

    @staticmethod
    def step_label(rung: TestRung, widen: int) -> str:
        return rung.label if widen == 1 else f"{rung.label} x{widen}"

    def run(self, workload: Workload, cycles: int) -> SoakReport:
        report = SoakReport(scenario=self.scenario_name, cycles=cycles)
        outcomes = {
            ep.index: EpisodeOutcome(
                ep.index,
                ep.flavor,
                ep.fault.kind,
                ep.fault.describe(),
                ep.start,
                ep.end,
            )
            for ep in self.timeline
        }
        episodes = {ep.index: ep for ep in self.timeline}
        events = self.timeline.toggle_events(cycles)
        injected: set[int] = set()

        step = 0
        session: SessionStepper | None = None
        session_start = 0
        completed_this_period = 0
        starved_streak = healthy_streak = 0
        budget_left = self.schedule.budget
        period_start = 0
        period_end = self.schedule.period * self.steps[0][1]

        for cycle in range(cycles):
            # -- period boundary: health accounting + ladder moves ----
            if cycle >= period_end:
                report.periods += 1
                if completed_this_period == 0:
                    starved_streak += 1
                    healthy_streak = 0
                    if step == len(self.steps) - 1:
                        report.starved_periods += 1
                else:
                    healthy_streak += 1
                    starved_streak = 0
                if (
                    starved_streak >= self.schedule.starvation_window
                    and step < len(self.steps) - 1
                ):
                    step += 1
                    report.degradations += 1
                    starved_streak = healthy_streak = 0
                    if session is not None:
                        # The in-flight session belongs to the old
                        # rung; restart on the new one.
                        session = None
                elif (
                    healthy_streak >= self.schedule.recovery_window
                    and step > 0
                ):
                    step -= 1
                    report.recoveries += 1
                    starved_streak = healthy_streak = 0
                completed_this_period = 0
                budget_left = self.schedule.budget
                period_start = cycle
                period_end = period_start + (
                    self.schedule.period * self.steps[step][1]
                )

            # -- fault weather: episodes toggling in and out ----------
            for index, active in events.get(cycle, ()):
                if active and index not in injected:
                    self.memory.inject(episodes[index].fault)
                    injected.add(index)
                elif not active and index in injected:
                    self.memory.remove(episodes[index].fault)
                    injected.discard(index)

            # -- workload owns the memory this cycle? -----------------
            access = workload(cycle, self.rng)
            if access is not None:
                if access.kind == "w":
                    self.memory.write(access.addr, access.value)
                    report.busy_writes += 1
                    if session is not None:
                        report.sessions_aborted += 1
                        if session.phase == "prediction":
                            report.aborted_in_prediction += 1
                        else:
                            report.aborted_in_test += 1
                        session = None
                else:
                    self.memory.read(access.addr)
                    report.busy_reads += 1
                continue

            # -- idle: advance (or launch) the periodic session -------
            report.idle_cycles += 1
            if session is None:
                if completed_this_period > 0:
                    continue  # this period's test already ran
                if budget_left is not None and budget_left <= 0:
                    continue  # budget starved: wait for the next period
                rung, _ = self.steps[step]
                session = SessionStepper(
                    self.memory,
                    rung.test,
                    rung.prediction,
                    self.misr_width,
                    track_stream=True,
                )
                session_start = cycle
            ops = self.schedule.ops_per_idle_cycle
            if budget_left is not None:
                ops = min(ops, budget_left)
                if ops == 0:
                    continue
            done = session.step(ops)
            report.bist_ops += done
            if budget_left is not None:
                budget_left -= done
            if session.finished:
                report.sessions_completed += 1
                completed_this_period += 1
                if session.stream_detected and not session.detected:
                    report.aliasing_escapes += 1
                if session.detected:
                    report.sessions_detecting += 1
                    self._attribute_detection(
                        report, outcomes, episodes, session_start, cycle
                    )
                session = None

        report.final_step = self.step_label(*self.steps[step])
        report.episodes = [outcomes[i] for i in sorted(outcomes)]
        return report

    def _attribute_detection(
        self,
        report: SoakReport,
        outcomes: dict[int, EpisodeOutcome],
        episodes: dict,
        session_start: int,
        cycle: int,
    ) -> None:
        """Map a detecting session onto the fault episodes it caught."""
        candidates = [
            index
            for index, outcome in sorted(outcomes.items())
            if outcome.detected_cycle is None
            and episodes[index].overlaps(session_start, cycle)
        ]
        matched: list[int] = []
        if self.diagnose and candidates:
            rung, _ = self.steps[0]
            diagnosis = diagnose_memory(rung.test, self.memory)
            report.diagnoses += 1
            report.diagnosis_ops += rung.test.op_count * self.memory.n_words
            suspects = diagnosis.suspect_cells()
            for index in candidates:
                fault = episodes[index].fault
                cells = {(c.addr, c.bit) for c in fault.cells}
                if cells & suspects:
                    matched.append(index)
                elif (
                    isinstance(fault, AddressDecoderFault)
                    and diagnosis.classification == "address-decoder"
                ):
                    matched.append(index)
            if matched:
                report.diagnoses_correct += 1
        targets = matched if matched else candidates
        attribution = "suspects" if matched else "window"
        if not targets:
            # Signature mismatch with no live episode in the session
            # window (e.g. the residue of a withdrawn transient that
            # flipped content between the two phases).
            report.spurious_detections += 1
            return
        for index in targets:
            outcomes[index].detected_cycle = cycle
            outcomes[index].attribution = attribution
