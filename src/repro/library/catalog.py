"""Catalog of classic bit-oriented March tests from the literature.

Each entry records the notation, the source reference, and the fault
classes the test is known to detect (100 % coverage under the
single-fault assumption, per the cited papers).  The catalog feeds the
transformation algorithms and the reproduction benchmarks; March C− and
March U are the two tests evaluated in the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.march import MarchTest
from ..core.notation import parse_march
from ..memory.faults import FAULT_KINDS


@dataclass(frozen=True)
class CatalogEntry:
    """A March test together with its literature metadata."""

    test: MarchTest
    reference: str
    detects: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        unknown = self.detects - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"catalog entry {self.test.name!r} claims unknown fault "
                f"kinds {sorted(unknown)}; known kinds: "
                f"{', '.join(FAULT_KINDS)}"
            )

    @property
    def name(self) -> str:
        return self.test.name


def _entry(name: str, notation: str, reference: str, detects: set[str]) -> CatalogEntry:
    return CatalogEntry(parse_march(notation, name), reference, frozenset(detects))


_ENTRIES = [
    _entry(
        "MATS",
        "⇕(w0); ⇕(r0,w1); ⇕(r1)",
        "Nair, 1979",
        {"SAF"},
    ),
    _entry(
        "MATS+",
        "⇕(w0); ⇑(r0,w1); ⇓(r1,w0)",
        "Abadir & Reghbati, 1983",
        {"SAF"},
    ),
    _entry(
        "March X",
        "⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)",
        "van de Goor, 1991",
        {"SAF", "TF", "CFin"},
    ),
    _entry(
        "March Y",
        "⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)",
        "van de Goor, 1991",
        {"SAF", "TF", "CFin"},
    ),
    _entry(
        "March C-",
        "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)",
        "Marinescu, 1982 / van de Goor, 1993 [14]",
        {"SAF", "TF", "CFin", "CFid", "CFst"},
    ),
    _entry(
        "March C",
        "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇕(r0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)",
        "Marinescu, 1982",
        {"SAF", "TF", "CFin", "CFid", "CFst"},
    ),
    _entry(
        "March A",
        "⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)",
        "Suk & Reddy, 1981",
        {"SAF", "TF", "CFin"},
    ),
    _entry(
        "March B",
        "⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)",
        "Suk & Reddy, 1981",
        {"SAF", "TF", "CFin"},
    ),
    _entry(
        "March U",
        "⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)",
        "van de Goor & Gaydadjiev, 1997 [15]",
        {"SAF", "TF", "CFin", "CFid", "CFst"},
    ),
    _entry(
        "March LR",
        "⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇑(r0)",
        "van de Goor et al., 1996",
        {"SAF", "TF", "CFin", "CFid", "CFst"},
    ),
    _entry(
        "March SR",
        "⇓(w0); ⇑(r0,w1,r1,w0); ⇑(r0,r0); ⇑(w1); ⇓(r1,w0,r0,w1); ⇓(r1,r1)",
        "Hamdioui & van de Goor, 2000",
        {"SAF", "TF", "CFin", "CFid", "CFst"},
    ),
    _entry(
        "March SS",
        "⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); "
        "⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)",
        "Hamdioui, van de Goor & Rodgers, 2002",
        {"SAF", "TF", "CFin", "CFid", "CFst", "RDF", "DRDF"},
    ),
    _entry(
        "March RAW",
        "⇕(w0); ⇑(r0,w0,r0,r0,w1,r1); ⇑(r1,w1,r1,r1,w0,r0); "
        "⇓(r0,w0,r0,r0,w1,r1); ⇓(r1,w1,r1,r1,w0,r0); ⇕(r0)",
        "Hamdioui, Al-Ars & van de Goor, 2003",
        {"SAF", "TF", "CFin", "CFid", "CFst", "RDF", "DRDF"},
    ),
]

CATALOG: dict[str, CatalogEntry] = {e.name: e for e in _ENTRIES}


def get(name: str) -> MarchTest:
    """Look up a March test by name (raises ``KeyError`` if unknown)."""
    try:
        return CATALOG[name].test
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown march test {name!r}; known tests: {known}") from None


def entry(name: str) -> CatalogEntry:
    """Look up a catalog entry (test + metadata) by name."""
    if name not in CATALOG:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown march test {name!r}; known tests: {known}")
    return CATALOG[name]


def names() -> list[str]:
    """All catalog test names, in canonical order."""
    return [e.name for e in _ENTRIES]


# Convenience module-level handles for the two tests evaluated in the paper.
MARCH_CM = get("March C-")
MARCH_U = get("March U")
