"""Catalog of classic March tests."""

from .catalog import CATALOG, MARCH_CM, MARCH_U, CatalogEntry, entry, get, names

__all__ = [
    "CATALOG",
    "CatalogEntry",
    "MARCH_CM",
    "MARCH_U",
    "entry",
    "get",
    "names",
]
