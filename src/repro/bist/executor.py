"""March-test execution against a memory model (engine facade).

The executor implements *operational* transparent semantics: the data of
a content-relative write is computed from the most recent read of the
same element-visit (raw read value XOR the pattern difference), exactly
as the BIST hardware's XOR network derives write-back data from read
data.  On a faulty memory this faithfully propagates wrong read data
into subsequent writes — a first-order effect of transparent testing
that expected-value shortcuts would miss.

Since the engine refactor the actual execution lives in
:mod:`repro.engine`: a :class:`~repro.core.march.MarchTest` is lowered
once to a compiled :class:`~repro.engine.program.MarchProgram` and run
by a pluggable backend.  :func:`run_march` keeps the historical
interface and delegates to the registry (``engine="reference"`` by
default); campaign-scale batch evaluation lives in
:meth:`repro.engine.Engine.detect_batch` and
:func:`repro.analysis.coverage.run_campaign`.

Detection oracles:

* *compare mode* — every read is checked against the value the
  fault-free test would produce given the memory content at test start
  (this equals an alias-free two-phase signature session, see
  :mod:`repro.bist.controller`);
* *signature mode* — the controller runs the prediction and test
  phases through a real MISR and compares signatures (aliasing
  possible).
"""

from __future__ import annotations

from typing import Sequence

from ..core.march import MarchTest
from ..engine import (
    Engine,
    ExecutionError,
    ReadRecord,
    ReadSink,
    RunResult,
    get_engine,
)
from ..memory.model import Memory

__all__ = [
    "ExecutionError",
    "ReadRecord",
    "ReadSink",
    "RunResult",
    "read_stream",
    "run_march",
    "transparent_writes_derivable",
]


def run_march(
    test: MarchTest,
    memory: Memory,
    *,
    snapshot: Sequence[int] | None = None,
    collect: bool = False,
    stop_on_mismatch: bool = False,
    read_sink: ReadSink | None = None,
    derive_writes: bool = True,
    engine: str | Engine | None = None,
) -> RunResult:
    """Execute *test* on *memory*.

    ``snapshot`` is the reference initial content used to compute
    expected read values for content-relative operations; by default the
    memory content at call time.  With ``collect=True`` every read is
    recorded; ``stop_on_mismatch`` aborts at the first failing read
    (useful for large fault campaigns); ``read_sink`` receives every
    read record (e.g. to feed a MISR).

    ``derive_writes`` selects the write datapath for content-relative
    writes: ``True`` (default) is the operational BIST semantics — the
    write value is computed from the most recent read of the same
    element-visit; ``False`` is an idealised oracle that writes the
    fault-free value ``snapshot[addr] ^ mask``.  The oracle mode makes a
    transparent run the exact XOR image of the corresponding
    non-transparent run, which the Section 5 coverage-equality
    experiment relies on.

    ``engine`` selects the simulation backend by name or instance
    (default: the reference interpreter).
    """
    return get_engine(engine).run(
        test,
        memory,
        snapshot=snapshot,
        collect=collect,
        stop_on_mismatch=stop_on_mismatch,
        read_sink=read_sink,
        derive_writes=derive_writes,
    )


def transparent_writes_derivable(test: MarchTest) -> bool:
    """Static check of the executor's write-derivation requirement.

    True when every content-relative write is preceded by a read within
    its own element (so the XOR network always has read data to work
    from).  All tests produced by the library's transformations satisfy
    this by construction.
    """
    for element in test.elements:
        seen_read = False
        for op in element.ops:
            if op.is_read:
                seen_read = True
            elif op.is_relative and not seen_read:
                return False
    return True


def read_stream(
    test: MarchTest,
    memory: Memory,
    *,
    snapshot: Sequence[int] | None = None,
    engine: str | Engine | None = None,
) -> list[int]:
    """The raw read-data stream of executing *test* on *memory*."""
    stream: list[int] = []
    run_march(
        test,
        memory,
        snapshot=snapshot,
        read_sink=lambda rec: stream.append(rec.raw),
        engine=engine,
    )
    return stream
