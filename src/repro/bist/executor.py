"""March-test execution against a memory model.

The executor implements *operational* transparent semantics: the data of
a content-relative write is computed from the most recent read of the
same element-visit (raw read value XOR the pattern difference), exactly
as the BIST hardware's XOR network derives write-back data from read
data.  On a faulty memory this faithfully propagates wrong read data
into subsequent writes — a first-order effect of transparent testing
that expected-value shortcuts would miss.

Detection oracles:

* *compare mode* — every read is checked against the value the
  fault-free test would produce given the memory content at test start
  (this equals an alias-free two-phase signature session, see
  :mod:`repro.bist.controller`);
* *signature mode* — the controller runs the prediction and test
  phases through a real MISR and compares signatures (aliasing
  possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.march import MarchTest
from ..core.ops import Op
from ..memory.model import Memory


class ExecutionError(RuntimeError):
    """Raised when a test is not executable on the given memory."""


@dataclass(frozen=True)
class ReadRecord:
    """One read observation during a march run."""

    op_index: int
    element_index: int
    addr: int
    raw: int
    expected: int
    mask_value: int

    @property
    def mismatch(self) -> bool:
        return self.raw != self.expected


@dataclass
class RunResult:
    """Outcome of executing a march test."""

    ops_executed: int = 0
    n_reads: int = 0
    n_mismatches: int = 0
    records: list[ReadRecord] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def detected(self) -> bool:
        """True when at least one read disagreed with the fault-free value."""
        return self.n_mismatches > 0


ReadSink = Callable[[ReadRecord], None]


def run_march(
    test: MarchTest,
    memory: Memory,
    *,
    snapshot: Sequence[int] | None = None,
    collect: bool = False,
    stop_on_mismatch: bool = False,
    read_sink: ReadSink | None = None,
    derive_writes: bool = True,
) -> RunResult:
    """Execute *test* on *memory*.

    ``snapshot`` is the reference initial content used to compute
    expected read values for content-relative operations; by default the
    memory content at call time.  With ``collect=True`` every read is
    recorded; ``stop_on_mismatch`` aborts at the first failing read
    (useful for large fault campaigns); ``read_sink`` receives every
    read record (e.g. to feed a MISR).

    ``derive_writes`` selects the write datapath for content-relative
    writes: ``True`` (default) is the operational BIST semantics — the
    write value is computed from the most recent read of the same
    element-visit; ``False`` is an idealised oracle that writes the
    fault-free value ``snapshot[addr] ^ mask``.  The oracle mode makes a
    transparent run the exact XOR image of the corresponding
    non-transparent run, which the Section 5 coverage-equality
    experiment relies on.
    """
    width = memory.width
    initial = list(snapshot) if snapshot is not None else memory.snapshot()
    if len(initial) != memory.n_words:
        raise ExecutionError("snapshot length does not match memory size")

    result = RunResult()
    op_index = 0
    for element_index, element in enumerate(test.elements):
        resolved = [
            (op, op.data.mask.resolve(width)) for op in element.ops
        ]
        for addr in element.order.addresses(memory.n_words):
            last_raw: int | None = None
            last_mask: int | None = None
            for op, mask_value in resolved:
                if op.is_read:
                    raw = memory.read(addr)
                    expected = _expected(op, mask_value, initial[addr])
                    record = ReadRecord(
                        op_index, element_index, addr, raw, expected, mask_value
                    )
                    result.n_reads += 1
                    if record.mismatch:
                        result.n_mismatches += 1
                    if collect:
                        result.records.append(record)
                    if read_sink is not None:
                        read_sink(record)
                    last_raw, last_mask = raw, mask_value
                    result.ops_executed += 1
                    if record.mismatch and stop_on_mismatch:
                        result.stopped_early = True
                        return result
                else:
                    if op.is_relative and derive_writes:
                        if last_raw is None or last_mask is None:
                            raise ExecutionError(
                                f"{test.name}: transparent write {op} at element "
                                f"{element_index} has no preceding read in its "
                                "element-visit; the BIST datapath cannot derive "
                                "its data"
                            )
                        value = last_raw ^ last_mask ^ mask_value
                    elif op.is_relative:
                        value = initial[addr] ^ mask_value
                    else:
                        value = mask_value
                    memory.write(addr, value)
                    result.ops_executed += 1
                op_index += 1
    return result


def _expected(op: Op, mask_value: int, initial_word: int) -> int:
    if op.is_relative:
        return initial_word ^ mask_value
    return mask_value


def transparent_writes_derivable(test: MarchTest) -> bool:
    """Static check of the executor's write-derivation requirement.

    True when every content-relative write is preceded by a read within
    its own element (so the XOR network always has read data to work
    from).  All tests produced by the library's transformations satisfy
    this by construction.
    """
    for element in test.elements:
        seen_read = False
        for op in element.ops:
            if op.is_read:
                seen_read = True
            elif op.is_relative and not seen_read:
                return False
    return True


def read_stream(
    test: MarchTest, memory: Memory, *, snapshot: Sequence[int] | None = None
) -> list[int]:
    """The raw read-data stream of executing *test* on *memory*."""
    stream: list[int] = []
    run_march(
        test,
        memory,
        snapshot=snapshot,
        read_sink=lambda rec: stream.append(rec.raw),
    )
    return stream
