"""Periodic transparent testing in system idle time.

Transparent tests run non-concurrently: the BIST borrows the memory
during idle cycles and must leave the content intact.  This module
models that life-time scenario as a cycle-based discrete-event
simulation:

* each cycle the *workload* either accesses the memory (busy) or leaves
  it idle; the BIST executes a bounded number of test operations per
  idle cycle;
* a system **write** during an active session invalidates the predicted
  signature (the content the prediction pass hashed has changed), so
  the session aborts and restarts — this is why the paper stresses that
  *shorter tests reduce the probability of interference*;
* permanent faults can be injected mid-simulation; the report records
  the detection latency (fault injection to first failing session).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..core.march import MarchTest
from ..core.signature import prediction_test
from ..memory.model import Memory
from ..memory.traces import AccessEvent
from .misr import Misr


@dataclass
class SchedulerReport:
    """Outcome of an online-testing simulation."""

    cycles: int = 0
    idle_cycles: int = 0
    sessions_completed: int = 0
    sessions_aborted: int = 0
    detections: list[int] = field(default_factory=list)
    fault_cycle: int | None = None

    @property
    def detection_latency(self) -> int | None:
        """Cycles from fault injection to the first detecting session."""
        if self.fault_cycle is None:
            return None
        later = [c for c in self.detections if c >= self.fault_cycle]
        return (later[0] - self.fault_cycle) if later else None


Workload = Callable[[int, random.Random], AccessEvent | None]


def random_workload(
    n_words: int,
    width: int,
    *,
    idle_fraction: float = 0.5,
    write_fraction: float = 0.3,
) -> Workload:
    """A memoryless workload: idle with probability *idle_fraction*,
    otherwise a uniformly random read or write."""
    if not 0.0 <= idle_fraction <= 1.0:
        raise ValueError("idle_fraction must be in [0, 1]")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")

    def workload(cycle: int, rng: random.Random) -> AccessEvent | None:
        if rng.random() < idle_fraction:
            return None
        addr = rng.randrange(n_words)
        if rng.random() < write_fraction:
            return AccessEvent("w", addr, rng.randrange(1 << width))
        return AccessEvent("r", addr, 0)

    return workload


class SessionStepper:
    """Incremental two-phase BIST session (prediction then test).

    The stepper owns the snapshot semantics: expected values and
    prediction corrections refer to the memory content at session start.
    ``phase`` reports which phase the next operation belongs to
    (``"prediction"`` or ``"test"``), so a scheduler aborting on an
    interfering write can attribute the abort to the phase it hit.

    With ``track_stream=True`` the stepper also runs the alias-free
    checker next to the MISRs: the prediction phase's expected read
    stream is kept (bounded by one session, discarded at session end)
    and every test-phase read is compared against it on the fly, so a
    finished session reports ``stream_detected`` — the ground truth
    that exposes aliasing escapes (stream mismatch, signatures equal).
    """

    def __init__(
        self,
        memory: Memory,
        test: MarchTest,
        prediction: MarchTest,
        misr_width: int,
        *,
        track_stream: bool = False,
    ) -> None:
        self.memory = memory
        self.snapshot = memory.snapshot()
        self.predict_misr = Misr(misr_width)
        self.test_misr = Misr(misr_width)
        self.phase = "prediction"
        self.track_stream = track_stream
        self.stream_mismatches = 0
        self._expected: list[int] = []
        self._cursor = 0
        self._ops = self._session(test, prediction)
        self.finished = False
        self.detected = False

    @property
    def stream_detected(self) -> bool:
        """Whether the alias-free elementwise compare saw a mismatch
        (only meaningful with ``track_stream=True``)."""
        return self.stream_mismatches > 0

    def _phase(self, test: MarchTest, predicting: bool) -> Iterator[None]:
        width = self.memory.width
        for element in test.elements:
            resolved = [(op, op.data.mask.resolve(width)) for op in element.ops]
            for addr in element.order.addresses(self.memory.n_words):
                last_raw = last_mask = None
                for op, mask_value in resolved:
                    if op.is_read:
                        raw = self.memory.read(addr)
                        if predicting:
                            self.predict_misr.absorb(raw ^ mask_value)
                            if self.track_stream:
                                self._expected.append(raw ^ mask_value)
                        else:
                            self.test_misr.absorb(raw)
                            if self.track_stream:
                                if (
                                    self._cursor >= len(self._expected)
                                    or self._expected[self._cursor] != raw
                                ):
                                    self.stream_mismatches += 1
                                self._cursor += 1
                        last_raw, last_mask = raw, mask_value
                    else:
                        if op.is_relative:
                            assert last_raw is not None and last_mask is not None
                            value = last_raw ^ last_mask ^ mask_value
                        else:
                            value = mask_value
                        self.memory.write(addr, value)
                    yield None

    def _session(self, test: MarchTest, prediction: MarchTest) -> Iterator[None]:
        yield from self._phase(prediction, predicting=True)
        self.phase = "test"
        yield from self._phase(test, predicting=False)

    def step(self, max_ops: int) -> int:
        """Execute up to *max_ops* operations; returns ops executed."""
        done = 0
        for _ in range(max_ops):
            try:
                next(self._ops)
            except StopIteration:
                self.finished = True
                self.phase = "done"
                self.detected = (
                    self.predict_misr.signature != self.test_misr.signature
                )
                self._expected.clear()
                break
            done += 1
        else:
            return done
        return done


# Historical private name, kept for callers written before the stepper
# became part of the public scheduling surface.
_SessionStepper = SessionStepper


class OnlineTestScheduler:
    """Schedules transparent BIST sessions into workload idle time."""

    def __init__(
        self,
        memory: Memory,
        test: MarchTest,
        prediction: MarchTest | None = None,
        *,
        misr_width: int = 16,
        ops_per_idle_cycle: int = 1,
        rng: random.Random | None = None,
    ) -> None:
        if not test.is_transparent_form:
            raise ValueError("online testing requires a transparent test")
        self.memory = memory
        self.test = test
        self.prediction = (
            prediction if prediction is not None else prediction_test(test)
        )
        self.misr_width = misr_width
        self.ops_per_idle_cycle = ops_per_idle_cycle
        self.rng = rng if rng is not None else random.Random(0)
        self._session: SessionStepper | None = None

    @property
    def session_ops(self) -> int:
        """Total BIST operations in one full session (TCP + TCM)."""
        return (self.prediction.op_count + self.test.op_count) * self.memory.n_words

    def run(
        self,
        workload: Workload,
        cycles: int,
        *,
        fault_at: tuple[int, Callable[[Memory], None]] | None = None,
    ) -> SchedulerReport:
        """Simulate *cycles* cycles of interleaved workload and testing.

        ``fault_at = (cycle, injector)`` calls ``injector(memory)`` at
        the given cycle (e.g. injecting a stuck-at into a
        :class:`~repro.memory.injection.FaultyMemory`).
        """
        report = SchedulerReport(cycles=cycles)
        for cycle in range(cycles):
            if fault_at is not None and cycle == fault_at[0]:
                fault_at[1](self.memory)
                report.fault_cycle = cycle

            access = workload(cycle, self.rng)
            if access is not None:
                # System owns the memory this cycle.
                if access.kind == "w":
                    self.memory.write(access.addr, access.value)
                    if self._session is not None:
                        # Content changed under the session: predicted
                        # signature is stale. Abort and retry later.
                        self._session = None
                        report.sessions_aborted += 1
                else:
                    self.memory.read(access.addr)
                continue

            report.idle_cycles += 1
            if self._session is None:
                self._session = SessionStepper(
                    self.memory, self.test, self.prediction, self.misr_width
                )
            self._session.step(self.ops_per_idle_cycle)
            if self._session.finished:
                report.sessions_completed += 1
                if self._session.detected:
                    report.detections.append(cycle)
                self._session = None
        return report
