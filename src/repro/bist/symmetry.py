"""Symmetric transparent BIST (Yarmolik & Hellebrand, DATE 1999 — the
paper's reference [18]).

The two-phase schemes this repository centres on spend ``TCP`` reads on
signature *prediction*.  The symmetric methodology removes that phase:
if the fault-free signature of the transparent test is **independent of
the memory content**, it can be precomputed once, and a session is just
the test phase plus one compare.

Content independence is a property of the (test, compactor) pair.
Because every compactor here is linear over GF(2), the fault-free
signature is an affine function of the content bits::

    S(c) = S0  XOR  (+) { A[w][j] : bit j of word w is 1 }

and the test is *symmetric* iff every ``A[w][j]`` is zero.  This module
computes the dependence matrix by basis simulation, checks symmetry,
and implements the classic symmetrization for the order-insensitive
XOR-accumulator compactor: each word's reads contribute
``(count mod 2) * c_w XOR (XOR of read masks)``, so appending one
``⇕(rc)`` element when the per-word read count is odd makes the
signature constant.  (With a shifting MISR the time position of every
read matters and [18] instead co-designs the register; the dependence
matrix makes that precise — see the A4 benchmark.)

The trade-off is aliasing: an XOR accumulator is order-insensitive and
masks even-multiplicity errors, which the benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.element import AddressOrder, MarchElement
from ..core.march import MarchTest
from ..core.ops import DataExpr, Mask, Op
from ..memory.model import Memory
from .executor import run_march
from .misr import Misr


class XorAccumulator:
    """Order-insensitive linear compactor: the XOR of all inputs.

    Same interface as :class:`~repro.bist.misr.Misr`; folding of wide
    inputs matches the MISR's behaviour.
    """

    def __init__(self, width: int = 16, seed: int = 0) -> None:
        if width < 1:
            raise ValueError("accumulator width must be >= 1")
        self.width = width
        self.mask = (1 << width) - 1
        self._seed = seed & self.mask
        self.state = self._seed
        self.absorbed = 0

    def fold(self, value: int) -> int:
        folded = 0
        while value:
            folded ^= value & self.mask
            value >>= self.width
        return folded

    def absorb(self, value: int) -> None:
        self.state ^= self.fold(value)
        self.absorbed += 1

    def absorb_all(self, values) -> None:
        for value in values:
            self.absorb(value)

    @property
    def signature(self) -> int:
        return self.state

    def reset(self) -> None:
        self.state = self._seed
        self.absorbed = 0

    def spawn(self) -> "XorAccumulator":
        return XorAccumulator(self.width, self._seed)


@dataclass(frozen=True)
class DependenceReport:
    """Content dependence of a transparent test's fault-free signature."""

    base_signature: int
    dependence: dict[tuple[int, int], int]  # (word, bit) -> signature delta

    @property
    def symmetric(self) -> bool:
        return not self.dependence

    @property
    def dependent_cells(self) -> int:
        return len(self.dependence)


def _fault_free_signature(
    test: MarchTest, n_words: int, width: int, content: list[int], compactor
) -> int:
    memory = Memory(n_words, width)
    memory.load(content)
    sink = compactor.spawn()
    run_march(test, memory, read_sink=lambda rec: sink.absorb(rec.raw))
    return sink.signature


def content_dependence(
    test: MarchTest,
    n_words: int,
    width: int,
    compactor=None,
) -> DependenceReport:
    """Compute the GF(2) dependence of the signature on every content bit.

    By linearity, ``A[w][j] = S(e_wj) XOR S(0)`` where ``e_wj`` is the
    content with only bit ``j`` of word ``w`` set — one fault-free
    simulation per cell plus one for the base.
    """
    if not test.is_transparent_form:
        raise ValueError("content dependence is defined for transparent tests")
    compactor = compactor if compactor is not None else Misr(16)
    zero = [0] * n_words
    base = _fault_free_signature(test, n_words, width, zero, compactor)
    dependence: dict[tuple[int, int], int] = {}
    for w in range(n_words):
        for j in range(width):
            content = list(zero)
            content[w] = 1 << j
            sig = _fault_free_signature(test, n_words, width, content, compactor)
            if sig != base:
                dependence[(w, j)] = sig ^ base
    return DependenceReport(base, dependence)


def is_symmetric(
    test: MarchTest, n_words: int, width: int, compactor=None
) -> bool:
    """True when the fault-free signature is content-independent."""
    return content_dependence(test, n_words, width, compactor).symmetric


def reads_per_word(test: MarchTest) -> int:
    """Reads each word receives in one run (uniform for March tests)."""
    return test.n_reads


def symmetrize(test: MarchTest, lanes: int = 1) -> MarchTest:
    """Make *test* symmetric under a *lanes*-way interleaved compactor.

    With an order-insensitive XOR compactor (``lanes=1``), word ``w``
    contributes ``(Q_w mod 2) * c_w XOR (XOR of its read masks)`` to the
    signature, so an even per-word read count cancels the content term.
    A lane compactor routes each word's ``k``-th read to lane
    ``k mod lanes``; the content cancels iff every lane receives an even
    number of the word's reads, i.e. the per-word read count is a
    multiple of ``2 * lanes``.  March tests read every word the same
    number of times with the same masks, so appending ``⇕(rc)`` read
    elements until that multiple is reached symmetrizes any transparent
    March test (at most ``2*lanes - 1`` extra reads).  Returns *test*
    unchanged when already balanced.
    """
    if not test.is_transparent_form:
        raise ValueError("symmetrization applies to transparent tests")
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    modulus = 2 * lanes
    deficit = (-reads_per_word(test)) % modulus
    if deficit == 0:
        return test
    balance = MarchElement(
        AddressOrder.ANY, (Op.read(DataExpr(True, Mask.ZERO)),)
    )
    return MarchTest(
        f"{test.name} (symmetric/{lanes})",
        test.elements + (balance,) * deficit,
        notes=f"{test.notes} + {deficit} balancing reads for "
        "symmetric BIST".strip(),
    )


def reference_signature(
    test: MarchTest, n_words: int, width: int, compactor=None
) -> int:
    """The content-independent fault-free signature of a symmetric test.

    Raises ``ValueError`` if the test is not symmetric under the given
    compactor (the reference would then be content-dependent and
    useless).
    """
    compactor = compactor if compactor is not None else XorAccumulator(16)
    report = content_dependence(test, n_words, width, compactor)
    if not report.symmetric:
        raise ValueError(
            f"{test.name} is not symmetric: {report.dependent_cells} "
            "content bits leak into the signature"
        )
    return report.base_signature


class SymmetricBist:
    """Single-phase transparent BIST with a lane-interleaved compactor.

    Each word's ``k``-th read is XOR-folded into lane ``k mod lanes``,
    so the signature is a tuple of lane values.  With the per-word read
    count padded to a multiple of ``2*lanes`` (see :func:`symmetrize`)
    the fault-free signature is content-independent: it is computed
    once at construction (and verified against basis contents) and a
    session is just the test phase plus one compare — no prediction
    pass, mirroring TOMT's "no TCP" column in Table 2 but with a
    signature instead of an ECC checker.

    ``lanes=1`` degenerates to the plain XOR accumulator, whose
    even-multiplicity masking the A4 benchmark quantifies; ``lanes=3``
    (default) breaks the systematic cancellation at the cost of a
    3x-wide signature.
    """

    def __init__(
        self,
        test: MarchTest,
        n_words: int,
        width: int,
        *,
        lanes: int = 3,
        acc_width: int = 16,
        verify_cells: int | None = 8,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.test = symmetrize(test, lanes)
        self.n_words = n_words
        self.width = width
        self.lanes = lanes
        self.acc_width = acc_width
        self._fold_mask = (1 << acc_width) - 1
        self.reference = self._signature_of_content([0] * n_words)
        self._verify_symmetry(verify_cells)

    # -- signature plumbing ---------------------------------------------
    def _fold(self, value: int) -> int:
        folded = 0
        while value:
            folded ^= value & self._fold_mask
            value >>= self.acc_width
        return folded

    def _signature(self, memory: Memory) -> tuple[int, ...]:
        sigs = [0] * self.lanes
        ordinal: dict[int, int] = {}

        def sink(rec) -> None:
            k = ordinal.get(rec.addr, 0)
            ordinal[rec.addr] = k + 1
            sigs[k % self.lanes] ^= self._fold(rec.raw)

        run_march(self.test, memory, read_sink=sink)
        return tuple(sigs)

    def _signature_of_content(self, content: list[int]) -> tuple[int, ...]:
        memory = Memory(self.n_words, self.width)
        memory.load(content)
        return self._signature(memory)

    def _verify_symmetry(self, verify_cells: int | None) -> None:
        """Spot-check content independence on basis contents.

        ``verify_cells=None`` checks every cell (exact); an integer
        bounds the check for large memories.  March-test structure
        makes the per-word contribution identical across words, so the
        sampled check is already strong.
        """
        cells = [
            (w, j) for w in range(self.n_words) for j in range(self.width)
        ]
        if verify_cells is not None:
            cells = cells[:: max(1, len(cells) // verify_cells)]
        for w, j in cells:
            content = [0] * self.n_words
            content[w] = 1 << j
            if self._signature_of_content(content) != self.reference:
                raise ValueError(
                    f"{self.test.name} is not symmetric under the "
                    f"{self.lanes}-lane compactor (content bit ({w},{j}) "
                    "leaks into the signature)"
                )

    # -- public API --------------------------------------------------------
    def run(self, memory: Memory) -> bool:
        """One session; returns True when a fault is signalled."""
        if memory.n_words != self.n_words or memory.width != self.width:
            raise ValueError("memory dimensions differ from calibration")
        return self._signature(memory) != self.reference

    @property
    def session_ops(self) -> int:
        """Ops per word per session (compare with TCM+TCP of two-phase)."""
        return self.test.op_count
