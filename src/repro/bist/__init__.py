"""BIST substrate: execution, signature compaction, online scheduling."""

from .controller import BistOutcome, TransparentBist
from .executor import (
    ExecutionError,
    ReadRecord,
    RunResult,
    read_stream,
    run_march,
    transparent_writes_derivable,
)
from .lfsr import Lfsr, parity, tap_mask
from .misr import Misr, signature_of
from .scheduler import (
    OnlineTestScheduler,
    SchedulerReport,
    SessionStepper,
    random_workload,
)
from .symmetry import (
    DependenceReport,
    SymmetricBist,
    XorAccumulator,
    content_dependence,
    is_symmetric,
    reference_signature,
    symmetrize,
)

__all__ = [
    "BistOutcome",
    "DependenceReport",
    "ExecutionError",
    "Lfsr",
    "Misr",
    "OnlineTestScheduler",
    "ReadRecord",
    "RunResult",
    "SchedulerReport",
    "SessionStepper",
    "SymmetricBist",
    "TransparentBist",
    "XorAccumulator",
    "content_dependence",
    "is_symmetric",
    "parity",
    "random_workload",
    "read_stream",
    "reference_signature",
    "run_march",
    "signature_of",
    "symmetrize",
    "tap_mask",
    "transparent_writes_derivable",
]
