"""Multiple-input signature register (MISR) for test-response compaction.

A transparent BIST session compares the signature produced by the test
phase against the one computed by the signature-prediction phase; the
MISR compacts the read stream into a ``width``-bit signature with an
aliasing probability of about ``2**-width`` for random error patterns.

The register's next-state function is GF(2)-linear in both the state
and the input word (shifts, the tap-parity feedback and the XOR fold
all distribute over XOR).  The batched signature oracle of
:mod:`repro.engine.batch` exploits that linearity: the contribution of
every absorbed input bit to the final signature is a fixed vector, so a
fault's signature can be derived from the fault-free one by XOR-ing the
weights of the read bits it corrupts.  :func:`absorb_weight_table` and
:func:`fold_table` precompute those vectors; :func:`signature_of_stream`
produces the fault-free anchor in one optimized pass.
"""

from __future__ import annotations

import functools

from .lfsr import parity, tap_mask


class Misr:
    """A parallel-input signature register over GF(2).

    Input words wider than the register are folded by XOR-ing
    ``width``-bit chunks, which preserves the linearity of the
    compaction (hardware space compactors do the same).
    """

    def __init__(self, width: int = 16, seed: int = 0) -> None:
        if width < 1:
            raise ValueError("MISR width must be >= 1")
        self.width = width
        self.mask = (1 << width) - 1
        self.taps = tap_mask(width)
        self._seed = seed & self.mask
        self.state = self._seed
        self.absorbed = 0

    def fold(self, value: int) -> int:
        """Fold an arbitrarily wide input into ``width`` bits."""
        if value < 0:
            # Interpret a negative input by its two's-complement
            # magnitude bits (the arithmetic shift would never reach 0).
            value &= (1 << max(value.bit_length(), 1)) - 1
        folded = value & self.mask
        value >>= self.width
        while value:
            folded ^= value & self.mask
            value >>= self.width
        return folded

    def absorb(self, value: int) -> None:
        """Clock one input word into the register."""
        feedback = parity(self.state & self.taps)
        self.state = (((self.state << 1) & self.mask) | feedback) ^ self.fold(value)
        self.absorbed += 1

    def absorb_all(self, values) -> None:
        """Clock every word of *values* into the register.

        Semantically ``for v in values: self.absorb(v)``; the attribute
        lookups, the feedback parity and the chunk fold are hoisted into
        locals because signature campaigns push the whole read stream of
        every fault hypothesis through this loop.
        """
        state = self.state
        taps = self.taps
        mask = self.mask
        width = self.width
        count = 0
        for value in values:
            if value < 0:
                value &= (1 << max(value.bit_length(), 1)) - 1
            folded = value & mask
            rest = value >> width
            while rest:
                folded ^= rest & mask
                rest >>= width
            state = (
                ((state << 1) & mask) | ((state & taps).bit_count() & 1)
            ) ^ folded
            count += 1
        self.state = state
        self.absorbed += count

    @property
    def signature(self) -> int:
        return self.state

    def reset(self) -> None:
        self.state = self._seed
        self.absorbed = 0

    def spawn(self) -> "Misr":
        """A fresh register with identical configuration."""
        return Misr(self.width, self._seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Misr(width={self.width}, signature={self.state:#x})"


def signature_of(values, width: int = 16, seed: int = 0) -> int:
    """Convenience: the signature of an iterable of input words."""
    misr = Misr(width, seed)
    misr.absorb_all(values)
    return misr.signature


def signature_of_stream(
    values, *, width: int = 16, seed: int = 0
) -> tuple[int, int]:
    """Signature *and length* of an input stream in one pass.

    The batched signature oracle needs both: the stream length fixes
    the per-input linear weights (:func:`absorb_weight_table`) that turn
    a fault's read-stream diff into its signature diff.
    """
    misr = Misr(width, seed)
    misr.absorb_all(values)
    return misr.signature, misr.absorbed


@functools.lru_cache(maxsize=128)
def fold_table(input_width: int, width: int) -> tuple[int, ...]:
    """Register bit that input bit ``b`` folds into: ``b % width``.

    Precomputed per ``(input_width, width)`` so per-bit error
    attribution in the batched oracle indexes a tuple instead of
    dividing in its innermost loop.
    """
    if input_width < 1 or width < 1:
        raise ValueError("widths must be >= 1")
    return tuple(b % width for b in range(input_width))


@functools.lru_cache(maxsize=32)
def absorb_weight_table(
    n_inputs: int, width: int
) -> tuple[tuple[int, ...], ...]:
    """Per-input linear weights of an ``n_inputs``-long absorption.

    ``table[k][b]`` is the contribution of bit ``b`` of the *k*-th
    absorbed (already folded) input word to the final signature, i.e.
    ``A**(n_inputs-1-k)`` applied to the unit vector ``1 << b``, where
    ``A`` is the register's autonomous next-state map.  Because the
    register is GF(2)-linear, ``signature(faulty stream) ==
    signature(fault-free stream) XOR table[k][b]`` XOR-accumulated over
    every corrupted input bit ``(k, b)`` — the seed contribution cancels.

    Cached: a signature campaign rebuilds its context per fault class
    (and per shard chunk) with identical stream lengths.
    """
    if n_inputs < 0:
        raise ValueError("n_inputs must be >= 0")
    mask = (1 << width) - 1
    taps = tap_mask(width)
    table: list[tuple[int, ...]] = [()] * n_inputs
    current = tuple(1 << b for b in range(width))  # A**0 == identity
    for k in range(n_inputs - 1, -1, -1):
        table[k] = current
        if k:
            current = tuple(
                ((x << 1) & mask) | ((x & taps).bit_count() & 1)
                for x in current
            )
    return tuple(table)
