"""Multiple-input signature register (MISR) for test-response compaction.

A transparent BIST session compares the signature produced by the test
phase against the one computed by the signature-prediction phase; the
MISR compacts the read stream into a ``width``-bit signature with an
aliasing probability of about ``2**-width`` for random error patterns.
"""

from __future__ import annotations

from .lfsr import parity, tap_mask


class Misr:
    """A parallel-input signature register over GF(2).

    Input words wider than the register are folded by XOR-ing
    ``width``-bit chunks, which preserves the linearity of the
    compaction (hardware space compactors do the same).
    """

    def __init__(self, width: int = 16, seed: int = 0) -> None:
        if width < 1:
            raise ValueError("MISR width must be >= 1")
        self.width = width
        self.mask = (1 << width) - 1
        self.taps = tap_mask(width)
        self._seed = seed & self.mask
        self.state = self._seed
        self.absorbed = 0

    def fold(self, value: int) -> int:
        """Fold an arbitrarily wide input into ``width`` bits."""
        folded = 0
        value &= (1 << max(value.bit_length(), 1)) - 1
        while value:
            folded ^= value & self.mask
            value >>= self.width
        return folded

    def absorb(self, value: int) -> None:
        """Clock one input word into the register."""
        feedback = parity(self.state & self.taps)
        self.state = (((self.state << 1) & self.mask) | feedback) ^ self.fold(value)
        self.absorbed += 1

    def absorb_all(self, values) -> None:
        for value in values:
            self.absorb(value)

    @property
    def signature(self) -> int:
        return self.state

    def reset(self) -> None:
        self.state = self._seed
        self.absorbed = 0

    def spawn(self) -> "Misr":
        """A fresh register with identical configuration."""
        return Misr(self.width, self._seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Misr(width={self.width}, signature={self.state:#x})"


def signature_of(values, width: int = 16, seed: int = 0) -> int:
    """Convenience: the signature of an iterable of input words."""
    misr = Misr(width, seed)
    misr.absorb_all(values)
    return misr.signature
