"""Linear-feedback shift register primitives for the BIST datapath.

The tap table lists one maximal-length (primitive-polynomial) tap set
per register width, following the classic Xilinx XAPP052 table.  These
feed the MISR signature analyser and can also serve as pseudo-random
pattern/address generators in BIST experiments.
"""

from __future__ import annotations

# width -> tap positions (1-based, tap n is the MSB) of a maximal LFSR.
TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
    33: (33, 20),
    34: (34, 27, 2, 1),
    35: (35, 33),
    36: (36, 25),
    40: (40, 38, 21, 19),
    48: (48, 47, 21, 20),
    56: (56, 55, 35, 34),
    64: (64, 63, 61, 60),
}


def tap_mask(width: int) -> int:
    """Bit mask of the feedback taps for *width* (0-based bit positions)."""
    if width == 1:
        return 1
    if width not in TAPS:
        known = ", ".join(str(w) for w in sorted(TAPS))
        raise ValueError(f"no tap set for width {width}; known widths: 1, {known}")
    mask = 0
    for tap in TAPS[width]:
        mask |= 1 << (tap - 1)
    return mask


def parity(value: int) -> int:
    """Parity (XOR reduction) of an arbitrary-size integer."""
    return value.bit_count() & 1


class Lfsr:
    """A Fibonacci LFSR with a maximal-length tap set."""

    def __init__(self, width: int, seed: int = 1) -> None:
        if width < 1:
            raise ValueError("LFSR width must be >= 1")
        self.width = width
        self.mask = (1 << width) - 1
        self.taps = tap_mask(width)
        seed &= self.mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed

    def step(self) -> int:
        """Advance one cycle and return the new state."""
        feedback = parity(self.state & self.taps)
        self.state = ((self.state << 1) & self.mask) | feedback
        return self.state

    def run(self, cycles: int) -> list[int]:
        """The next *cycles* states."""
        return [self.step() for _ in range(cycles)]

    def draw(self, nbits: int) -> int:
        """The next *nbits* pseudo-random bits as one integer.

        A Fibonacci LFSR shifts in exactly one fresh feedback bit per
        step, so this collects one step's new LSB per output bit —
        consecutive full states are just shifts of each other and must
        not be concatenated.  The state is plain data (``self.state``),
        so a checkpointed generator resumes bit-identically by
        restoring it.
        """
        if nbits < 1:
            raise ValueError("draw needs at least one bit")
        value = 0
        for _ in range(nbits):
            value = (value << 1) | (self.step() & 1)
        return value

    def copy(self) -> "Lfsr":
        """An independent LFSR continuing from the current state."""
        return Lfsr(self.width, self.state)

    def period(self, limit: int | None = None) -> int:
        """Cycle length from the current state (maximal sets give 2^w - 1)."""
        start = self.state
        bound = limit if limit is not None else (1 << self.width)
        for count in range(1, bound + 1):
            if self.step() == start:
                return count
        raise RuntimeError("period not found within limit")
