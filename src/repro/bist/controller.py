"""Two-phase transparent BIST controller.

Phase 1 (*signature prediction*) runs the read-only prediction test;
every raw read is XOR-corrected with the operation's pattern before
entering the MISR, so the register accumulates the signature the test
phase is expected to produce on a fault-free memory.  Phase 2 runs the
transparent test itself, feeding raw read data to a second MISR.  A
fault is signalled when the two signatures differ.

The controller also evaluates the alias-free *compare* oracle alongside,
which lets experiments measure MISR aliasing directly (a fault that
perturbs the read stream but leaves the signature unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.march import MarchTest
from ..core.signature import prediction_test
from ..core.twm import TWMResult
from ..engine import Engine, compile_march, get_engine
from ..memory.model import Memory, words_equal
from .misr import Misr


@dataclass(frozen=True)
class BistOutcome:
    """Result of one two-phase transparent BIST session."""

    predicted_signature: int
    test_signature: int
    stream_mismatches: int
    prediction_reads: int
    test_ops: int
    transparent: bool

    @property
    def detected(self) -> bool:
        """Fault signalled by the signature comparison."""
        return self.predicted_signature != self.test_signature

    @property
    def stream_detected(self) -> bool:
        """Fault visible to the ideal (alias-free) compare oracle."""
        return self.stream_mismatches > 0

    @property
    def aliased(self) -> bool:
        """The read stream was wrong but the signatures collided."""
        return self.stream_detected and not self.detected


class TransparentBist:
    """Reusable two-phase controller for a transparent test pair."""

    def __init__(
        self,
        test: MarchTest,
        prediction: MarchTest | None = None,
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        engine: str | Engine | None = None,
    ) -> None:
        if not test.is_transparent_form:
            raise ValueError(
                f"{test.name} is not transparent; the controller runs "
                "transparent tests only"
            )
        self.test = test
        self.prediction = (
            prediction if prediction is not None else prediction_test(test)
        )
        self.misr_width = misr_width
        self.misr_seed = misr_seed
        self.engine = get_engine(engine)

    @classmethod
    def from_twm(cls, result: TWMResult, **kwargs) -> "TransparentBist":
        """Controller for a TWM_TA transformation result."""
        return cls(result.twmarch, result.prediction, **kwargs)

    def run(self, memory: Memory) -> BistOutcome:
        """Run prediction then test on *memory* and compare signatures.

        Both phases execute through the configured engine; the MISRs are
        fed from the engine's read stream (prediction reads are
        XOR-corrected with the operation mask by the BIST datapath
        before absorption).
        """
        snapshot = memory.snapshot()
        prediction = compile_march(self.prediction, memory.width)
        test = compile_march(self.test, memory.width)

        predict_misr = Misr(self.misr_width, self.misr_seed)
        predict_run = self.engine.run(
            prediction,
            memory,
            snapshot=snapshot,
            read_sink=lambda rec: predict_misr.absorb(rec.raw ^ rec.mask_value),
        )

        test_misr = Misr(self.misr_width, self.misr_seed)
        test_run = self.engine.run(
            test,
            memory,
            snapshot=snapshot,
            read_sink=lambda rec: test_misr.absorb(rec.raw),
        )

        return BistOutcome(
            predicted_signature=predict_misr.signature,
            test_signature=test_misr.signature,
            stream_mismatches=test_run.n_mismatches,
            prediction_reads=predict_run.n_reads,
            test_ops=test_run.ops_executed,
            transparent=words_equal(memory.snapshot(), snapshot),
        )
