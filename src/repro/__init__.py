"""repro — reproduction of "An Efficient Transparent Test Scheme for
Embedded Word-Oriented Memories" (Li, Tseng, Wey — DATE 2005).

The package implements the paper's TWM_TA transformation (bit-oriented
March test -> transparent word-oriented March test), the two prior-work
baselines it compares against, and every substrate needed to evaluate
them: a word-oriented memory simulator with the classic functional
fault models, a two-phase transparent BIST datapath (MISR signature
prediction and compare), an ECC substrate for the TOMT baseline, an
online-testing scheduler, and fault-coverage campaign machinery.

Quickstart::

    from repro import library, twm_transform, TransparentBist, FaultyMemory

    result = twm_transform(library.get("March C-"), width=32)
    print(result.summary())          # TCM 35n, TCP 21n
    print(result.twmarch)            # the transparent word test

    memory = FaultyMemory(n_words=64, width=32)
    bist = TransparentBist.from_twm(result)
    outcome = bist.run(memory)
    assert not outcome.detected and outcome.transparent
"""

from . import analysis, baselines, bist, core, ecc, engine, library, memory, soak
from .analysis import (
    compare_flow,
    compare_reports,
    intra_word_conditions,
    pair_condition_coverage,
    render_table,
    run_campaign,
    signature_flow,
    state_sequence,
    table1_rows,
    two_cell_trace,
)
from .baselines import TomtBaseline, scheme1_transform, tomt_tcm, tomt_test
from .bist import (
    Misr,
    OnlineTestScheduler,
    TransparentBist,
    random_workload,
    read_stream,
    run_march,
)
from .core import (
    AddressOrder,
    DataExpr,
    MarchElement,
    MarchTest,
    Mask,
    Op,
    OpKind,
    atmarch,
    background_plan,
    checkerboard,
    headline_ratios,
    nontransparent_word_reference,
    parse_march,
    prediction_test,
    table2_rows,
    table3_rows,
    to_transparent,
    twm_transform,
    validate_transparent,
)
from .ecc import CodedMemory, HammingSEC, HammingSECDED, ParityCodec
from .engine import (
    BatchEngine,
    Engine,
    MarchProgram,
    ReferenceEngine,
    compile_march,
    engine_names,
    get_engine,
)
from .memory import (
    Cell,
    FaultyMemory,
    IdempotentCouplingFault,
    InversionCouplingFault,
    Memory,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
    standard_fault_universe,
)
from .soak import (
    ArrivalSpec,
    FaultTimeline,
    LfsrWorkload,
    SoakScenario,
    SoakSchedule,
    run_scenario,
    run_soak_campaign,
    scenario_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "AddressOrder",
    "ArrivalSpec",
    "BatchEngine",
    "Cell",
    "CodedMemory",
    "DataExpr",
    "Engine",
    "FaultTimeline",
    "FaultyMemory",
    "HammingSEC",
    "HammingSECDED",
    "IdempotentCouplingFault",
    "InversionCouplingFault",
    "LfsrWorkload",
    "MarchElement",
    "MarchProgram",
    "MarchTest",
    "Mask",
    "Memory",
    "Misr",
    "OnlineTestScheduler",
    "Op",
    "OpKind",
    "ParityCodec",
    "ReferenceEngine",
    "SoakScenario",
    "SoakSchedule",
    "StateCouplingFault",
    "StuckAtFault",
    "TomtBaseline",
    "TransitionFault",
    "TransparentBist",
    "analysis",
    "atmarch",
    "background_plan",
    "baselines",
    "bist",
    "checkerboard",
    "compare_flow",
    "compare_reports",
    "compile_march",
    "core",
    "ecc",
    "engine",
    "engine_names",
    "get_engine",
    "headline_ratios",
    "intra_word_conditions",
    "library",
    "memory",
    "nontransparent_word_reference",
    "pair_condition_coverage",
    "parse_march",
    "prediction_test",
    "random_workload",
    "read_stream",
    "render_table",
    "run_campaign",
    "run_march",
    "run_scenario",
    "run_soak_campaign",
    "scenario_matrix",
    "scheme1_transform",
    "signature_flow",
    "soak",
    "state_sequence",
    "standard_fault_universe",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "to_transparent",
    "tomt_tcm",
    "tomt_test",
    "twm_transform",
    "two_cell_trace",
    "validate_transparent",
    "__version__",
]
