"""March elements: an address order plus a sequence of operations.

A march element applies its whole operation sequence to one address,
then moves to the next address in the prescribed order (ascending,
descending, or "either").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

from .ops import Op, reads, writes


class AddressOrder(enum.Enum):
    """Address sequencing of a march element."""

    UP = "up"  # ascending, written ⇑
    DOWN = "down"  # descending, written ⇓
    ANY = "any"  # either order is allowed, written ⇕

    @property
    def arrow(self) -> str:
        return {"up": "⇑", "down": "⇓", "any": "⇕"}[self.value]

    def addresses(self, n_words: int) -> range:
        """Concrete address sequence for a memory of *n_words* words.

        ``ANY`` is resolved to ascending order, the conventional choice.
        """
        if self is AddressOrder.DOWN:
            return range(n_words - 1, -1, -1)
        return range(n_words)

    def reversed(self) -> "AddressOrder":
        if self is AddressOrder.UP:
            return AddressOrder.DOWN
        if self is AddressOrder.DOWN:
            return AddressOrder.UP
        return AddressOrder.ANY


@dataclass(frozen=True)
class MarchElement:
    """An address order and a non-empty operation sequence."""

    order: AddressOrder
    ops: tuple[Op, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("a march element must contain at least one operation")
        object.__setattr__(self, "ops", tuple(self.ops))

    @staticmethod
    def of(order: AddressOrder, ops: Sequence[Op]) -> "MarchElement":
        return MarchElement(order, tuple(ops))

    # -- statistics ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    @property
    def n_reads(self) -> int:
        return reads(self.ops)

    @property
    def n_writes(self) -> int:
        return writes(self.ops)

    @property
    def is_pure_write(self) -> bool:
        """True when the element consists only of write operations."""
        return all(op.is_write for op in self.ops)

    @property
    def is_pure_read(self) -> bool:
        return all(op.is_read for op in self.ops)

    @property
    def starts_with_write(self) -> bool:
        return self.ops[0].is_write

    # -- rendering -----------------------------------------------------
    def __str__(self) -> str:
        body = ",".join(str(op) for op in self.ops)
        return f"{self.order.arrow}({body})"
