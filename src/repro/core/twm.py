"""TWM_TA — the paper's transparent word-oriented March transformation.

Algorithm 1 of the paper converts a bit-oriented March test ``BMarch``
into a transparent word-oriented March test ``TWMarch`` in four steps:

1. ``SMarch``: reinterpret the bit values 0/1 as the solid word
   backgrounds all-0/all-1 (structurally the same test).
2. If the last operation of SMarch is a write, append a read element
   (the paper's March U example shows it as a separate ``⇕(r)``).
3. ``TSMarch``: apply the classic transparent transformation to SMarch,
   treating each word as one wide bit.  The step-3 restore element is
   *not* emitted here — restoring is folded into ATMarch.
4. ``ATMarch``: a short tail that exercises intra-word coupling with
   the ``log2 b`` checkerboard backgrounds ``D_k``.  Its form depends on
   whether TSMarch leaves the content inverted (Algorithm 1's branch):

   * content ``c``:   ``⇕(rc, w c^Dk, r c^Dk, wc, rc)`` for each ``k``,
     then ``⇕(rc)``;
   * content ``~c``:  the same five-op elements on base ``~c`` for
     ``k < log2 b``, and the last pattern element flips back to ``c`` on
     its second write, then ``⇕(rc)``.

   Both variants cost ``5*log2(b) + 1`` operations and restore the
   original content, so ``TCM = (N + 5*log2 b) * n`` under the paper's
   assumptions (init element, read-first elements, final read).

``TWMarch = TSMarch ; ATMarch``; the signature-prediction test is
TWMarch with every write removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backgrounds import log2_width
from .element import AddressOrder, MarchElement
from .march import MarchTest
from .ops import DataExpr, Mask, Op, checker
from .signature import prediction_test
from .transparent import TransparentResult, to_transparent


class TWMError(ValueError):
    """Raised when a test cannot be transformed by TWM_TA."""


@dataclass(frozen=True)
class TWMResult:
    """All intermediate and final artifacts of a TWM_TA run."""

    bmarch: MarchTest
    width: int
    smarch: MarchTest
    tsmarch: MarchTest
    atmarch: MarchTest
    twmarch: MarchTest
    prediction: MarchTest
    inverted: bool
    appended_read: bool

    @property
    def tcm(self) -> int:
        """Operations per word of the transparent test (TCM / n)."""
        return self.twmarch.op_count

    @property
    def tcp(self) -> int:
        """Operations per word of the signature prediction (TCP / n)."""
        return self.prediction.op_count

    def summary(self) -> str:
        return (
            f"TWM_TA({self.bmarch.name}, b={self.width}): "
            f"TSMarch {self.tsmarch.op_count} ops + "
            f"ATMarch {self.atmarch.op_count} ops = TCM {self.tcm}n, "
            f"TCP {self.tcp}n"
        )


def _require_bit_oriented(bmarch: MarchTest) -> None:
    if not bmarch.is_solid_form:
        raise TWMError(f"{bmarch.name} must be non-transparent (solid form)")
    for op in bmarch.all_ops:
        if op.data.mask not in (Mask.ZERO, Mask.ONES):
            raise TWMError(
                f"{bmarch.name} is not bit-oriented: operation {op} uses "
                f"background {op.data.mask.symbol}"
            )


def solid_background_test(
    bmarch: MarchTest, *, append_read: bool = True
) -> tuple[MarchTest, bool]:
    """Steps 1–2 of TWM_TA: SMarch with the optional trailing read.

    Returns the SMarch test and whether a read was appended.
    """
    _require_bit_oriented(bmarch)
    elements = list(bmarch.elements)
    appended = False
    last_op = elements[-1].ops[-1]
    if append_read and last_op.is_write:
        elements.append(MarchElement(AddressOrder.ANY, (Op.read(last_op.data),)))
        appended = True
    return (
        MarchTest(
            f"SMarch {bmarch.name}",
            tuple(elements),
            notes=f"{bmarch.name} with solid word backgrounds",
        ),
        appended,
    )


def atmarch(width: int, *, inverted: bool, name: str = "ATMarch") -> MarchTest:
    """The ATMarch tail for a *width*-bit word (see module docstring).

    With ``inverted=True`` the content entering ATMarch is ``~c`` and the
    tail must restore ``c``; with ``inverted=False`` it is already ``c``.
    For ``width == 1`` there is no intra-word structure: the tail
    degenerates to the restore (if needed) plus a final read.
    """
    levels = log2_width(width)
    base = Mask.ONES if inverted else Mask.ZERO
    elements: list[MarchElement] = []

    def pattern_element(k: int, *, flip_back: bool) -> MarchElement:
        dk = Mask.of(checker(k))
        tail_mask = Mask.ZERO if flip_back else base
        return MarchElement(
            AddressOrder.ANY,
            (
                Op.read(DataExpr(True, base)),
                Op.write(DataExpr(True, base ^ dk)),
                Op.read(DataExpr(True, base ^ dk)),
                Op.write(DataExpr(True, tail_mask)),
                Op.read(DataExpr(True, tail_mask)),
            ),
        )

    if levels == 0:
        if inverted:
            elements.append(
                MarchElement(
                    AddressOrder.ANY,
                    (
                        Op.read(DataExpr(True, Mask.ONES)),
                        Op.write(DataExpr(True, Mask.ZERO)),
                    ),
                )
            )
    else:
        for k in range(1, levels + 1):
            flip_back = inverted and k == levels
            elements.append(pattern_element(k, flip_back=flip_back))
    elements.append(
        MarchElement(AddressOrder.ANY, (Op.read(DataExpr(True, Mask.ZERO)),))
    )
    return MarchTest(
        name,
        tuple(elements),
        notes=f"intra-word tail for {width}-bit words"
        + (" (restores inverted content)" if inverted else ""),
    )


def twm_transform(bmarch: MarchTest, width: int) -> TWMResult:
    """Run TWM_TA (Algorithm 1) on *bmarch* for *width*-bit words."""
    smarch, appended = solid_background_test(bmarch)
    tsr: TransparentResult = to_transparent(
        smarch, restore=False, name=f"TSMarch {bmarch.name}"
    )
    if tsr.final_mask not in (Mask.ZERO, Mask.ONES):
        raise TWMError(
            f"unexpected final content {tsr.final_mask.symbol} after TSMarch"
        )
    inverted = tsr.final_mask == Mask.ONES
    tail = atmarch(width, inverted=inverted, name=f"ATMarch(b={width})")
    twmarch = tsr.transparent.concat(
        tail, name=f"TWMarch {bmarch.name} (b={width})"
    )
    prediction = prediction_test(twmarch, name=f"TWMarch {bmarch.name} SP")
    return TWMResult(
        bmarch=bmarch,
        width=width,
        smarch=smarch,
        tsmarch=tsr.transparent,
        atmarch=tail,
        twmarch=twmarch,
        prediction=prediction,
        inverted=inverted,
        appended_read=appended,
    )


def nontransparent_word_reference(bmarch: MarchTest, width: int) -> MarchTest:
    """The non-transparent word-oriented comparator of the paper's §5.

    ``SMarch + AMarch``: the solid-background word test followed by the
    absolute-data version of ATMarch (base pattern = content left by
    SMarch).  The §5 coverage theorem states TWMarch preserves the
    inter-word and intra-word coverage of this test; the fault-coverage
    benchmark verifies it by simulation.
    """
    smarch, _ = solid_background_test(bmarch)
    final = Mask.ZERO
    for op in smarch.all_ops:
        if op.is_write:
            final = op.data.mask
    levels = log2_width(width)
    elements: list[MarchElement] = []
    for k in range(1, levels + 1):
        dk = Mask.of(checker(k))
        elements.append(
            MarchElement(
                AddressOrder.ANY,
                (
                    Op.read(DataExpr(False, final)),
                    Op.write(DataExpr(False, final ^ dk)),
                    Op.read(DataExpr(False, final ^ dk)),
                    Op.write(DataExpr(False, final)),
                    Op.read(DataExpr(False, final)),
                ),
            )
        )
    elements.append(
        MarchElement(AddressOrder.ANY, (Op.read(DataExpr(False, final)),))
    )
    amarch = MarchTest(f"AMarch(b={width})", tuple(elements))
    return smarch.concat(amarch, name=f"SMarch+AMarch {bmarch.name} (b={width})")
