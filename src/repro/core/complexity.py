"""Complexity accounting for the three transparent test schemes.

All headline tables of the paper (Table 2's closed forms, Table 3's
word-size sweep, and the 56 % / 19 % example) are regenerated here.
Two kinds of numbers are produced:

* **measured** — exact operation counts of the tests actually generated
  by :func:`repro.core.twm.twm_transform` and
  :func:`repro.baselines.scheme1.scheme1_transform` (these are the
  numbers the benchmark harness reports), and
* **closed-form** — the formulas of the paper's Table 2 (re-derived
  from its worked examples where the scan is garbled; see DESIGN.md §6).

Symbols: ``N`` operations and ``Q`` reads per address in the
bit-oriented March test, ``b`` word width, ``L = log2 b``, ``n`` number
of words.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.scheme1 import (
    scheme1_formula_tcm,
    scheme1_formula_tcp,
    scheme1_transform,
)
from ..baselines.tomt import tomt_tcm
from .backgrounds import log2_width
from .march import MarchTest
from .twm import twm_transform


@dataclass(frozen=True)
class SchemeCost:
    """Per-word cost of one scheme on one (test, width) point."""

    scheme: str
    tcm: int
    tcp: int

    @property
    def total(self) -> int:
        return self.tcm + self.tcp

    def render(self) -> str:
        return f"{self.total}n (TCM {self.tcm}n + TCP {self.tcp}n)"


# -- closed forms ----------------------------------------------------------


def twm_formula_tcm(n_ops: int, width: int) -> int:
    """Proposed scheme, paper's closed form: ``N + 5 * log2 b``.

    Holds under the paper's assumptions (initialization element present,
    every other element starts with a read, last operation is a read);
    tests ending in a write (e.g. March U) cost one extra appended read.
    """
    return n_ops + 5 * log2_width(width)


def twm_formula_tcp(n_reads: int, width: int) -> int:
    """Proposed scheme's prediction cost as measured on the generated
    tests: ``Q + 3 * log2 b + 1``.

    The scanned paper reads "(Q + 2 log2 b)"; the ATMarch structure
    pinned down by the paper's own worked example contains three reads
    per five-op element plus the final read element, giving the formula
    used here (the conservative choice — see DESIGN.md §6).
    """
    return n_reads + 3 * log2_width(width) + 1


# -- measured costs ---------------------------------------------------------


def twm_cost(bmarch: MarchTest, width: int) -> SchemeCost:
    """Measured cost of the proposed scheme."""
    result = twm_transform(bmarch, width)
    return SchemeCost("this work", result.tcm, result.tcp)


def scheme1_cost(bmarch: MarchTest, width: int) -> SchemeCost:
    """Measured cost of the Scheme 1 baseline's executable construction."""
    result = scheme1_transform(bmarch, width)
    return SchemeCost("scheme 1 [12]", result.tcm, result.tcp)


def scheme1_paper_cost(bmarch: MarchTest, width: int) -> SchemeCost:
    """Scheme 1 cost by the paper-consistent closed form."""
    return SchemeCost(
        "scheme 1 [12] (formula)",
        scheme1_formula_tcm(bmarch.op_count, width),
        scheme1_formula_tcp(bmarch.n_reads, width),
    )


def tomt_cost(width: int) -> SchemeCost:
    """TOMT baseline cost; online detection means no prediction pass."""
    return SchemeCost("scheme 2 [13]", tomt_tcm(width), 0)


# -- paper tables -----------------------------------------------------------


def table2_rows() -> list[tuple[str, str, str]]:
    """Table 2: symbolic TCM / TCP of the three schemes."""
    return [
        ("Scheme 1 [12]", "N*(log2 b + 1) * n", "(Q + (Q+1)*log2 b) * n"),
        ("Scheme 2 [13]", "(9b + 2) * n", "none (online)"),
        ("This work", "(N + 5*log2 b) * n", "(Q + 3*log2 b + 1) * n"),
    ]


@dataclass(frozen=True)
class Table3Row:
    """One (test, width) row of the paper's Table 3."""

    test: str
    width: int
    scheme1_measured: SchemeCost
    scheme1_formula: SchemeCost
    tomt: SchemeCost
    this_work: SchemeCost

    @property
    def ratio_vs_scheme1(self) -> float:
        return self.this_work.total / self.scheme1_measured.total

    @property
    def ratio_vs_tomt(self) -> float:
        return self.this_work.total / self.tomt.total


def table3_rows(
    tests: list[MarchTest], widths: tuple[int, ...] = (16, 32, 64, 128)
) -> list[Table3Row]:
    """Regenerate the paper's Table 3 for *tests* and *widths*."""
    rows = []
    for test in tests:
        for width in widths:
            rows.append(
                Table3Row(
                    test=test.name,
                    width=width,
                    scheme1_measured=scheme1_cost(test, width),
                    scheme1_formula=scheme1_paper_cost(test, width),
                    tomt=tomt_cost(width),
                    this_work=twm_cost(test, width),
                )
            )
    return rows


@dataclass(frozen=True)
class HeadlineRatios:
    """The paper's 56 % / 19 % claim for March C− on 32-bit words."""

    test: str
    width: int
    this_work: SchemeCost
    scheme1: SchemeCost
    scheme1_formula: SchemeCost
    tomt: SchemeCost

    @property
    def vs_scheme1(self) -> float:
        return self.this_work.total / self.scheme1.total

    @property
    def vs_scheme1_formula(self) -> float:
        return self.this_work.total / self.scheme1_formula.total

    @property
    def vs_tomt(self) -> float:
        return self.this_work.total / self.tomt.total


def headline_ratios(bmarch: MarchTest, width: int = 32) -> HeadlineRatios:
    """Total-complexity ratios of the proposed scheme vs both baselines."""
    return HeadlineRatios(
        test=bmarch.name,
        width=width,
        this_work=twm_cost(bmarch, width),
        scheme1=scheme1_cost(bmarch, width),
        scheme1_formula=scheme1_paper_cost(bmarch, width),
        tomt=tomt_cost(width),
    )
