"""The classic (Nicolaidis) transparent March transformation.

Section 3 of the paper summarises the transformation rules from
[11, 12] that turn a non-transparent March test into a transparent one:

1. If the first test operation of a march element is a write, add a
   read at the beginning of the element.  If the test starts with an
   initialization march element that is useless for fault activation
   (a pure-write element), remove it.
2. Replace every operation's absolute data ``v`` by the
   content-relative data ``c ^ (v ^ v0)``, where ``v0`` is the value
   established by the initialization element (the paper fixes the
   symbol ``a`` to the content written by the init element, so
   ``w0 -> w c`` and ``w1 -> w ~c`` for an all-0 initialization).
3. If the memory content after the last write is the inverse of the
   initial data, append a read followed by a write of the inverse of
   the read data (restoring the original content).
4. The signature-prediction test is obtained by deleting all writes.

The implementation below works on arbitrary absolute data masks, not
just solid 0/1, so the same engine transforms per-background tests (the
Scheme 1 baseline) and the solid-background SMarch used by TWM_TA.
"""

from __future__ import annotations

from dataclasses import dataclass

from .element import AddressOrder, MarchElement
from .march import MarchTest
from .ops import DataExpr, Mask, Op


class MarchConsistencyError(ValueError):
    """Raised when a March test's reads disagree with its own writes."""


@dataclass(frozen=True)
class TransparentResult:
    """Outcome of the bit-level transparent transformation.

    ``final_mask`` is the content of the memory at the end of
    ``transparent`` relative to the initial content ``c`` (``Mask.ZERO``
    means the content is restored; with ``restore=True`` it always is).
    ``init_mask`` is the absolute content established by the removed
    initialization element.
    """

    transparent: MarchTest
    init_mask: Mask
    final_mask: Mask
    dropped_init: bool
    added_reads: int
    added_restore: bool

    @property
    def restored(self) -> bool:
        return self.final_mask.is_zero


def to_transparent(
    march: MarchTest,
    *,
    restore: bool = True,
    name: str | None = None,
) -> TransparentResult:
    """Apply the Nicolaidis transformation rules to *march*.

    *march* must be in solid (non-relative) form.  With
    ``restore=False`` step 3 is skipped — this is the variant used
    inside TWM_TA, where the restore duty moves into ATMarch.
    """
    if not march.is_solid_form:
        raise ValueError(
            f"{march.name} is already content-relative; "
            "the transparent transformation applies to non-transparent tests"
        )

    elements = list(march.elements)
    dropped_init = False
    if elements[0].is_pure_write:
        init_mask = elements[0].ops[-1].data.mask
        elements = elements[1:]
        dropped_init = True
        if not elements:
            raise MarchConsistencyError(
                f"{march.name} consists only of an initialization element"
            )
    elif elements[0].ops[0].is_read:
        init_mask = elements[0].ops[0].data.mask
    else:
        raise MarchConsistencyError(
            f"{march.name} must start with a pure-write initialization "
            "element or with a read"
        )

    current = init_mask
    added_reads = 0
    new_elements: list[MarchElement] = []
    for element in elements:
        ops: list[Op] = []
        visit = current
        if element.starts_with_write:
            ops.append(Op.read(DataExpr(True, visit ^ init_mask)))
            added_reads += 1
        for op in element.ops:
            if op.is_read:
                if op.data.mask != visit:
                    raise MarchConsistencyError(
                        f"{march.name}: read expects {op.data.mask.symbol} but "
                        f"content is {visit.symbol} in element {element}"
                    )
                ops.append(Op.read(DataExpr(True, visit ^ init_mask)))
            else:
                visit = op.data.mask
                ops.append(Op.write(DataExpr(True, visit ^ init_mask)))
        current = visit
        new_elements.append(MarchElement(element.order, tuple(ops)))

    added_restore = False
    if restore and current != init_mask:
        new_elements.append(
            MarchElement(
                AddressOrder.ANY,
                (
                    Op.read(DataExpr(True, current ^ init_mask)),
                    Op.write(DataExpr(True, Mask.ZERO)),
                ),
            )
        )
        added_restore = True
        final_mask = Mask.ZERO
    else:
        final_mask = current ^ init_mask

    transparent = MarchTest(
        name if name is not None else f"T{march.name}",
        tuple(new_elements),
        notes=f"transparent form of {march.name}",
    )
    return TransparentResult(
        transparent=transparent,
        init_mask=init_mask,
        final_mask=final_mask,
        dropped_init=dropped_init,
        added_reads=added_reads,
        added_restore=added_restore,
    )
