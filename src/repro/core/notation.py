"""Parsing and formatting of van-de-Goor March notation.

The accepted textual grammar (whitespace-insensitive)::

    test    := element (';' element)* [';']
    element := arrow '(' op (',' op)* ')'
    arrow   := '⇑' | '⇓' | '⇕' | 'up' | 'down' | 'dn' | 'any' | 'ud'
    op      := ('r' | 'w') expr
    expr    := term | '(' term ('^' term)* ')'
    term    := '0' | '1' | 'c' | '~c' | 'D'<int> | '~D'<int> | 'e'<int>
               | '~' term

``0``/``1`` denote the solid all-zeros / all-ones data; ``c`` the
initial (transparent) word content; ``Dk`` the standard checkerboard
background; ``ej`` the unit pattern; ``~`` bit-wise complement, i.e.
XOR with the all-ones pattern.

Examples::

    parse_march("{⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}")
    parse_march("any(w0); up(r0,w1); down(r1,w0); any(r0)")
    parse_march("⇕(rc, w(c^D1), r(c^D1), wc, rc)")
"""

from __future__ import annotations

import re

from .element import AddressOrder, MarchElement
from .march import MarchTest
from .ops import DataExpr, Mask, Op, OpKind, bit, checker


class NotationError(ValueError):
    """Raised when a March notation string cannot be parsed."""


_ARROWS = {
    "⇑": AddressOrder.UP,
    "⇓": AddressOrder.DOWN,
    "⇕": AddressOrder.ANY,
    "up": AddressOrder.UP,
    "down": AddressOrder.DOWN,
    "dn": AddressOrder.DOWN,
    "any": AddressOrder.ANY,
    "ud": AddressOrder.ANY,
}

_ELEMENT_RE = re.compile(
    r"(?P<arrow>⇑|⇓|⇕|up|down|dn|any|ud)\s*\((?P<body>[^()]*(?:\([^()]*\)[^()]*)*)\)",
    re.UNICODE,
)

_OP_SPLIT_RE = re.compile(r",(?![^()]*\))")


def parse_march(text: str, name: str = "march") -> MarchTest:
    """Parse a March test from its textual notation."""
    stripped = text.strip()
    if stripped.startswith("{") and stripped.endswith("}"):
        stripped = stripped[1:-1]
    elements = []
    cursor = 0
    for match in _ELEMENT_RE.finditer(stripped):
        between = stripped[cursor : match.start()].strip(" ;\t\n")
        if between:
            raise NotationError(f"unexpected text {between!r} in march notation")
        cursor = match.end()
        order = _ARROWS[match.group("arrow")]
        body = match.group("body").strip()
        if not body:
            raise NotationError("empty march element")
        ops = tuple(
            _parse_op(part.strip()) for part in _OP_SPLIT_RE.split(body) if part.strip()
        )
        if not ops:
            raise NotationError("empty march element")
        elements.append(MarchElement(order, ops))
    trailing = stripped[cursor:].strip(" ;\t\n")
    if trailing:
        raise NotationError(f"unexpected trailing text {trailing!r}")
    if not elements:
        raise NotationError("march notation contains no elements")
    return MarchTest(name, tuple(elements))


def _parse_op(text: str) -> Op:
    if not text:
        raise NotationError("empty operation")
    head, rest = text[0], text[1:].strip()
    if head == "r":
        kind = OpKind.READ
    elif head == "w":
        kind = OpKind.WRITE
    else:
        raise NotationError(f"operation must start with 'r' or 'w': {text!r}")
    return Op(kind, _parse_expr(rest))


def _parse_expr(text: str) -> DataExpr:
    text = text.strip()
    if not text:
        raise NotationError("operation is missing its data expression")
    if text.startswith("(") and text.endswith(")"):
        text = text[1:-1].strip()
    relative = False
    mask = Mask.ZERO
    for raw_term in text.split("^"):
        term = raw_term.strip()
        if not term:
            raise NotationError(f"empty term in expression {text!r}")
        invert = False
        while term.startswith("~"):
            invert = not invert
            term = term[1:].strip()
        if term == "c":
            if relative:
                # c ^ c cancels
                relative = False
            else:
                relative = True
        elif term == "0":
            pass
        elif term == "1":
            mask ^= Mask.ONES
        elif term.startswith("D"):
            mask ^= Mask.of(checker(_parse_index(term[1:], term)))
        elif term.startswith("e"):
            mask ^= Mask.of(bit(_parse_index(term[1:], term)))
        else:
            raise NotationError(f"unknown term {term!r} in expression")
        if invert:
            mask ^= Mask.ONES
    return DataExpr(relative, mask)


def _parse_index(digits: str, term: str) -> int:
    if not digits.isdigit():
        raise NotationError(f"malformed indexed term {term!r}")
    return int(digits)


def format_march(test: MarchTest, ascii_only: bool = False) -> str:
    """Render *test* back to notation (round-trips through the parser)."""
    if not ascii_only:
        return str(test)
    arrow_names = {
        AddressOrder.UP: "up",
        AddressOrder.DOWN: "down",
        AddressOrder.ANY: "any",
    }
    parts = []
    for element in test.elements:
        body = ",".join(str(op) for op in element.ops)
        parts.append(f"{arrow_names[element.order]}({body})")
    return "; ".join(parts)
