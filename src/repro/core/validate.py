"""Structural and semantic validation of March tests.

These checks encode the well-formedness rules the transformations rely
on and the invariants the generated tests must satisfy (most notably
the transparency invariant: a transparent test must restore the
original memory content).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..memory.model import Memory, words_equal
from .march import MarchTest
from .ops import Mask


@dataclass
class ValidationReport:
    """Collected validation findings; empty ``problems`` means valid."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "OK" if self.ok else "; ".join(self.problems)


def validate_solid(test: MarchTest) -> ValidationReport:
    """Check a non-transparent test: reads must match preceding writes.

    Simulates the content phase through the element sequence (standard
    March semantics: the content entering an element is uniform across
    addresses).
    """
    report = ValidationReport()
    if not test.is_solid_form:
        report.add("test contains content-relative operations")
        return report
    current: Mask | None = None
    for index, element in enumerate(test.elements):
        visit = current
        for op in element.ops:
            if op.is_read:
                if visit is None:
                    report.add(
                        f"element {index}: read before any write "
                        "(uninitialized content)"
                    )
                elif op.data.mask != visit:
                    report.add(
                        f"element {index}: read expects "
                        f"{op.data.mask.symbol}, content is {visit.symbol}"
                    )
            else:
                visit = op.data.mask
        current = visit
    return report


def validate_transparent(test: MarchTest) -> ValidationReport:
    """Check a transparent test's structural requirements.

    * every operation must be content-relative;
    * every write must be derivable by the BIST XOR network (a read
      earlier in the same element);
    * consecutive reads-after-writes must expect what was written
      (phase consistency);
    * the net content change must be zero (transparency).
    """
    report = ValidationReport()
    if not test.is_transparent_form:
        report.add("test contains absolute (non-transparent) operations")
        return report
    current = Mask.ZERO
    for index, element in enumerate(test.elements):
        seen_read = False
        visit = current
        for op in element.ops:
            if op.is_read:
                seen_read = True
                if op.data.mask != visit:
                    report.add(
                        f"element {index}: read expects c^"
                        f"{op.data.mask.symbol}, content is c^{visit.symbol}"
                    )
            else:
                if not seen_read:
                    report.add(
                        f"element {index}: write {op} precedes any read in "
                        "its element (not derivable by the BIST datapath)"
                    )
                visit = op.data.mask
        current = visit
    if not current.is_zero:
        report.add(
            f"test is not transparent: final content is c^{current.symbol}"
        )
    return report


def check_transparency_by_execution(
    test: MarchTest,
    *,
    n_words: int = 8,
    width: int = 8,
    seed: int = 0,
    trials: int = 3,
) -> bool:
    """Dynamic transparency check: run on random fault-free contents and
    verify the memory is bit-identical afterwards."""
    from ..bist.executor import run_march  # local import to avoid a cycle

    rng = random.Random(seed)
    for _ in range(trials):
        memory = Memory(n_words, width)
        memory.randomize(rng)
        before = memory.snapshot()
        run_march(test, memory)
        if not words_equal(memory.snapshot(), before):
            return False
    return True
