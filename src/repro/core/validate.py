"""Structural and semantic validation of March tests.

These checks encode the well-formedness rules the transformations rely
on and the invariants the generated tests must satisfy (most notably
the transparency invariant: a transparent test must restore the
original memory content).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..memory.model import Memory, words_equal
from .march import MarchTest
from .ops import Mask


@dataclass
class ValidationReport:
    """Collected validation findings; empty ``problems`` means valid."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "OK" if self.ok else "; ".join(self.problems)


def validate_solid(test: MarchTest) -> ValidationReport:
    """Check a non-transparent test: reads must match preceding writes.

    Simulates the content phase through the element sequence (standard
    March semantics: the content entering an element is uniform across
    addresses).
    """
    report = ValidationReport()
    if not test.is_solid_form:
        report.add("test contains content-relative operations")
        return report
    current: Mask | None = None
    for index, element in enumerate(test.elements):
        visit = current
        for op in element.ops:
            if op.is_read:
                if visit is None:
                    report.add(
                        f"element {index}: read before any write "
                        "(uninitialized content)"
                    )
                elif op.data.mask != visit:
                    report.add(
                        f"element {index}: read expects "
                        f"{op.data.mask.symbol}, content is {visit.symbol}"
                    )
            else:
                visit = op.data.mask
        current = visit
    return report


def validate_transparent(test: MarchTest) -> ValidationReport:
    """Check a transparent test's structural requirements.

    * every operation must be content-relative;
    * every write must be derivable by the BIST XOR network (a read
      earlier in the same element);
    * consecutive reads-after-writes must expect what was written
      (phase consistency);
    * the net content change must be zero (transparency).
    """
    report = ValidationReport()
    if not test.is_transparent_form:
        report.add("test contains absolute (non-transparent) operations")
        return report
    current = Mask.ZERO
    for index, element in enumerate(test.elements):
        seen_read = False
        visit = current
        for op in element.ops:
            if op.is_read:
                seen_read = True
                if op.data.mask != visit:
                    report.add(
                        f"element {index}: read expects c^"
                        f"{op.data.mask.symbol}, content is c^{visit.symbol}"
                    )
            else:
                if not seen_read:
                    report.add(
                        f"element {index}: write {op} precedes any read in "
                        "its element (not derivable by the BIST datapath)"
                    )
                visit = op.data.mask
        current = visit
    if not current.is_zero:
        report.add(
            f"test is not transparent: final content is c^{current.symbol}"
        )
    return report


@dataclass(frozen=True)
class TransparencyViolation:
    """The first content discrepancy found by the execution check."""

    trial: int
    address: int
    before: int
    after: int

    def __str__(self) -> str:
        return (
            f"trial {self.trial}: word {self.address} changed "
            f"{self.before:#x} -> {self.after:#x}"
        )


@dataclass(frozen=True)
class TransparencyCheck:
    """Structured result of :func:`check_transparency_by_execution`.

    Truthy exactly when the check passed (drop-in for the old bare
    bool); a failing check names the trial, address and before/after
    words, and converts to a lint diagnostic via :meth:`diagnostic`.
    """

    test_name: str
    n_words: int
    width: int
    seed: int
    trials: int
    violation: TransparencyViolation | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def __bool__(self) -> bool:
        return self.ok

    def diagnostic(self):
        """The failure as a staticcheck diagnostic (``None`` if ok)."""
        if self.violation is None:
            return None
        # Local import: staticcheck's rule layers import this module.
        from ..staticcheck.diagnostics import Diagnostic, Location, Severity

        return Diagnostic(
            "X001",
            Severity.ERROR,
            f"transparency violated by execution: {self.violation} "
            f"({self.n_words} words x {self.width} bits, seed {self.seed})",
            Location(subject=self.test_name),
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.ok:
            return f"transparent over {self.trials} randomized trials"
        return str(self.violation)


def check_transparency_by_execution(
    test: MarchTest,
    *,
    n_words: int = 8,
    width: int = 8,
    seed: int = 0,
    trials: int = 3,
) -> TransparencyCheck:
    """Dynamic transparency check: run on random fault-free contents and
    verify the memory is bit-identical afterwards.

    Returns a :class:`TransparencyCheck` (bool-compatible); on failure
    it pinpoints the first diverging word.
    """
    from ..bist.executor import run_march  # local import to avoid a cycle

    rng = random.Random(seed)
    for trial in range(trials):
        memory = Memory(n_words, width)
        memory.randomize(rng)
        before = memory.snapshot()
        run_march(test, memory)
        after = memory.snapshot()
        if not words_equal(after, before):
            address = next(
                addr for addr, (b, a) in enumerate(zip(before, after)) if b != a
            )
            return TransparencyCheck(
                test.name,
                n_words,
                width,
                seed,
                trials,
                TransparencyViolation(
                    trial, address, before[address], after[address]
                ),
            )
    return TransparencyCheck(test.name, n_words, width, seed, trials)


def register_exec_rules(registry) -> None:
    """Declare the execution-layer rules (``X0xx``) in *registry*.

    These run the simulator, so the static ``repro lint`` path skips
    them unless explicitly selected by id; ``repro validate`` runs
    X001 on every transparent test.
    """
    from ..staticcheck.diagnostics import Rule, Severity

    def check_x001(_rule, target):
        if not target.test.is_transparent_form:
            return
        result = check_transparency_by_execution(target.test)
        diagnostic = result.diagnostic()
        if diagnostic is not None:
            yield diagnostic

    registry.register(
        Rule(
            "X001",
            "transparency-execution",
            Severity.ERROR,
            "randomized execution check finds a net content change",
            layer="exec",
            check=check_x001,
        )
    )
