"""Symbolic March-test operations and their data expressions.

A March operation is a read or a write applied to every address of the
memory under test, in the order prescribed by the enclosing march
element.  The *data* carried by an operation is symbolic so that the
same IR can express

* non-transparent tests with solid or checkerboard backgrounds
  (``w0``, ``w1``, ``wD2``, ...), and
* transparent tests whose data is defined relative to the unknown
  initial content ``c`` of each word (``w c``, ``r c^D1``, ...).

The symbolic value of every operation is an XOR of *patterns* over an
optional ``c`` term::

    value(word) = (c                      if relative else 0)
                  XOR pattern_1 XOR pattern_2 XOR ...

Patterns are width-polymorphic: the same expression describes a 1-bit
cell or a 64-bit word and is resolved to a concrete integer only when a
word width is supplied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class OpKind(enum.Enum):
    """Kind of a March operation."""

    READ = "r"
    WRITE = "w"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Pattern:
    """A width-polymorphic bit pattern that can be XOR-composed.

    The three supported families are

    ``ones``
        the all-ones background (written ``1`` in March notation),

    ``checker(k)``
        the standard data background ``D_k`` whose bit ``j`` is 1 iff
        ``floor(j / 2**(k-1))`` is even (``D1 = ...01010101``,
        ``D2 = ...00110011``, ...), matching the construction in the
        paper's Section 4, and

    ``bit(j)``
        the unit pattern ``e_j`` with only bit ``j`` set (used by the
        TOMT baseline's bit-walking test).
    """

    family: str
    index: int = 0

    _FAMILIES = ("ones", "checker", "bit")

    def __post_init__(self) -> None:
        if self.family not in self._FAMILIES:
            raise ValueError(f"unknown pattern family: {self.family!r}")
        if self.family == "checker" and self.index < 1:
            raise ValueError("checker background index k must be >= 1")
        if self.family == "bit" and self.index < 0:
            raise ValueError("bit index must be >= 0")

    def resolve(self, width: int) -> int:
        """Return the concrete integer value of this pattern at *width*."""
        if width < 1:
            raise ValueError("width must be >= 1")
        full = (1 << width) - 1
        if self.family == "ones":
            return full
        if self.family == "checker":
            return checkerboard(self.index, width)
        # bit
        if self.index >= width:
            raise ValueError(
                f"bit pattern e_{self.index} does not fit in width {width}"
            )
        return 1 << self.index

    def bit_at(self, position: int) -> int:
        """Bit *position* of this pattern, independent of word width.

        All three families define bit ``j`` by a rule that does not
        mention the width (``ones`` is 1 everywhere, ``checker(k)``
        follows the ``floor(j / 2**(k-1))`` parity, ``bit(i)`` is 1 at
        ``i`` only), so the value is the same for every width greater
        than *position* — the width-generic fact symbolic fault
        evaluation rests on.
        """
        if position < 0:
            raise ValueError("bit position must be >= 0")
        if self.family == "ones":
            return 1
        if self.family == "checker":
            stride = 1 << (self.index - 1)
            return 1 if (position // stride) % 2 == 0 else 0
        return 1 if position == self.index else 0

    @property
    def min_width(self) -> int:
        """Smallest word width this pattern resolves at."""
        return self.index + 1 if self.family == "bit" else 1

    @property
    def symbol(self) -> str:
        if self.family == "ones":
            return "1"
        if self.family == "checker":
            return f"D{self.index}"
        return f"e{self.index}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.symbol


def checkerboard(k: int, width: int) -> int:
    """The standard data background ``D_k`` for a *width*-bit word.

    Bit ``j`` of ``D_k`` is 1 iff ``floor(j / 2**(k-1))`` is even.  For
    an 8-bit word this yields the backgrounds used in the paper's worked
    example: ``D1 = 01010101``, ``D2 = 00110011``, ``D3 = 00001111``.
    """
    if k < 1:
        raise ValueError("background index k must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    stride = 1 << (k - 1)
    value = 0
    for j in range(width):
        if (j // stride) % 2 == 0:
            value |= 1 << j
    return value


ONES = Pattern("ones")


def checker(k: int) -> Pattern:
    """The ``D_k`` checkerboard background pattern."""
    return Pattern("checker", k)


def bit(j: int) -> Pattern:
    """The unit pattern ``e_j`` (only bit *j* set)."""
    return Pattern("bit", j)


# ---------------------------------------------------------------------------
# Masks: canonical XOR combinations of patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mask:
    """A canonical XOR of :class:`Pattern` terms.

    Because XOR is involutive, a mask is fully described by the *set* of
    patterns that appear an odd number of times.  ``Mask.ZERO`` is the
    empty combination.
    """

    terms: frozenset[Pattern] = frozenset()

    @staticmethod
    def of(*patterns: Pattern) -> "Mask":
        mask = Mask()
        for p in patterns:
            mask = mask ^ Mask(frozenset({p}))
        return mask

    def __xor__(self, other: "Mask") -> "Mask":
        if not isinstance(other, Mask):
            return NotImplemented
        return Mask(self.terms.symmetric_difference(other.terms))

    def resolve(self, width: int) -> int:
        value = 0
        for p in self.terms:
            value ^= p.resolve(width)
        return value & ((1 << width) - 1)

    def bit_at(self, position: int) -> int:
        """Bit *position* of this mask, independent of word width (the
        XOR of the terms' width-generic bits; see
        :meth:`Pattern.bit_at`)."""
        value = 0
        for p in self.terms:
            value ^= p.bit_at(position)
        return value

    @property
    def min_width(self) -> int:
        """Smallest word width every term of this mask resolves at."""
        return max((p.min_width for p in self.terms), default=1)

    @property
    def is_zero(self) -> bool:
        return not self.terms

    @property
    def symbol(self) -> str:
        if not self.terms:
            return "0"
        return "^".join(p.symbol for p in sorted(self.terms))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.symbol


Mask.ZERO = Mask()  # type: ignore[attr-defined]
Mask.ONES = Mask.of(ONES)  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# Data expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DataExpr:
    """The symbolic data of a March operation.

    ``relative`` selects between the two value bases:

    * ``False`` — an absolute (non-transparent) value, ``mask`` itself;
    * ``True`` — a transparent value defined against the initial word
      content ``c``: ``c XOR mask``.
    """

    relative: bool
    mask: Mask

    # -- constructors -------------------------------------------------
    @staticmethod
    def const0() -> "DataExpr":
        return DataExpr(False, Mask.ZERO)

    @staticmethod
    def const1() -> "DataExpr":
        return DataExpr(False, Mask.ONES)

    @staticmethod
    def absolute(mask: Mask) -> "DataExpr":
        return DataExpr(False, mask)

    @staticmethod
    def content(mask: Mask = Mask.ZERO) -> "DataExpr":
        """The transparent expression ``c ^ mask`` (default just ``c``)."""
        return DataExpr(True, mask)

    @staticmethod
    def content_inv() -> "DataExpr":
        return DataExpr(True, Mask.ONES)

    # -- evaluation ----------------------------------------------------
    def evaluate(self, initial: int, width: int) -> int:
        """Concrete value for a word whose initial content is *initial*."""
        base = initial if self.relative else 0
        return (base ^ self.mask.resolve(width)) & ((1 << width) - 1)

    def __xor__(self, other: Mask) -> "DataExpr":
        if not isinstance(other, Mask):
            return NotImplemented
        return DataExpr(self.relative, self.mask ^ other)

    # -- rendering -----------------------------------------------------
    @property
    def symbol(self) -> str:
        if not self.relative:
            return self.mask.symbol
        if self.mask.is_zero:
            return "c"
        if self.mask == Mask.ONES:
            return "~c"
        return f"(c^{self.mask.symbol})"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.symbol


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Op:
    """A single March operation: a read or write of a symbolic value.

    For reads, ``data`` is the value the fault-free memory is expected
    to return; for writes, the value to be stored.
    """

    kind: OpKind
    data: DataExpr

    # -- constructors -------------------------------------------------
    @staticmethod
    def read(data: DataExpr) -> "Op":
        return Op(OpKind.READ, data)

    @staticmethod
    def write(data: DataExpr) -> "Op":
        return Op(OpKind.WRITE, data)

    @staticmethod
    def r0() -> "Op":
        return Op.read(DataExpr.const0())

    @staticmethod
    def r1() -> "Op":
        return Op.read(DataExpr.const1())

    @staticmethod
    def w0() -> "Op":
        return Op.write(DataExpr.const0())

    @staticmethod
    def w1() -> "Op":
        return Op.write(DataExpr.const1())

    # -- queries -------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_relative(self) -> bool:
        return self.data.relative

    def __str__(self) -> str:
        return f"{self.kind.value}{self.data.symbol}"


def reads(ops: Iterable[Op]) -> int:
    """Number of read operations in *ops*."""
    return sum(1 for op in ops if op.is_read)


def writes(ops: Iterable[Op]) -> int:
    """Number of write operations in *ops*."""
    return sum(1 for op in ops if op.is_write)
