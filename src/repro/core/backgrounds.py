"""Data-background plans for word-oriented March testing.

A *data background* is the word-wide pattern written by a word-oriented
memory operation.  Converting a bit-oriented March test into a
word-oriented one classically requires running the test once per
background; the standard plan for a ``b``-bit word uses the solid all-0
background plus the ``log2 b`` checkerboards ``D_1 .. D_log2b``
(van de Goor).  The paper's Scheme 1 baseline [12] uses exactly this
plan; the proposed TWM_TA uses only the solid backgrounds in its main
phase and folds the checkerboards into the short ATMarch tail.
"""

from __future__ import annotations

import math

from .ops import checkerboard


def log2_width(width: int) -> int:
    """``log2(width)`` for power-of-two *width*, else ``ValueError``."""
    if width < 1 or width & (width - 1):
        raise ValueError(f"word width must be a power of two, got {width}")
    return width.bit_length() - 1


def is_power_of_two(width: int) -> bool:
    return width >= 1 and not (width & (width - 1))


def checker_backgrounds(width: int) -> list[int]:
    """The checkerboard backgrounds ``[D_1, ..., D_log2b]`` for *width*.

    For ``width == 1`` the list is empty (a single bit has no intra-word
    structure to exercise).
    """
    return [checkerboard(k, width) for k in range(1, log2_width(width) + 1)]


def background_plan(width: int) -> list[int]:
    """The classic word-oriented background plan: all-0 plus checkers.

    Length is ``log2(width) + 1``, e.g. ``[0b0000, 0b0101, 0b0011]`` for
    4-bit words — the plan used in the paper's Section 3 example.
    """
    return [0] + checker_backgrounds(width)


def n_backgrounds(width: int) -> int:
    """Number of backgrounds in :func:`background_plan`."""
    return log2_width(width) + 1


def format_background(value: int, width: int) -> str:
    """Fixed-width binary rendering, MSB first (as printed in the paper)."""
    return format(value & ((1 << width) - 1), f"0{width}b")


def covers_all_pairs(backgrounds: list[int], width: int) -> bool:
    """Check the defining property of a background plan.

    For every ordered pair of distinct bit positions ``(i, j)`` there
    must exist a background in which bit *i* and bit *j* differ — this
    is what lets word writes exercise intra-word coupling between every
    bit pair.
    """
    for i in range(width):
        for j in range(i + 1, width):
            if not any(
                ((bg >> i) & 1) != ((bg >> j) & 1) for bg in backgrounds
            ):
                return False
    return True


def minimal_plan_size(width: int) -> int:
    """Information-theoretic lower bound on distinguishing backgrounds.

    Each background assigns one bit to every position; distinguishing
    all ``width`` positions pairwise needs at least ``ceil(log2 width)``
    backgrounds (each position must receive a unique bit-vector).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    return math.ceil(math.log2(width)) if width > 1 else 0
