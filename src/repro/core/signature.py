"""Signature-prediction test extraction (step 4 of the transformation).

A transparent BIST session runs in two phases: a *signature prediction*
pass that computes the reference signature from the current memory
content without modifying it, then the transparent test proper.  The
prediction test is the transparent test with every write removed
(elements that become empty are dropped); the BIST read datapath XORs
each raw read with the operation's pattern so the MISR sees exactly the
value the test phase is expected to produce.
"""

from __future__ import annotations

from .element import MarchElement
from .march import MarchTest


def prediction_test(transparent: MarchTest, name: str | None = None) -> MarchTest:
    """The signature-prediction test of a transparent March test."""
    if not transparent.is_transparent_form:
        raise ValueError(
            f"{transparent.name} is not in transparent form; signature "
            "prediction is defined for transparent tests only"
        )
    elements = []
    for element in transparent.elements:
        reads = tuple(op for op in element.ops if op.is_read)
        if reads:
            elements.append(MarchElement(element.order, reads))
    if not elements:
        raise ValueError(f"{transparent.name} contains no read operations")
    return MarchTest(
        name if name is not None else f"{transparent.name}-SP",
        tuple(elements),
        notes=f"signature prediction of {transparent.name}",
    )
