"""Core March-test IR and the paper's transformation algorithms."""

from .backgrounds import (
    background_plan,
    checker_backgrounds,
    covers_all_pairs,
    format_background,
    log2_width,
    n_backgrounds,
)
from .complexity import (
    HeadlineRatios,
    SchemeCost,
    Table3Row,
    headline_ratios,
    scheme1_cost,
    scheme1_paper_cost,
    table2_rows,
    table3_rows,
    tomt_cost,
    twm_cost,
    twm_formula_tcm,
    twm_formula_tcp,
)
from .element import AddressOrder, MarchElement
from .march import MarchTest
from .notation import NotationError, format_march, parse_march
from .ops import DataExpr, Mask, Op, OpKind, Pattern, bit, checker, checkerboard
from .signature import prediction_test
from .transparent import MarchConsistencyError, TransparentResult, to_transparent
from .twm import (
    TWMError,
    TWMResult,
    atmarch,
    nontransparent_word_reference,
    solid_background_test,
    twm_transform,
)
from .validate import (
    ValidationReport,
    check_transparency_by_execution,
    validate_solid,
    validate_transparent,
)

__all__ = [
    "AddressOrder",
    "DataExpr",
    "HeadlineRatios",
    "MarchConsistencyError",
    "MarchElement",
    "MarchTest",
    "Mask",
    "NotationError",
    "Op",
    "OpKind",
    "Pattern",
    "SchemeCost",
    "TWMError",
    "TWMResult",
    "Table3Row",
    "TransparentResult",
    "ValidationReport",
    "atmarch",
    "background_plan",
    "bit",
    "checker",
    "checker_backgrounds",
    "checkerboard",
    "check_transparency_by_execution",
    "covers_all_pairs",
    "format_background",
    "format_march",
    "headline_ratios",
    "log2_width",
    "n_backgrounds",
    "nontransparent_word_reference",
    "parse_march",
    "prediction_test",
    "scheme1_cost",
    "scheme1_paper_cost",
    "solid_background_test",
    "table2_rows",
    "table3_rows",
    "to_transparent",
    "tomt_cost",
    "twm_cost",
    "twm_formula_tcm",
    "twm_formula_tcp",
    "twm_transform",
    "validate_solid",
    "validate_transparent",
]
