"""Whole March tests: a named, ordered sequence of march elements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .element import MarchElement
from .ops import Op


@dataclass(frozen=True)
class MarchTest:
    """A March test.

    ``name`` is descriptive only; equality and hashing consider the
    element structure alone, so differently-named structurally identical
    tests compare equal via :meth:`same_structure`.
    """

    name: str
    elements: tuple[MarchElement, ...]
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("a march test must contain at least one element")
        object.__setattr__(self, "elements", tuple(self.elements))

    @staticmethod
    def of(name: str, elements: Sequence[MarchElement], notes: str = "") -> "MarchTest":
        return MarchTest(name, tuple(elements), notes)

    # -- statistics ----------------------------------------------------
    def __iter__(self) -> Iterator[MarchElement]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    @property
    def op_count(self) -> int:
        """Operations applied to each address (the ``N`` of complexity
        formulas; total test length is ``op_count * n_words``)."""
        return sum(len(e) for e in self.elements)

    @property
    def n_reads(self) -> int:
        """The ``Q`` of complexity formulas."""
        return sum(e.n_reads for e in self.elements)

    @property
    def n_writes(self) -> int:
        return sum(e.n_writes for e in self.elements)

    @property
    def all_ops(self) -> tuple[Op, ...]:
        return tuple(op for e in self.elements for op in e.ops)

    @property
    def is_transparent_form(self) -> bool:
        """True when every operation is content-relative (``c ^ mask``)."""
        return all(op.is_relative for op in self.all_ops)

    @property
    def is_solid_form(self) -> bool:
        """True when no operation is content-relative."""
        return all(not op.is_relative for op in self.all_ops)

    def complexity(self) -> str:
        """Human-readable per-memory complexity, e.g. ``"10n"``."""
        return f"{self.op_count}n"

    def compiled(self, width: int):
        """Lower this test to an executable march program at *width*.

        Convenience for :func:`repro.engine.compile_march` (imported
        lazily — the engine package depends on :mod:`repro.core`, not
        the other way around); the result is cached per
        ``(test, width)``.
        """
        from ..engine import compile_march

        return compile_march(self, width)

    # -- structure -----------------------------------------------------
    def same_structure(self, other: "MarchTest") -> bool:
        """Structural equality ignoring names and notes."""
        return self.elements == other.elements

    def renamed(self, name: str, notes: str | None = None) -> "MarchTest":
        return MarchTest(name, self.elements, self.notes if notes is None else notes)

    def concat(self, other: "MarchTest", name: str | None = None) -> "MarchTest":
        """The test that runs *self* then *other*."""
        return MarchTest(
            name if name is not None else f"{self.name};{other.name}",
            self.elements + other.elements,
        )

    # -- rendering -----------------------------------------------------
    def __str__(self) -> str:
        body = "; ".join(str(e) for e in self.elements)
        return f"{{{body}}}"

    def describe(self) -> str:
        """Multi-line description with statistics."""
        lines = [
            f"{self.name}: {self}",
            (
                f"  N = {self.op_count} ops/address"
                f" (Q = {self.n_reads} reads, W = {self.n_writes} writes),"
                f" {len(self.elements)} elements"
            ),
        ]
        if self.notes:
            lines.append(f"  {self.notes}")
        return "\n".join(lines)
