"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the March-test catalog with statistics.
``show NAME``
    Print one test, its notation and metadata.
``transform NAME --width B [--scheme twm|scheme1] [--ascii]``
    Run TWM_TA (or the Scheme 1 baseline) and print all artifacts.
``complexity [--widths 16,32,64,128] [--tests "March C-,March U"]``
    Regenerate the Table 3 word-size sweep.
``coverage NAME --width B [--words N] [--seed S] [--engine E] [--jobs J]``
    Fault-simulate the transformed test over the standard universe
    (plus the RDF/DRDF/AF extension classes) through a pluggable
    engine; ``--jobs N`` shards each fault class across N worker
    processes with a deterministic merge.  ``--mode signature`` swaps
    the alias-free compare oracle for the paper's two-phase MISR
    signature session, and ``--mode aliasing`` runs the same session
    with *pair verdicts*: every class reports stream-detected and
    aliased counts (stream-detected but signature-missed) next to the
    signature coverage, the quantity behind the Section 5 comparison.
    ``--mode`` also takes a comma-separated list (or ``all``): the
    modes run back to back through one persistent runner, whose
    campaign-context cache (and worker processes, with ``--jobs``)
    survives across them — every report carries a ``contexts:`` line
    with the cache's built/hit/miss counters and build seconds.
    ``--engine symbolic`` evaluates compare-mode campaigns through the
    width-generic symbolic backend (signature/aliasing modes are
    width-concrete and rejected with a clear error).  Sharded runs are
    supervised: ``--chunk-timeout`` bounds each chunk attempt,
    ``--max-retries`` bounds re-dispatch after worker crashes/hangs,
    ``--no-degrade`` turns exhausted retries into an error instead of
    in-process execution, and ``--chaos`` injects deterministic worker
    faults (e.g. ``crash:SAF:0`` or ``seeded:7:0.3``) for smoke
    testing the recovery paths; whatever supervision did is printed as
    a ``faults:`` line.
``table2 [NAME] [--widths 4,8,16,32] [--words N] [--engines reference,batch]``
    Regenerate the paper's Table 2 rows with the symbolic engine — one
    width-generic evaluation per fault shape — and diff every verdict
    against the concrete engines at each swept width; exits non-zero
    on any disagreement.
``soak [--tests T] [--geometries NxW,..] [--rates R,..] [--mixes M,..]``
    Long-horizon online-test scenarios: stochastic fault arrivals
    (Poisson or burst processes; permanent, transient and intermittent
    episodes), streaming LFSR workload traffic, and the periodic
    transparent test running under an idle/duty-cycle budget with the
    degradation ladder (primary test → shorter fallback → widened
    period) when the budget starves it.  The scenario matrix (tests x
    geometries x arrival rates x fault mixes x schedules) runs through
    the supervised campaign fabric — ``--jobs``, ``--chaos``,
    ``--max-retries`` and ``--chunk-timeout`` behave exactly as under
    ``coverage``, and reports are bit-identical for any jobs count.
    ``--checkpoint FILE`` banks finished scenarios to JSON and resumes
    from it; ``--max-batches N`` time-boxes one invocation (exit code
    3 marks a partial run).  Every scenario prints its detection-
    latency distribution, aliasing escapes, missed transient windows
    and diagnosis accuracy, followed by the matrix table.
``validate NOTATION``
    Parse and validate a March test given in textual notation.  For
    transparent tests this also runs the randomized execution check
    (rule X001): the memory must be bit-identical after the test.
``lint [NAME] [--notation TEXT] [--width B] [--format text|json]``
    Static analysis: run the march- and IR-level rule layers over the
    whole catalog (default), one catalog test, or a raw notation
    string.  ``--rules M020,I010`` selects explicit rule ids (the
    execution-layer ``X001`` is opt-in this way), ``--severity``
    filters the displayed diagnostics and ``--fail-on`` sets the exit
    threshold (default ``error``).  Exit codes are CI-friendly: 0
    clean, 1 findings at/above the threshold, 2 usage errors (unknown
    rule, test or notation).
"""

from __future__ import annotations

import argparse
import random
import sys

from .analysis.coverage import (
    aliasing_flow,
    compare_flow,
    run_campaign,
    signature_flow,
)
from .analysis.reports import render_table
from .analysis.soak import render_soak_campaign, render_soak_report
from .analysis.table2 import DEFAULT_WIDTHS, table2_report
from .baselines.scheme1 import scheme1_transform
from .core.complexity import table3_rows
from .core.notation import NotationError, format_march, parse_march
from .core.twm import twm_transform
from .core.validate import (
    check_transparency_by_execution,
    validate_solid,
    validate_transparent,
)
from .engine import (
    CampaignRunner,
    ExecutionError,
    FaultPlan,
    RetryPolicy,
    engine_names,
)
from .library import catalog
from .memory.injection import standard_fault_universe
from .soak import run_soak_campaign, scenario_matrix


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in catalog.names():
        entry = catalog.entry(name)
        rows.append(
            (
                name,
                entry.test.op_count,
                entry.test.n_reads,
                ",".join(sorted(entry.detects)),
                entry.reference,
            )
        )
    print(
        render_table(
            ["Test", "N", "Q", "Detects (100%)", "Reference"],
            rows,
            title="March-test catalog",
        )
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    entry = catalog.entry(args.name)
    print(entry.test.describe())
    print(f"  reference: {entry.reference}")
    if args.ascii:
        print(f"  ascii: {format_march(entry.test, ascii_only=True)}")
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    test = catalog.get(args.name)
    fmt = (lambda t: format_march(t, ascii_only=True)) if args.ascii else str
    if args.scheme == "twm":
        result = twm_transform(test, args.width)
        print(result.summary())
        print(f"SMarch   : {fmt(result.smarch)}")
        print(f"TSMarch  : {fmt(result.tsmarch)}")
        print(f"ATMarch  : {fmt(result.atmarch)}")
        print(f"TWMarch  : {fmt(result.twmarch)}")
        print(f"Prediction ({result.tcp} ops/word): {fmt(result.prediction)}")
    else:
        result = scheme1_transform(test, args.width)
        print(result.summary())
        for p in result.passes:
            print(f"  {p.name} ({p.op_count} ops): {fmt(p)}")
        print(f"Prediction: {result.tcp} ops/word")
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    names = [n.strip() for n in args.tests.split(",")]
    widths = tuple(int(w) for w in args.widths.split(","))
    rows = table3_rows([catalog.get(n) for n in names], widths=widths)
    print(
        render_table(
            ["Test", "b", "Scheme 1 [12]", "TOMT [13]", "This work",
             "vs [12]", "vs [13]"],
            [
                (
                    r.test,
                    r.width,
                    f"{r.scheme1_measured.total}n",
                    f"{r.tomt.total}n",
                    f"{r.this_work.total}n",
                    f"{r.ratio_vs_scheme1:.0%}",
                    f"{r.ratio_vs_tomt:.0%}",
                )
                for r in rows
            ],
            title="Total test complexity (TCM + TCP)",
        )
    )
    return 0


_COVERAGE_MODES = ("compare", "signature", "aliasing")


def _parse_modes(spec: str) -> list[str]:
    """``--mode`` value → ordered mode list (``all`` = every oracle)."""
    if spec == "all":
        return list(_COVERAGE_MODES)
    modes = [m.strip() for m in spec.split(",") if m.strip()]
    unknown = [m for m in modes if m not in _COVERAGE_MODES]
    if not modes or unknown:
        raise ValueError(
            f"--mode expects a comma-separated subset of "
            f"{', '.join(_COVERAGE_MODES)} (or 'all'); got {spec!r}"
        )
    return modes


def _cmd_coverage(args: argparse.Namespace) -> int:
    test = catalog.get(args.name)
    modes = _parse_modes(args.mode)
    result = twm_transform(test, args.width)
    universe = standard_fault_universe(
        args.words,
        args.width,
        max_inter_pairs=args.max_inter_pairs,
        rng=random.Random(args.seed),
        include_rdf=not args.no_extension_classes,
        include_af=not args.no_extension_classes,
    )
    if args.classes is not None:
        wanted = [c.strip() for c in args.classes.split(",") if c.strip()]
        unknown = [c for c in wanted if c not in universe]
        if not wanted or unknown:
            raise ValueError(
                f"--classes expects a comma-separated subset of "
                f"{', '.join(universe)}; got {args.classes!r}"
            )
        universe = {name: universe[name] for name in wanted}
    if args.materialize_classes:
        # Concrete fault lists shard across workers; the streaming
        # descriptors they replace always run inline through the class
        # kernels.  This is the switch that routes the standard
        # universe through the supervised multi-process fabric — the
        # chaos/CI smoke path (and a worker-scaling comparison point).
        universe = {name: list(faults) for name, faults in universe.items()}
    flows = {}
    for mode in modes:
        if mode == "signature":
            flows[mode] = signature_flow(
                result.twmarch,
                result.prediction,
                args.words,
                args.width,
                misr_width=args.misr_width,
                initial=None,
                seed=args.seed,
            )
        elif mode == "aliasing":
            flows[mode] = aliasing_flow(
                result.twmarch,
                result.prediction,
                args.words,
                args.width,
                misr_width=args.misr_width,
                initial=None,
                seed=args.seed,
            )
        else:
            flow = compare_flow(
                result.twmarch,
                args.words,
                args.width,
                initial=None,
                seed=args.seed,
            )
            flows[mode] = flow
    retry = RetryPolicy(
        max_attempts=args.max_retries + 1, timeout=args.chunk_timeout
    )
    chaos = FaultPlan.parse(args.chaos) if args.chaos else None
    # One persistent runner serves every requested mode: worker
    # processes and their campaign-context caches survive across the
    # whole run, so a mixed-mode sweep builds each context once
    # (signature and aliasing even share one session context).
    with CampaignRunner(
        args.engine,
        args.jobs,
        retry=retry,
        chaos=chaos,
        degrade=not args.no_degrade,
    ) as runner:
        runner.bind([flow.work_unit() for flow in flows.values()], universe)
        total_stats = None
        for mode, flow in flows.items():
            report = run_campaign(
                flow,
                universe,
                flow_name=f"TWMarch {args.name} [{mode}]",
                runner=runner,
            )
            print(report.render())
            jobs_note = f", jobs={args.jobs}" if args.jobs > 1 else ""
            print(
                f"  engine: {args.engine}{jobs_note} "
                f"({report.total} faults in {report.seconds:.3f}s)"
            )
            if report.context_stats is not None:
                if total_stats is None:
                    total_stats = report.context_stats.copy()
                else:
                    total_stats.merge(report.context_stats)
    if len(flows) > 1 and total_stats is not None:
        print(f"run total contexts: {total_stats.render()}")
    return 0


def _parse_geometries(spec: str) -> tuple[tuple[int, int], ...]:
    """``--geometries`` value (``"16x8,64x32"``) → (n_words, width)
    pairs, validated at the parser boundary."""
    geometries = []
    for item in spec.split(","):
        item = item.strip()
        parts = item.split("x")
        if len(parts) != 2:
            raise ValueError(
                f"--geometries expects comma-separated NxW items "
                f"(e.g. '16x8,64x32'); got {item!r}"
            )
        try:
            n_words, width = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(f"bad geometry {item!r}") from None
        if n_words < 2 or width < 2:
            raise ValueError(f"geometry {item!r} needs N >= 2 and W >= 2")
        geometries.append((n_words, width))
    if not geometries:
        raise ValueError("--geometries must name at least one NxW pair")
    return tuple(geometries)


def _csv(spec: str, kind=str) -> tuple:
    values = tuple(kind(item.strip()) for item in spec.split(",") if item.strip())
    if not values:
        raise ValueError(f"expected a comma-separated list, got {spec!r}")
    return values


def _cmd_soak(args: argparse.Namespace) -> int:
    fallback = None if args.fallback.lower() == "none" else args.fallback
    scenarios = scenario_matrix(
        tests=_csv(args.tests),
        geometries=_parse_geometries(args.geometries),
        rates=_csv(args.rates, float),
        mixes=_csv(args.mixes),
        processes=_csv(args.processes),
        periods=_csv(args.periods, int),
        cycles=args.cycles,
        idle_permille=args.idle_permille,
        write_permille=args.write_permille,
        budget=args.budget,
        fallback_test=fallback,
        misr_width=args.misr_width,
        seed=args.seed,
    )
    retry = RetryPolicy(
        max_attempts=args.max_retries + 1, timeout=args.chunk_timeout
    )
    chaos = FaultPlan.parse(args.chaos) if args.chaos else None
    campaign = run_soak_campaign(
        scenarios,
        jobs=args.jobs,
        retry=retry,
        chaos=chaos,
        degrade=not args.no_degrade,
        checkpoint=args.checkpoint,
        batch_size=args.batch_size,
        max_batches=args.max_batches,
    )
    for report in campaign.reports:
        print(render_soak_report(report))
    print(render_soak_campaign(campaign))
    jobs_note = f", jobs={args.jobs}" if args.jobs > 1 else ""
    print(
        f"ran {campaign.scenarios}/{len(scenarios)} scenario(s) in "
        f"{campaign.seconds:.3f}s{jobs_note}"
    )
    return 0 if campaign.completed else 3


def _cmd_table2(args: argparse.Namespace) -> int:
    widths = tuple(int(w) for w in args.widths.split(","))
    engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
    report = table2_report(
        args.name,
        widths=widths,
        n_words=args.words,
        seed=args.seed,
        max_inter_pairs=args.max_inter_pairs,
        engines=engines,
    )
    print(report.render())
    invariant = report.width_independent_classes
    if invariant:
        print(f"  width-invariant coverage classes: {', '.join(invariant)}")
    if report.ok:
        print(
            f"  symbolic verdicts match {', '.join(engines)} on all "
            f"{report.total_faults} faults at widths "
            f"{', '.join(map(str, widths))}"
        )
        return 0
    print(
        "error: symbolic verdicts disagree with a concrete engine",
        file=sys.stderr,
    )
    return 1


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        test = parse_march(args.notation, name="cli")
    except NotationError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    print(test.describe())
    report = (
        validate_transparent(test)
        if test.is_transparent_form
        else validate_solid(test)
    )
    kind = "transparent" if test.is_transparent_form else "solid"
    if report.ok:
        if test.is_transparent_form:
            check = check_transparency_by_execution(test)
            if not check:
                print(check.diagnostic().render(), file=sys.stderr)
                return 1
            print(f"valid {kind} march test ({check})")
            return 0
        print(f"valid {kind} march test")
        return 0
    print(f"invalid {kind} march test:", file=sys.stderr)
    for problem in report.problems:
        print(f"  - {problem}", file=sys.stderr)
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck import (
        Severity,
        filter_severity,
        lint_catalog,
        lint_test,
        max_severity,
        render_json,
        render_text,
    )

    if args.name is not None and args.notation is not None:
        raise ValueError("pass a catalog NAME or --notation, not both")
    rules = (
        [rule.strip() for rule in args.rules.split(",") if rule.strip()]
        if args.rules
        else None
    )
    if args.notation is not None:
        try:
            test = parse_march(args.notation, name="cli")
        except NotationError as error:
            print(f"parse error: {error}", file=sys.stderr)
            return 2
        diagnostics = lint_test(test, width=args.width, rules=rules)
    else:
        names = None if args.name is None else [args.name]
        diagnostics = lint_catalog(names, width=args.width, rules=rules)

    shown = diagnostics
    if args.severity is not None:
        shown = filter_severity(diagnostics, Severity.parse(args.severity))
    if args.format == "json":
        print(render_json(shown))
    else:
        print(render_text(shown))

    worst = max_severity(diagnostics)
    threshold = Severity.parse(args.fail_on)
    return 1 if worst is not None and worst >= threshold else 0


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (widths, word
    counts, jobs, pair caps): rejected at the parser with a clean
    usage error, before any geometry math can wrap around."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """Argparse type for counts that may be zero (retry budgets)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _nonnegative_float(text: str) -> float:
    """Argparse type for durations in seconds (0 = expire instantly)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative duration, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Transparent word-oriented March BIST "
            "(Li/Tseng/Wey, DATE 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the March-test catalog")

    show = sub.add_parser("show", help="print one catalog test")
    show.add_argument("name")
    show.add_argument("--ascii", action="store_true")

    transform = sub.add_parser("transform", help="run a transformation")
    transform.add_argument("name")
    transform.add_argument("--width", type=_positive_int, default=32)
    transform.add_argument(
        "--scheme", choices=("twm", "scheme1"), default="twm"
    )
    transform.add_argument("--ascii", action="store_true")

    complexity = sub.add_parser("complexity", help="Table 3 sweep")
    complexity.add_argument("--tests", default="March C-,March U")
    complexity.add_argument("--widths", default="16,32,64,128")

    coverage = sub.add_parser("coverage", help="fault-simulate a TWMarch")
    coverage.add_argument("name")
    coverage.add_argument("--width", type=_positive_int, default=8)
    # Scaled default workload: the batch engine evaluates whole fault
    # classes per O(op_count) pass, so 16 words costs what 4 used to.
    coverage.add_argument("--words", type=_positive_int, default=16)
    coverage.add_argument("--seed", type=int, default=0)
    coverage.add_argument(
        "--max-inter-pairs", type=_positive_int, default=16
    )
    coverage.add_argument(
        "--engine",
        choices=engine_names(),
        default="batch",
        help="simulation backend (batch = vectorized campaign engine)",
    )
    coverage.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for sharded campaign execution "
        "(deterministic: same report for any value)",
    )
    coverage.add_argument(
        "--mode",
        default="compare",
        help="detection oracle(s): alias-free 'compare', the two-phase "
        "MISR 'signature' session (aliasing possible), or the same "
        "session with per-fault (stream, signature) pair verdicts that "
        "count 'aliasing' events per class.  A comma-separated list "
        "(or 'all') runs a mixed-mode campaign through one persistent "
        "runner whose context cache is shared across the modes",
    )
    coverage.add_argument("--misr-width", type=_positive_int, default=16)
    coverage.add_argument(
        "--no-extension-classes",
        action="store_true",
        help="restrict the universe to the historical Section 2 "
        "classes (drop RDF/DRDF/AF)",
    )
    coverage.add_argument(
        "--classes",
        default=None,
        help="comma-separated subset of universe class names to "
        "simulate (e.g. 'SAF,TF'); the megaword CI smoke leg uses "
        "this to bound runtime at 2^20 words",
    )
    coverage.add_argument(
        "--materialize-classes",
        action="store_true",
        help="evaluate the universe as concrete fault lists instead "
        "of streaming class descriptors; lists shard across --jobs "
        "workers (descriptors always run inline through the class "
        "kernels), so this is the path that exercises the supervised "
        "multi-process fabric — and what --chaos disturbs",
    )
    coverage.add_argument(
        "--chunk-timeout",
        type=_nonnegative_float,
        default=None,
        metavar="SECONDS",
        help="per-attempt deadline for a sharded chunk; a worker that "
        "holds a chunk past it is terminated, respawned and the chunk "
        "retried (default: no deadline)",
    )
    coverage.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=2,
        help="re-dispatches a chunk gets after a worker crash, hang "
        "or corrupt result before it degrades to in-process execution "
        "(0 = first failure degrades immediately)",
    )
    coverage.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail the campaign when a chunk exhausts its retries "
        "instead of running it in-process",
    )
    coverage.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="inject deterministic worker faults into the sharded "
        "fabric: 'kind:class:chunk[:attempt|*]' events (kinds: crash, "
        "hang, corrupt, error) separated by commas, or "
        "'seeded:SEED:RATE[:kind|kind]'; recovery statistics appear "
        "on the faults: line",
    )

    soak = sub.add_parser(
        "soak",
        help="long-horizon online-test scenarios with stochastic "
        "fault arrivals",
    )
    soak.add_argument(
        "--tests",
        default="March C-",
        help="comma-separated catalog tests for the primary rung",
    )
    soak.add_argument(
        "--geometries",
        default="16x8",
        help="comma-separated NxW memory geometries (e.g. '16x8,64x32')",
    )
    soak.add_argument(
        "--rates",
        default="2",
        help="comma-separated fault arrival rates per 10k cycles",
    )
    soak.add_argument(
        "--mixes",
        default="mixed",
        help="comma-separated fault-mix presets: permanent, transient, "
        "intermittent, mixed",
    )
    soak.add_argument(
        "--processes",
        default="poisson",
        help="comma-separated arrival processes: poisson, burst",
    )
    soak.add_argument(
        "--periods",
        default="1500",
        help="comma-separated nominal cycles between test sessions",
    )
    soak.add_argument(
        "--cycles", type=_positive_int, default=20_000,
        help="simulated uptime per scenario",
    )
    soak.add_argument(
        "--idle-permille", type=_nonnegative_int, default=700,
        help="probability (1/1000) that a workload cycle is idle",
    )
    soak.add_argument(
        "--write-permille", type=_nonnegative_int, default=40,
        help="probability (1/1000) that a busy cycle writes",
    )
    soak.add_argument(
        "--budget", type=_positive_int, default=None,
        help="BIST operations granted per period (default: unlimited); "
        "a budget the test cannot fit drives the degradation ladder",
    )
    soak.add_argument(
        "--fallback",
        default="MATS+",
        help="shorter catalog test the ladder degrades to "
        "('none' = widen the primary only)",
    )
    soak.add_argument("--misr-width", type=_positive_int, default=16)
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the sharded scenario sweep "
        "(deterministic: same reports for any value)",
    )
    soak.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="bank finished scenarios to this JSON file and resume "
        "from it on re-invocation",
    )
    soak.add_argument(
        "--batch-size", type=_positive_int, default=4,
        help="scenarios dispatched (and checkpointed) per batch",
    )
    soak.add_argument(
        "--max-batches", type=_positive_int, default=None,
        help="new batches this invocation may run (time-boxed slice; "
        "exit code 3 marks the run partial)",
    )
    soak.add_argument(
        "--chunk-timeout", type=_nonnegative_float, default=None,
        metavar="SECONDS",
        help="per-attempt deadline for a sharded scenario chunk",
    )
    soak.add_argument(
        "--max-retries", type=_nonnegative_int, default=2,
        help="re-dispatches a chunk gets after a worker crash, hang "
        "or corrupt result",
    )
    soak.add_argument(
        "--no-degrade", action="store_true",
        help="fail the sweep when a chunk exhausts its retries "
        "instead of running it in-process",
    )
    soak.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="inject deterministic worker faults (class name is "
        "'soak', e.g. 'crash:soak:0' or 'seeded:7:0.3'); recovery "
        "statistics appear on the faults: line",
    )

    table2 = sub.add_parser(
        "table2",
        help="regenerate Table 2 symbolically and diff against "
        "concrete engines",
    )
    table2.add_argument("name", nargs="?", default="March C-")
    table2.add_argument(
        "--widths",
        default=",".join(map(str, DEFAULT_WIDTHS)),
        help="comma-separated word widths to concretize at",
    )
    table2.add_argument("--words", type=_positive_int, default=4)
    table2.add_argument("--seed", type=int, default=0)
    table2.add_argument("--max-inter-pairs", type=_positive_int, default=8)
    table2.add_argument(
        "--engines",
        default="reference,batch",
        help="concrete engines to diff the symbolic verdicts against",
    )

    validate = sub.add_parser("validate", help="check a notation string")
    validate.add_argument("notation")

    lint = sub.add_parser(
        "lint", help="static analysis over catalog tests or a notation"
    )
    lint.add_argument(
        "name",
        nargs="?",
        default=None,
        help="catalog test to lint (default: the whole catalog)",
    )
    lint.add_argument(
        "--notation",
        default=None,
        help="lint a raw notation string instead of a catalog test",
    )
    lint.add_argument(
        "--width",
        type=_positive_int,
        default=32,
        help="word width the IR/prediction rules analyse at",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: every march- "
        "and ir-layer rule; exec-layer rules like X001 are opt-in "
        "here)",
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="lowest severity that makes the exit code 1",
    )
    lint.add_argument(
        "--severity",
        choices=("error", "warning", "info"),
        default=None,
        help="only display diagnostics at/above this severity "
        "(the --fail-on gate still sees everything)",
    )

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "show": _cmd_show,
    "transform": _cmd_transform,
    "complexity": _cmd_complexity,
    "coverage": _cmd_coverage,
    "soak": _cmd_soak,
    "table2": _cmd_table2,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as error:  # unknown catalog name
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ValueError, ExecutionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
