"""Static analysis subsystem: march/IR lint, coverage prediction,
candidate prescreening.

Three layers on one diagnostics core (:mod:`.diagnostics`):

* march-level rules (``M0xx``) over the source test structure,
  including the static coverage predictor (:mod:`.predictor`);
* IR-level rules (``I0xx``) over the compiled/symbolic programs;
* the ``prescreen`` fast path for synthesis-loop candidates.

``python -m repro lint`` is the CLI surface; ``repro.analysis.audit``
cross-validates the predictor against real engine campaigns.
"""

from .diagnostics import (
    Diagnostic,
    Location,
    Rule,
    RuleRegistry,
    Severity,
    filter_severity,
    max_severity,
    render_json,
    render_text,
    severity_counts,
)
from .lint import (
    DEFAULT_WIDTH,
    LintTarget,
    default_registry,
    lint_catalog,
    lint_test,
    registry,
)
from .predictor import (
    CLAIM_CLASSES,
    UNIVERSE_CLASSES,
    ClassPrediction,
    CoveragePrediction,
    predict_coverage,
)
from .prescreen import PrescreenResult, prescreen

__all__ = [
    "CLAIM_CLASSES",
    "DEFAULT_WIDTH",
    "ClassPrediction",
    "CoveragePrediction",
    "Diagnostic",
    "LintTarget",
    "Location",
    "PrescreenResult",
    "Rule",
    "RuleRegistry",
    "Severity",
    "UNIVERSE_CLASSES",
    "default_registry",
    "filter_severity",
    "lint_catalog",
    "lint_test",
    "max_severity",
    "predict_coverage",
    "prescreen",
    "registry",
    "render_json",
    "render_text",
    "severity_counts",
]
