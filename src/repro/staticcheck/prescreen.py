"""Fast candidate prescreening for the march-test synthesis loop.

``prescreen(candidate)`` combines the cheap structural rules into one
verdict: is the candidate well-formed (solid or transparent), and
which single-cell fault classes (SAF/TF/RDF/DRDF) is it *guaranteed*
to detect?  The hot path walks the raw ops exactly twice — no program
compilation, no engine or memory construction, no diagnostic objects —
so bounded-exhaustive enumeration can discard millions of candidates
before paying for symbolic coverage scoring (benchmarked at >=10k
candidates/sec, see ``benchmarks/bench_staticcheck_prescreen.py``).

The claim conditions are the closed-form counterparts of the abstract
replays in :mod:`repro.staticcheck.predictor` (single signature,
uniform masks), derived from the exact fault semantics:

* SAF — solid: reads expecting both 0 and 1; transparent: a read with
  mask 1 (expected ``c^1`` differs from the stuck value for either
  polarity).
* TF — a rising write followed by a read before the next falling
  write, *and* the falling counterpart (for transparent tests, flips
  of the content delta in both directions each followed by a read
  before the next flip: per cell content the same flip is rising or
  falling, so both directions cover both fault polarities at every
  content).
* RDF — any read (the first disturbed read returns the flipped value).
* DRDF — two consecutive reads with no intervening write (the
  deceptive read returns the correct value, so only an immediate
  re-read observes the flip before a write re-syncs the cell).

Guarantees only apply to uniform-mask candidates (every mask all-zeros
or all-ones — the synthesis alphabet); for fancier data backgrounds
``claims`` stays empty and the full predictor should judge.  The
prescreen/predictor agreement is locked by a test over enumerated
candidate swarms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.march import MarchTest
from ..core.ops import Mask, OpKind

_UNIFORM = {Mask.ZERO: 0, Mask.ONES: 1}

_SINGLE_CELL_KINDS = ("SAF", "TF", "RDF", "DRDF")


@dataclass(frozen=True)
class PrescreenResult:
    """Single verdict for one candidate.

    Truthy iff structurally acceptable; ``claims`` lists the
    single-cell fault kinds guaranteed at 100 % for any geometry and
    content.  ``score`` orders candidates: more claims first, then
    fewer ops, then more reads broken ties (observability).
    """

    ok: bool
    reasons: tuple[str, ...]
    transparent: bool
    uniform: bool
    n_ops: int
    n_reads: int
    claims: frozenset[str]

    def __bool__(self) -> bool:
        return self.ok

    @property
    def score(self) -> tuple[int, int, int]:
        return (len(self.claims), -self.n_ops, self.n_reads)


def _reject(*reasons: str, transparent=False, uniform=True, n_ops=0, n_reads=0):
    return PrescreenResult(
        False, reasons, transparent, uniform, n_ops, n_reads, frozenset()
    )


def prescreen(test: MarchTest) -> PrescreenResult:
    """Structural accept/reject/score for one candidate march test."""
    elements = test.elements
    n_ops = 0
    n_reads = 0
    any_relative = False
    any_absolute = False
    uniform = True
    for element in elements:
        for op in element.ops:
            n_ops += 1
            if op.kind is OpKind.READ:
                n_reads += 1
            if op.data.relative:
                any_relative = True
            else:
                any_absolute = True
            if uniform and _UNIFORM.get(op.data.mask) is None:
                uniform = False
    if n_ops == 0:
        return _reject("empty test (no operations)")
    if any_relative and any_absolute:
        return _reject(
            "mixed form: absolute and content-relative data",
            n_ops=n_ops,
            n_reads=n_reads,
            uniform=uniform,
        )
    transparent = any_relative

    # Structural walk (the validate_solid / validate_transparent rules,
    # inlined): tracked content for solid tests, tracked delta plus
    # per-element derivability for transparent ones.
    reasons: list[str] = []
    phase: Mask | None = Mask.ZERO if transparent else None
    for element in elements:
        seen_read = False
        for op in element.ops:
            if op.kind is OpKind.READ:
                seen_read = True
                if phase is None:
                    reasons.append("read before any write")
                elif op.data.mask != phase:
                    reasons.append("read expectation != tracked content")
            else:
                if transparent and not seen_read:
                    reasons.append("underivable write (no read in element)")
                phase = op.data.mask
    if transparent and phase is not None and not phase.is_zero:
        reasons.append("not transparent: nonzero net content change")
    if reasons:
        # Deduplicate while keeping first-seen order: the verdict is
        # reject either way, the reasons are for reporting.
        unique = tuple(dict.fromkeys(reasons))
        return _reject(
            *unique,
            transparent=transparent,
            uniform=uniform,
            n_ops=n_ops,
            n_reads=n_reads,
        )

    claims: frozenset[str] = frozenset()
    if uniform:
        claims = _single_cell_claims(test, transparent, n_reads)
    return PrescreenResult(True, (), transparent, uniform, n_ops, n_reads, claims)


def _single_cell_claims(
    test: MarchTest, transparent: bool, n_reads: int
) -> frozenset[str]:
    """Closed-form SAF/TF/RDF/DRDF guarantees over the flat per-address
    op stream of a well-formed uniform-mask test."""
    reads0 = reads1 = False
    tf_up = tf_down = False
    armed_up = armed_down = False
    prev_read = False
    drdf = False
    state = 0 if transparent else -1  # delta for transparent, content else
    for element in test.elements:
        for op in element.ops:
            m = _UNIFORM[op.data.mask]
            if op.kind is OpKind.READ:
                if m:
                    reads1 = True
                else:
                    reads0 = True
                if prev_read:
                    drdf = True
                prev_read = True
                if armed_up:
                    tf_up = True
                if armed_down:
                    tf_down = True
            else:
                prev_read = False
                if transparent:
                    if m != state:
                        # A delta flip: arms its own direction, re-syncs
                        # a pending divergence of the other one.
                        armed_up, armed_down = m == 1, m == 0
                        state = m
                elif m == 1:
                    armed_down = False
                    if state == 0:
                        armed_up = True
                    state = 1
                else:
                    armed_up = False
                    if state == 1:
                        armed_down = True
                    state = 0
    claims = set()
    if (reads0 and reads1) if not transparent else reads1:
        claims.add("SAF")
    if tf_up and tf_down:
        claims.add("TF")
    if n_reads:
        claims.add("RDF")
    if drdf:
        claims.add("DRDF")
    return frozenset(claims)
