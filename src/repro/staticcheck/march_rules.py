"""March-level lint rules (``M0xx``): structural checks on the source
:class:`~repro.core.march.MarchTest` before any compilation.

The well-formedness rules (M001–M006) are the two ``core/validate.py``
checks ported onto the diagnostics framework with op-precise locations;
the remaining rules add dead/redundant op detection, complexity
accounting (the paper's N/Q formulas), signature-symmetry analysis
(reusing :mod:`repro.bist.symmetry`), and the static coverage
predictor's claims — including the catalog-claim consistency check
(M041) that the audit test gates on.

Every check takes ``(rule, target)`` — the registered rule supplies id
and severity, the :class:`~repro.staticcheck.lint.LintTarget` supplies
the test plus cached compiled/predicted views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..bist.symmetry import reads_per_word
from ..core.complexity import twm_formula_tcm, twm_formula_tcp
from ..core.ops import Mask
from .diagnostics import Diagnostic, Location, Rule, RuleRegistry, Severity
from .predictor import CLAIM_CLASSES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lint import LintTarget


def _diag(
    rule: Rule, target: "LintTarget", message: str, element=None, op=None
) -> Diagnostic:
    return Diagnostic(
        rule.id,
        rule.severity,
        message,
        Location(subject=target.name, element=element, op=op),
    )


# ---------------------------------------------------------------------------
# Well-formedness (ported from core/validate.py)
# ---------------------------------------------------------------------------


def check_mixed_form(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    test = target.test
    if test.is_solid_form or test.is_transparent_form:
        return
    for ei, element in enumerate(test.elements):
        for oi, op in enumerate(element.ops):
            if op.is_relative:
                yield _diag(
                    rule,
                    target,
                    "content-relative op in a test that also uses absolute "
                    "data (mixed form: neither solid nor transparent)",
                    element=ei,
                    op=oi,
                )
                return


def _solid_phase(test) -> Iterator[tuple[int, int, object, Mask | None]]:
    """``validate_solid``'s content-phase walk, op by op: yields
    ``(element, op, Op, content_entering_the_op)``."""
    current: Mask | None = None
    for ei, element in enumerate(test.elements):
        visit = current
        for oi, op in enumerate(element.ops):
            yield ei, oi, op, visit
            if op.is_write:
                visit = op.data.mask
        current = visit


def check_read_before_write(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    if not target.test.is_solid_form:
        return
    for ei, oi, op, content in _solid_phase(target.test):
        if op.is_read and content is None:
            yield _diag(
                rule,
                target,
                "read before any write (uninitialized content)",
                element=ei,
                op=oi,
            )


def check_read_mismatch(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    if not target.test.is_solid_form:
        return
    for ei, oi, op, content in _solid_phase(target.test):
        if op.is_read and content is not None and op.data.mask != content:
            yield _diag(
                rule,
                target,
                f"read expects {op.data.mask.symbol}, content is "
                f"{content.symbol}",
                element=ei,
                op=oi,
            )


def _transparent_phase(test) -> Iterator[tuple[int, int, object, Mask, bool]]:
    """``validate_transparent``'s delta-phase walk: yields
    ``(element, op, Op, delta_entering_the_op, seen_read_in_element)``."""
    current = Mask.ZERO
    for ei, element in enumerate(test.elements):
        seen_read = False
        visit = current
        for oi, op in enumerate(element.ops):
            yield ei, oi, op, visit, seen_read
            if op.is_read:
                seen_read = True
            else:
                visit = op.data.mask
        current = visit


def check_underivable_write(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    if not target.test.is_transparent_form:
        return
    for ei, oi, op, _delta, seen_read in _transparent_phase(target.test):
        if op.is_write and not seen_read:
            yield _diag(
                rule,
                target,
                f"write {op} precedes any read in its element (not "
                "derivable by the BIST XOR datapath)",
                element=ei,
                op=oi,
            )


def check_phase_mismatch(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    if not target.test.is_transparent_form:
        return
    for ei, oi, op, delta, _seen in _transparent_phase(target.test):
        if op.is_read and op.data.mask != delta:
            yield _diag(
                rule,
                target,
                f"read expects c^{op.data.mask.symbol}, content is "
                f"c^{delta.symbol}",
                element=ei,
                op=oi,
            )


def check_transparency_residue(
    rule: Rule, target: "LintTarget"
) -> Iterator[Diagnostic]:
    test = target.test
    if not test.is_transparent_form:
        return
    final = Mask.ZERO
    for _ei, _oi, op, _delta, _seen in _transparent_phase(test):
        if op.is_write:
            final = op.data.mask
    if not final.is_zero:
        yield _diag(
            rule,
            target,
            f"test is not transparent: final content is c^{final.symbol}",
        )


# ---------------------------------------------------------------------------
# Dead / redundant operations
# ---------------------------------------------------------------------------


def _phase_walk(target: "LintTarget"):
    """Flat op walk with the tracked content phase entering each op
    (absolute content for solid tests, delta for transparent ones)."""
    test = target.test
    phase: Mask | None = None if test.is_solid_form else Mask.ZERO
    for ei, element in enumerate(test.elements):
        for oi, op in enumerate(element.ops):
            yield ei, oi, op, phase
            if op.is_write:
                phase = op.data.mask


def check_noop_write(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    if not target.well_formed:
        return
    for ei, oi, op, phase in _phase_walk(target):
        if op.is_write and phase is not None and op.data.mask == phase:
            yield _diag(
                rule,
                target,
                f"write {op} re-writes the current content — a no-op under "
                "the implemented fault models (classically a WDF/write-"
                "disturb sensitizer)",
                element=ei,
                op=oi,
            )


def check_unread_write(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    """A write whose value is never read back: overwritten without an
    intervening read, or trailing at the end of the test.  Such writes
    contribute only transitions (TF/CF sensitization) or transparency
    restoration — worth knowing when minimizing a candidate."""
    if not target.well_formed:
        return
    pending: tuple[int, int, object] | None = None
    for ei, oi, op, _phase in _phase_walk(target):
        if op.is_read:
            pending = None
        else:
            if pending is not None:
                pei, poi, pop = pending
                yield _diag(
                    rule,
                    target,
                    f"write {pop} is overwritten at e{ei}.op{oi} without an "
                    "intervening read (contributes only a transition)",
                    element=pei,
                    op=poi,
                )
            pending = (ei, oi, op)
    if pending is not None:
        pei, poi, pop = pending
        yield _diag(
            rule,
            target,
            f"write {pop} is never read back (restores content / "
            "transition only)",
            element=pei,
            op=poi,
        )


def check_repeated_read(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    if not target.well_formed:
        return
    previous_read = False
    for ei, oi, op, _phase in _phase_walk(target):
        if op.is_read:
            if previous_read:
                yield _diag(
                    rule,
                    target,
                    f"read {op} immediately repeats the previous read "
                    "(redundant for content observation; sensitizes "
                    "deceptive read-disturb faults)",
                    element=ei,
                    op=oi,
                )
            previous_read = True
        else:
            previous_read = False


# ---------------------------------------------------------------------------
# Accounting, symmetry, coverage claims
# ---------------------------------------------------------------------------


def check_complexity(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    test = target.test
    tcm = twm_formula_tcm(test.op_count, target.width)
    tcp = twm_formula_tcp(test.n_reads, target.width)
    yield _diag(
        rule,
        target,
        f"N={test.op_count} ops/address (R={test.n_reads}, "
        f"W={test.n_writes}) over {len(test.elements)} elements; "
        f"TWM cost at width {target.width}: TCM={tcm}n, TCP={tcp}n",
    )


def check_symmetry(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    test = target.test
    if not test.is_transparent_form or not target.well_formed:
        return
    q = reads_per_word(test)
    if q % 2:
        yield _diag(
            rule,
            target,
            f"odd per-word read count (Q={q}): the XOR signature stays "
            "content-dependent; symmetrize() would append 1 balancing "
            "read element",
        )


def check_coverage_claims(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    if not target.well_formed:
        return
    word = sorted(target.prediction.claim_kinds)
    bit = sorted(target.bit_prediction.claim_kinds)
    yield _diag(
        rule,
        target,
        f"guaranteed 100% detection — bit-oriented: "
        f"{', '.join(bit) if bit else '(none)'}; at width {target.width}: "
        f"{', '.join(word) if word else '(none)'}",
    )


def check_catalog_claims(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    """M041: every ``CatalogEntry.detects`` claim must be implied by
    the bit-oriented static prediction (the catalog metadata speaks
    the classic bit-oriented language, i.e. width 1)."""
    entry = target.entry
    if entry is None:
        return
    prediction = target.bit_prediction
    claimed = prediction.claim_kinds
    for kind in sorted(entry.detects):
        if kind not in CLAIM_CLASSES:
            yield _diag(rule, target, f"catalog claims unknown fault kind {kind!r}")
            continue
        if kind in claimed:
            continue
        failing = [
            prediction.classes[name]
            for name in CLAIM_CLASSES[kind]
            if name in prediction.classes
            and not (
                prediction.classes[name].guaranteed
                or prediction.classes[name].vacuous
            )
        ]
        detail = "; ".join(f"{p.name}: {p.reason}" for p in failing)
        yield _diag(
            rule,
            target,
            f"catalog claims {kind} but the static predictor cannot "
            f"guarantee it ({detail or 'no supporting class'})",
        )


_RULES = (
    (
        "M001",
        "mixed-form",
        Severity.ERROR,
        "test mixes absolute and content-relative data",
        check_mixed_form,
    ),
    (
        "M002",
        "read-before-write",
        Severity.ERROR,
        "solid test reads uninitialized content",
        check_read_before_write,
    ),
    (
        "M003",
        "read-content-mismatch",
        Severity.ERROR,
        "solid read expectation disagrees with tracked content",
        check_read_mismatch,
    ),
    (
        "M004",
        "underivable-write",
        Severity.ERROR,
        "transparent write has no earlier read in its element",
        check_underivable_write,
    ),
    (
        "M005",
        "phase-mismatch",
        Severity.ERROR,
        "transparent read expectation disagrees with tracked delta",
        check_phase_mismatch,
    ),
    (
        "M006",
        "not-transparent",
        Severity.ERROR,
        "net content change of a transparent-form test is nonzero",
        check_transparency_residue,
    ),
    (
        "M010",
        "noop-write",
        Severity.INFO,
        "write re-writes the current content (WDF sensitizer only)",
        check_noop_write,
    ),
    (
        "M011",
        "unread-write",
        Severity.INFO,
        "write value is never read back",
        check_unread_write,
    ),
    (
        "M012",
        "repeated-read",
        Severity.INFO,
        "consecutive identical reads (DRDF sensitizer)",
        check_repeated_read,
    ),
    (
        "M020",
        "complexity",
        Severity.INFO,
        "op/read/write accounting and the paper's TWM cost formulas",
        check_complexity,
    ),
    (
        "M030",
        "asymmetric-signature",
        Severity.INFO,
        "odd per-word read count leaves the XOR signature content-dependent",
        check_symmetry,
    ),
    (
        "M040",
        "coverage-claims",
        Severity.INFO,
        "fault classes the static predictor guarantees at 100%",
        check_coverage_claims,
    ),
    (
        "M041",
        "catalog-claim-drift",
        Severity.ERROR,
        "catalog detects-claim not implied by the static predictor",
        check_catalog_claims,
    ),
)


def register(registry: RuleRegistry) -> None:
    """Declare the march-level rules in *registry*."""
    for rule_id, name, severity, summary, check in _RULES:
        registry.register(
            Rule(rule_id, name, severity, summary, layer="march", check=check)
        )
