"""Static per-fault-class coverage prediction for march tests.

``predict_coverage`` decides, *without building an engine or touching a
real memory geometry*, which fault classes of the standard universe a
march test is guaranteed to detect at 100 % — for every memory size,
every initial content, and every fault parameter variant.

The argument that makes this sound is a support-cell reduction: under
the compare oracle, the expected value of every read depends only on
the post-injection snapshot of the word being read (``snapshot ^ mask``
for content-relative ops, ``mask`` for absolute ones), and every fault
in the universe touches at most two cells.  Non-support addresses are
fault-free, never mismatch, and never influence the support cells — so
detection of a fault is exactly decided by an *abstract* run over its
support cells alone: one or two words of one or two bit lanes, with
each lane driven by the test's per-bit mask stream (its *bit
signature*).  The predictor enumerates every case that can occur —
distinct bit signatures at the requested width, both relative address
orders for two-word faults, all 2^k initial support contents, all
parameter variants in the class — and replays each through
:class:`~repro.memory.injection.FaultyMemory` fault semantics with the
reference engine's exact read/derived-write rules.  A class is claimed
only if *every* case is detected; the first escaping case is reported
as the reason.

This is cross-validated against real engine campaigns by
``repro.analysis.audit`` (and gated by the catalog audit test), so the
static claims and simulated truth cannot drift.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..core.march import MarchTest
from ..core.ops import Mask
from ..core.validate import validate_solid, validate_transparent
from ..memory.faults import (
    FAULT_KINDS,
    AddressDecoderFault,
    Cell,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from ..memory.injection import FaultyMemory

# Universe class keys, in the order of `standard_fault_universe`.
UNIVERSE_CLASSES = (
    "SAF",
    "TF",
    "CFst-intra",
    "CFst-inter",
    "CFid-intra",
    "CFid-inter",
    "CFin-intra",
    "CFin-inter",
    "RDF",
    "DRDF",
    "AF",
)

# Catalog-level claim kind -> the universe classes it must cover.
CLAIM_CLASSES: dict[str, tuple[str, ...]] = {
    "SAF": ("SAF",),
    "TF": ("TF",),
    "CFst": ("CFst-intra", "CFst-inter"),
    "CFid": ("CFid-intra", "CFid-inter"),
    "CFin": ("CFin-intra", "CFin-inter"),
    "RDF": ("RDF",),
    "DRDF": ("DRDF",),
    "AF": ("AF",),
}
assert set(CLAIM_CLASSES) == set(FAULT_KINDS)


@dataclass(frozen=True)
class ClassPrediction:
    """Verdict for one universe class.

    ``guaranteed`` means every fault of the class is detected for every
    geometry/content; ``vacuous`` marks classes that are empty at the
    analysis width (e.g. intra-word pairs at width 1).  ``cases`` is
    the number of abstract scenarios replayed.
    """

    name: str
    guaranteed: bool
    vacuous: bool = False
    cases: int = 0
    reason: str = ""


@dataclass(frozen=True)
class CoveragePrediction:
    """Per-class claims for one test at one analysis width."""

    test: str
    width: int
    classes: dict[str, ClassPrediction] = field(default_factory=dict)

    @property
    def claims(self) -> frozenset[str]:
        """Universe classes guaranteed 100 % (vacuous counts)."""
        return frozenset(
            name
            for name, pred in self.classes.items()
            if pred.guaranteed or pred.vacuous
        )

    @property
    def claim_kinds(self) -> frozenset[str]:
        """Catalog-level fault kinds whose every universe class is
        claimed (``CFin`` needs both ``CFin-intra`` and ``CFin-inter``)."""
        claims = self.claims
        return frozenset(
            kind
            for kind, classes in CLAIM_CLASSES.items()
            if all(name in claims for name in classes)
        )

    def describe(self) -> str:
        claimed = sorted(self.claim_kinds)
        return (
            f"{self.test or '<test>'} @ width {self.width}: "
            f"guaranteed {', '.join(claimed) if claimed else '(none)'}"
        )


# ---------------------------------------------------------------------------
# Bit signatures and abstract replay
# ---------------------------------------------------------------------------

_Plan = list[list[tuple[bool, bool, Mask]]]


def _op_plan(test: MarchTest) -> _Plan:
    """Per element: ``(is_read, relative, mask)`` for every op."""
    return [
        [(op.is_read, op.data.relative, op.data.mask) for op in element.ops]
        for element in test.elements
    ]


def _signatures(plan: _Plan, width: int) -> dict[tuple[int, ...], list[int]]:
    """Distinct per-bit mask streams -> the bit positions showing them.

    Two bit positions with the same signature are indistinguishable to
    the test, so one abstract replay covers both.  Uniform-mask tests
    (the whole catalog) collapse to a single signature at any width.
    """
    flat_masks = [mask for steps in plan for (_, _, mask) in steps]
    sigs: dict[tuple[int, ...], list[int]] = {}
    for position in range(width):
        sig = tuple(mask.bit_at(position) for mask in flat_masks)
        sigs.setdefault(sig, []).append(position)
    return sigs


def _lane_plan(plan: _Plan, lane_sigs: Sequence[tuple[int, ...]]) -> _Plan:
    """Concretize the op plan onto local bit lanes: lane ``k`` of the
    abstract word carries signature ``lane_sigs[k]``."""
    out: _Plan = []
    index = 0
    for steps in plan:
        concrete = []
        for is_read, relative, _mask in steps:
            value = 0
            for lane, sig in enumerate(lane_sigs):
                value |= sig[index] << lane
            concrete.append((is_read, relative, value))
            index += 1
        out.append(concrete)
    return out


def _escapes(
    test: MarchTest,
    lane_plan: _Plan,
    fault: Fault,
    n_words: int,
    width: int,
    contents: Sequence[int],
) -> bool:
    """Abstract compare-oracle replay on the fault's support words.

    Mirrors the reference engine exactly: per element, per address in
    element order, expected read = ``snapshot ^ mask`` (relative) or
    ``mask`` (absolute), derived write = ``last_raw ^ last_mask ^
    mask`` within the element visit.  Returns True when the fault
    *escapes* (no read ever mismatches).
    """
    memory = FaultyMemory(n_words, width, [fault])
    memory.load(list(contents))
    snapshot = memory.snapshot()
    for element, steps in zip(test.elements, lane_plan):
        for addr in element.order.addresses(n_words):
            last_raw: int | None = None
            last_mask = 0
            for is_read, relative, value in steps:
                if is_read:
                    raw = memory.read(addr)
                    expected = (snapshot[addr] ^ value) if relative else value
                    if raw != expected:
                        return False
                    last_raw, last_mask = raw, value
                else:
                    if relative:
                        if last_raw is None:
                            raise RuntimeError(
                                "underivable write reached the abstract "
                                "replay (validate first)"
                            )
                    memory.write(
                        addr,
                        (last_raw ^ last_mask ^ value) if relative else value,
                    )
    return True


# One abstract scenario: a fault on a tiny support memory plus every
# piece needed to replay and to explain an escape.
_Case = tuple[Fault, tuple[tuple[int, ...], ...], int, tuple[int, ...]]


def _word_contents(width: int) -> Iterator[tuple[int]]:
    for value in range(1 << width):
        yield (value,)


def _pair_contents() -> Iterator[tuple[int, int]]:
    return itertools.product((0, 1), repeat=2)  # type: ignore[return-value]


def _single_cell_cases(
    sig_list: Sequence[tuple[int, ...]], variants: Sequence[Fault]
) -> Iterator[_Case]:
    for sig in sig_list:
        for fault in variants:
            for contents in _word_contents(1):
                yield fault, (sig,), 1, contents


def _intra_pair_cases(
    sigs: dict[tuple[int, ...], list[int]], cf_kind: str
) -> Iterator[_Case]:
    aggressor, victim = Cell(0, 0), Cell(0, 1)
    for sig_a, sig_v in itertools.product(sigs, repeat=2):
        if sig_a == sig_v and len(sigs[sig_a]) < 2:
            continue  # needs two distinct positions with this signature
        for fault in _cf_variants(aggressor, victim, cf_kind):
            for contents in _word_contents(2):
                yield fault, (sig_a, sig_v), 1, contents


def _inter_pair_cases(
    sig_list: Sequence[tuple[int, ...]], cf_kind: str
) -> Iterator[_Case]:
    # Both relative address orders: aggressor below and above the victim.
    for sig in sig_list:
        for aggressor, victim in ((Cell(0, 0), Cell(1, 0)), (Cell(1, 0), Cell(0, 0))):
            for fault in _cf_variants(aggressor, victim, cf_kind):
                for contents in _pair_contents():
                    yield fault, (sig,), 2, contents


def _af_cases(sig_list: Sequence[tuple[int, ...]]) -> Iterator[_Case]:
    for sig in sig_list:
        for contents in _word_contents(1):
            yield AddressDecoderFault(0, "none"), (sig,), 1, contents
        for addr, other in ((0, 1), (1, 0)):
            for kind_code in ("other", "multi"):
                fault = AddressDecoderFault(addr, kind_code, other)
                for contents in _pair_contents():
                    yield fault, (sig,), 2, contents


def _cf_variants(aggressor: Cell, victim: Cell, cf_kind: str) -> list[Fault]:
    if cf_kind == "CFst":
        return [
            StateCouplingFault(aggressor, victim, y, x)
            for y, x in itertools.product((0, 1), repeat=2)
        ]
    if cf_kind == "CFid":
        return [
            IdempotentCouplingFault(aggressor, victim, rising, x)
            for rising, x in itertools.product((True, False), (0, 1))
        ]
    return [
        InversionCouplingFault(aggressor, victim, rising)
        for rising in (True, False)
    ]


def _predict_class(
    test: MarchTest, plan: _Plan, name: str, cases: Iterable[_Case]
) -> ClassPrediction:
    lane_plans: dict[tuple, _Plan] = {}
    count = 0
    for fault, lane_sigs, n_words, contents in cases:
        count += 1
        lane_plan = lane_plans.get(lane_sigs)
        if lane_plan is None:
            lane_plan = lane_plans.setdefault(lane_sigs, _lane_plan(plan, lane_sigs))
        if _escapes(test, lane_plan, fault, n_words, len(lane_sigs), contents):
            return ClassPrediction(
                name,
                guaranteed=False,
                cases=count,
                reason=(
                    f"escapes: {fault.describe()} with initial support "
                    f"content {tuple(contents)}"
                ),
            )
    return ClassPrediction(
        name, guaranteed=True, cases=count, reason=f"all {count} cases detected"
    )


def predict_coverage(test: MarchTest, *, width: int = 8) -> CoveragePrediction:
    """Static coverage claims for *test* at the given analysis width.

    Width matters only through the set of distinct bit signatures (and
    whether intra-word pairs exist at all): uniform-mask tests predict
    identically at every width, and ``width=1`` yields the classic
    bit-oriented claims the catalog metadata speaks about.
    """
    plan = _op_plan(test)
    if test.is_transparent_form:
        report = validate_transparent(test)
    elif test.is_solid_form:
        report = validate_solid(test)
    else:
        report = None
    if report is None or not report.ok:
        why = "mixed-form test" if report is None else report.problems[0]
        classes = {
            name: ClassPrediction(
                name, guaranteed=False, reason=f"ill-formed test: {why}"
            )
            for name in UNIVERSE_CLASSES
        }
        return CoveragePrediction(test.name, width, classes)

    sigs = _signatures(plan, width)
    sig_list = list(sigs)
    cell = Cell(0, 0)
    classes: dict[str, ClassPrediction] = {}

    classes["SAF"] = _predict_class(
        test,
        plan,
        "SAF",
        _single_cell_cases(
            sig_list, [StuckAtFault(cell, 0), StuckAtFault(cell, 1)]
        ),
    )
    classes["TF"] = _predict_class(
        test,
        plan,
        "TF",
        _single_cell_cases(
            sig_list,
            [TransitionFault(cell, rising=True), TransitionFault(cell, rising=False)],
        ),
    )
    for cf_kind in ("CFst", "CFid", "CFin"):
        intra_name = f"{cf_kind}-intra"
        if width < 2:
            classes[intra_name] = ClassPrediction(
                intra_name,
                guaranteed=False,
                vacuous=True,
                reason="no intra-word bit pairs at width 1",
            )
        else:
            classes[intra_name] = _predict_class(
                test, plan, intra_name, _intra_pair_cases(sigs, cf_kind)
            )
        inter_name = f"{cf_kind}-inter"
        classes[inter_name] = _predict_class(
            test, plan, inter_name, _inter_pair_cases(sig_list, cf_kind)
        )
    classes["RDF"] = _predict_class(
        test,
        plan,
        "RDF",
        _single_cell_cases(sig_list, [ReadDisturbFault(cell, deceptive=False)]),
    )
    classes["DRDF"] = _predict_class(
        test,
        plan,
        "DRDF",
        _single_cell_cases(sig_list, [ReadDisturbFault(cell, deceptive=True)]),
    )
    classes["AF"] = _predict_class(test, plan, "AF", _af_cases(sig_list))
    return CoveragePrediction(test.name, width, classes)
