"""IR-level lint rules (``I0xx``): checks on the compiled views of a
march test from :mod:`repro.engine.program`.

These rules guard the source→IR contract the engines rely on
(op-count and address-order fidelity), flag width-dependence hazards
(masks that cannot resolve, backgrounds that degenerate at narrow
widths), and report symbolic-engine compatibility (constructs that
force the interpreter fallback or pin verdicts to concrete widths).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..core.element import AddressOrder
from .diagnostics import Diagnostic, Location, Rule, RuleRegistry, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lint import LintTarget


def _diag(
    rule: Rule, target: "LintTarget", message: str, element=None, op=None
) -> Diagnostic:
    return Diagnostic(
        rule.id,
        rule.severity,
        message,
        Location(subject=target.name, element=element, op=op),
    )


def check_ir_op_count(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    """I001: compiled op/read counts must match the source test."""
    program = target.program
    if program is None:
        return
    test = target.test
    if program.op_count != test.op_count or program.n_reads != test.n_reads:
        yield _diag(
            rule,
            target,
            f"compiled program has {program.op_count} ops / "
            f"{program.n_reads} reads, source has {test.op_count} / "
            f"{test.n_reads}",
        )
        return
    for ei, (pe, se) in enumerate(zip(program.elements, test.elements)):
        if len(pe.steps) != len(se.ops):
            yield _diag(
                rule,
                target,
                f"compiled element has {len(pe.steps)} steps, source "
                f"element has {len(se.ops)} ops",
                element=ei,
            )


def check_ir_address_order(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    """I002: the IR's descending flags must mirror the source orders
    (``ANY`` resolves to ascending, exactly like the executor)."""
    program = target.program
    if program is None:
        return
    for ei, (pe, se) in enumerate(zip(program.elements, target.test.elements)):
        descending = se.order is AddressOrder.DOWN
        if pe.descending != descending:
            compiled = "descending" if pe.descending else "ascending"
            yield _diag(
                rule,
                target,
                f"compiled element is {compiled}, "
                f"source order is {se.order.arrow}",
                element=ei,
            )


def check_degenerate_background(
    rule: Rule, target: "LintTarget"
) -> Iterator[Diagnostic]:
    """I003: a checker background ``D_k`` whose stride ``2**(k-1)``
    reaches the word width resolves to the all-ones background — the
    pass adds cost but no new intra-word sensitization."""
    width = target.width
    seen: set[int] = set()
    for ei, element in enumerate(target.test.elements):
        for oi, op in enumerate(element.ops):
            for pattern in op.data.mask.terms:
                if pattern.family != "checker" or pattern.index in seen:
                    continue
                seen.add(pattern.index)
                if (1 << (pattern.index - 1)) >= width:
                    yield _diag(
                        rule,
                        target,
                        f"background D{pattern.index} degenerates to the "
                        f"all-ones background at width {width} (stride "
                        f"{1 << (pattern.index - 1)} >= width)",
                        element=ei,
                        op=oi,
                    )


def check_unresolvable_mask(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    """I005: some mask cannot resolve at the lint width, so
    ``compile_march(test, width)`` raises."""
    if target.program is not None:
        return
    for ei, element in enumerate(target.test.elements):
        for oi, op in enumerate(element.ops):
            if op.data.mask.min_width > target.width:
                yield _diag(
                    rule,
                    target,
                    f"mask {op.data.mask.symbol} needs width >= "
                    f"{op.data.mask.min_width}, lint width is {target.width} "
                    "(compilation fails)",
                    element=ei,
                    op=oi,
                )


def check_symbolic_compat(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    """I004: constructs that limit the symbolic engine — underivable
    writes force the interpreter/ExecutionError path in derived-write
    mode."""
    symbolic = target.symbolic
    if symbolic is None or symbolic.derivable:
        return
    for ei, element in enumerate(symbolic.elements):
        for oi, (_is_read, _relative, _mask, derivable) in enumerate(element.steps):
            if not derivable:
                yield _diag(
                    rule,
                    target,
                    "underivable write: derived-write engines raise "
                    "ExecutionError and symbolic evaluation falls back "
                    "to absolute semantics",
                    element=ei,
                    op=oi,
                )


def check_ir_stats(rule: Rule, target: "LintTarget") -> Iterator[Diagnostic]:
    """I010: one informational line about the compiled shape."""
    program = target.program
    if program is None:
        return
    derivable = "derivable" if program.derivable else "NOT derivable"
    symbolic = target.symbolic
    min_width = symbolic.min_width if symbolic is not None else 1
    concretize = (
        f"; symbolic verdicts concretize at widths >= {min_width}"
        if min_width > 1
        else ""
    )
    yield _diag(
        rule,
        target,
        f"IR at width {target.width}: {len(program.elements)} elements, "
        f"{program.op_count} steps ({program.n_reads} reads), "
        f"writes {derivable} by the BIST datapath{concretize}",
    )


_RULES = (
    (
        "I001",
        "ir-op-count",
        Severity.ERROR,
        "compiled op/read counts disagree with the source test",
        check_ir_op_count,
    ),
    (
        "I002",
        "ir-address-order",
        Severity.ERROR,
        "compiled address order disagrees with the source element",
        check_ir_address_order,
    ),
    (
        "I003",
        "degenerate-background",
        Severity.WARNING,
        "checker background degenerates to all-ones at this width",
        check_degenerate_background,
    ),
    (
        "I004",
        "symbolic-compat",
        Severity.WARNING,
        "construct limits the symbolic engine (fallback or min width)",
        check_symbolic_compat,
    ),
    (
        "I005",
        "unresolvable-mask",
        Severity.ERROR,
        "mask cannot resolve at the lint width",
        check_unresolvable_mask,
    ),
    (
        "I010",
        "ir-stats",
        Severity.INFO,
        "compiled-program shape summary",
        check_ir_stats,
    ),
)


def register(registry: RuleRegistry) -> None:
    """Declare the IR-level rules in *registry*."""
    for rule_id, name, severity, summary, check in _RULES:
        registry.register(
            Rule(rule_id, name, severity, summary, layer="ir", check=check)
        )
