"""Structured diagnostics for the static analysis subsystem.

Everything the lint layers emit funnels through one shape: a
:class:`Diagnostic` carries a rule id, a severity, a message and a
:class:`Location` precise down to the element/op index of a march test
(or file/line for the source-level determinism lint).  Rules are
declared once in a :class:`RuleRegistry` so ids are unique, selectable
from the CLI, and renderable as a documentation table; the text and
JSON renderers are shared by ``python -m repro lint`` and
``tools/detlint.py``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence


class Severity(enum.IntEnum):
    """Diagnostic severity; the integer order is the gating order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            known = ", ".join(s.name.lower() for s in cls)
            raise ValueError(
                f"unknown severity {text!r}; expected one of {known}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    ``subject`` is a march-test name or a file path; ``element``/``op``
    index into the test structure (march/IR layers) while ``line``/
    ``col`` index into source text (determinism lint).  All fields are
    optional so one shape serves every layer.
    """

    subject: str | None = None
    element: int | None = None
    op: int | None = None
    line: int | None = None
    col: int | None = None

    def render(self) -> str:
        parts = [self.subject or "<test>"]
        if self.line is not None:
            parts.append(f"{self.line}")
            if self.col is not None:
                parts.append(f"{self.col}")
            return ":".join(parts)
        where = ""
        if self.element is not None:
            where = f"e{self.element}"
            if self.op is not None:
                where += f".op{self.op}"
        return f"{parts[0]} {where}".rstrip()

    def to_dict(self) -> dict:
        return {
            key: value
            for key, value in (
                ("subject", self.subject),
                ("element", self.element),
                ("op", self.op),
                ("line", self.line),
                ("col", self.col),
            )
            if value is not None
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Location":
        return cls(
            subject=data.get("subject"),
            element=data.get("element"),
            op=data.get("op"),
            line=data.get("line"),
            col=data.get("col"),
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id + severity + message + location."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)

    def render(self) -> str:
        return (
            f"{self.location.render()}: {self.severity}[{self.rule}] "
            f"{self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Diagnostic":
        return cls(
            rule=data["rule"],
            severity=Severity.parse(data["severity"]),
            message=data["message"],
            location=Location.from_dict(data.get("location", {})),
        )


@dataclass(frozen=True)
class Rule:
    """A registered check: stable id, default severity, and the
    callable that inspects a lint target and yields diagnostics.

    ``layer`` groups rules for selection and documentation: ``march``
    rules see the source :class:`~repro.core.march.MarchTest`, ``ir``
    rules see the compiled/symbolic programs, ``exec`` rules run the
    simulator (never part of the static default set), and ``det``
    rules belong to the source-level determinism lint.

    ``check`` is called as ``check(rule, target)`` — the rule passes
    itself so one generic function can serve several registered ids —
    and yields :class:`Diagnostic` instances.
    """

    id: str
    name: str
    severity: Severity
    summary: str
    layer: str = "march"
    check: Callable[..., Iterable[Diagnostic]] | None = None

    def run(self, target) -> list[Diagnostic]:
        if self.check is None:
            return []
        return list(self.check(self, target))


class RuleRegistry:
    """Ordered, collision-checked collection of :class:`Rule`."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            known = ", ".join(sorted(self._rules))
            raise ValueError(
                f"unknown rule {rule_id!r}; known rules: {known}"
            ) from None

    def select(
        self,
        ids: Iterable[str] | None = None,
        *,
        layers: Iterable[str] | None = None,
    ) -> list[Rule]:
        """Rules filtered by explicit ids and/or layers, in id order.

        Unknown ids raise (a usage error, not a silent no-op).
        """
        if ids is None:
            rules = list(self)
        else:
            rules = [self.get(rule_id) for rule_id in ids]
        if layers is not None:
            wanted = set(layers)
            rules = [rule for rule in rules if rule.layer in wanted]
        return sorted(rules, key=lambda rule: rule.id)

    def __iter__(self) -> Iterator[Rule]:
        return iter(sorted(self._rules.values(), key=lambda rule: rule.id))

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules


def filter_severity(
    diagnostics: Iterable[Diagnostic], minimum: Severity
) -> list[Diagnostic]:
    return [d for d in diagnostics if d.severity >= minimum]


def max_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    best: Severity | None = None
    for diagnostic in diagnostics:
        if best is None or diagnostic.severity > best:
            best = diagnostic.severity
    return best


def severity_counts(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    counts = {str(severity): 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[str(diagnostic.severity)] += 1
    return counts


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """One line per diagnostic plus a counts summary line."""
    lines = [d.render() for d in diagnostics]
    counts = severity_counts(diagnostics)
    summary = ", ".join(f"{counts[str(s)]} {s}" for s in sorted(Severity, reverse=True))
    lines.append(f"lint: {summary}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Machine-readable report: diagnostics + severity counts."""
    payload = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "counts": severity_counts(diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
