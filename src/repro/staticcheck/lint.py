"""Lint driver: assembles the default registry and runs rule layers
over march tests (with cached compiled/symbolic/predicted views)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.march import MarchTest
from ..core.validate import validate_solid, validate_transparent
from ..engine.program import compile_march, compile_symbolic
from . import ir_rules, march_rules
from .diagnostics import Diagnostic, RuleRegistry
from .predictor import CoveragePrediction, predict_coverage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..library.catalog import CatalogEntry

DEFAULT_WIDTH = 32

# Layers the static `repro lint` command runs; `exec` rules (which run
# the simulator) are opt-in by explicit rule selection.
STATIC_LAYERS = ("march", "ir")


@dataclass
class LintTarget:
    """One test under analysis, with lazily cached derived views.

    Rules pull whatever layer they need: the raw test, the compiled
    program at ``width`` (``None`` when compilation fails — the
    unresolvable-mask rule reports why), the symbolic program, and the
    coverage predictions at ``width`` and at width 1 (the bit-oriented
    claims the catalog metadata is written in).
    """

    test: MarchTest
    width: int = DEFAULT_WIDTH
    entry: "CatalogEntry | None" = None

    @property
    def name(self) -> str:
        return self.test.name

    @cached_property
    def well_formed(self) -> bool:
        if self.test.is_transparent_form:
            return validate_transparent(self.test).ok
        if self.test.is_solid_form:
            return validate_solid(self.test).ok
        return False

    @cached_property
    def program(self):
        try:
            return compile_march(self.test, self.width)
        except ValueError:
            return None

    @cached_property
    def symbolic(self):
        try:
            return compile_symbolic(self.test)
        except ValueError:  # pragma: no cover - no current construct hits this
            return None

    @cached_property
    def prediction(self) -> CoveragePrediction:
        return predict_coverage(self.test, width=self.width)

    @cached_property
    def bit_prediction(self) -> CoveragePrediction:
        return predict_coverage(self.test, width=1)


def default_registry() -> RuleRegistry:
    """A fresh registry holding every built-in rule."""
    registry = RuleRegistry()
    march_rules.register(registry)
    ir_rules.register(registry)
    # Execution-layer rule ids are registered (documented, selectable)
    # even though their checks live outside the static path.
    from ..core.validate import register_exec_rules

    register_exec_rules(registry)
    return registry


_DEFAULT_REGISTRY: RuleRegistry | None = None


def registry() -> RuleRegistry:
    """The shared default registry (built once per process)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = default_registry()
    return _DEFAULT_REGISTRY


def lint_test(
    test: MarchTest,
    *,
    width: int = DEFAULT_WIDTH,
    entry: "CatalogEntry | None" = None,
    rules: Iterable[str] | None = None,
    rule_registry: RuleRegistry | None = None,
) -> list[Diagnostic]:
    """Run the static rule set over one test.

    ``rules`` selects explicit rule ids (unknown ids raise
    ``ValueError`` — a usage error); by default every ``march`` and
    ``ir`` layer rule runs.
    """
    reg = rule_registry if rule_registry is not None else registry()
    layers = None if rules is not None else STATIC_LAYERS
    selected = reg.select(rules, layers=layers)
    target = LintTarget(test, width=width, entry=entry)
    diagnostics: list[Diagnostic] = []
    for rule in selected:
        diagnostics.extend(rule.run(target))
    return diagnostics


def lint_catalog(
    names: Sequence[str] | None = None,
    *,
    width: int = DEFAULT_WIDTH,
    rules: Iterable[str] | None = None,
    rule_registry: RuleRegistry | None = None,
) -> list[Diagnostic]:
    """Lint catalog entries (all of them by default), with catalog
    metadata attached so the claim-drift rule (M041) is live."""
    from ..library import catalog

    wanted = catalog.names() if names is None else list(names)
    diagnostics: list[Diagnostic] = []
    for name in wanted:
        entry = catalog.entry(name)
        diagnostics.extend(
            lint_test(
                entry.test,
                width=width,
                entry=entry,
                rules=rules,
                rule_registry=rule_registry,
            )
        )
    return diagnostics
