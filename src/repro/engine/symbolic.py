"""Symbolic engine: width-generic single-fault campaign evaluation.

The paper's Table 2 argues fault coverage *symbolically*: a transparent
test's data is ``c ^ mask`` for width-polymorphic masks, and the bit of
every mask at a fixed position ``j`` is the same for all word widths
greater than ``j`` (:meth:`repro.core.ops.Mask.bit_at`).  Word
operations are bitwise and every classic fault couples at most two bit
positions, so the detection verdict of a fault decomposes into
independent per-position behaviours that never mention the width.  This
backend exploits that:

* the state of a word is the Mask-algebra expression
  ``(c if relative else 0) ^ mask`` of
  :mod:`repro.analysis.symbolic` — *not* a concrete integer — and the
  fault-free evolution of the whole address space is one symbolic
  trace;
* a fault is evaluated by an exact per-bit replay of the program over
  its support slots (the ``(addr, bit)`` cells it can influence),
  enumerated over the 2 or 4 possible initial values of those bits —
  yielding a :class:`SymbolicVerdict` that holds for **every** word
  width the fault fits in;
* replays are shared through a *shape cache*: two faults whose support
  positions have equal :meth:`~repro.engine.program.SymbolicProgram.
  bit_signature` and equal parameters provably behave identically, so
  a whole campaign costs one replay per distinct shape;
* :meth:`SymbolicVerdict.concretize` projects a verdict back to any
  concrete ``(width, words)`` for cross-checking against the
  ``reference``/``batch`` engines (``python -m repro table2``).

Address-decoder faults are the one word-wide class: their routing is
still bitwise, so the verdict is evaluated per position and
concretization ORs the positions of the target width — width-generic
evaluation, width-dependent projection.

The MISR signature/aliasing oracles are *not* offered: signature
folding maps word bit ``j`` to register position ``j mod misr_width``,
which is irreducibly width-concrete, so those entry points raise
:class:`ExecutionError` pointing at the concrete engines.

Single executions (:meth:`SymbolicEngine.run`) use the reference
interpreter unchanged: the symbolic acceleration is campaign-level.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..analysis.symbolic import symbolic_trace
from ..core.march import MarchTest
from ..memory.faults import (
    AddressDecoderFault,
    Cell,
    CouplingFault,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from .base import Engine, ExecutionError, ReadSink, RunResult, register_engine
from .program import SymbolicProgram, compile_symbolic
from .reference import execute_program


class SymbolicEngine(Engine):
    """Width-generic campaign backend over the symbolic IR."""

    name = "symbolic"

    def __init__(self, max_contexts: int = 8) -> None:
        self._contexts: dict = {}
        self._max_contexts = max_contexts

    # -- single runs (concrete, via the interpreter) -------------------
    def run(
        self,
        test,
        memory,
        *,
        snapshot: Sequence[int] | None = None,
        collect: bool = False,
        stop_on_mismatch: bool = False,
        read_sink: ReadSink | None = None,
        derive_writes: bool = True,
    ) -> RunResult:
        if isinstance(test, SymbolicProgram):
            test = test.test
        program = self._program(test, memory.width)
        return execute_program(
            program,
            memory,
            snapshot=snapshot,
            collect=collect,
            stop_on_mismatch=stop_on_mismatch,
            read_sink=read_sink,
            derive_writes=derive_writes,
        )

    # -- campaign entry points -----------------------------------------
    def detect_batch(
        self,
        test,
        n_words: int,
        width: "int | str | None",
        words: Sequence[int] | None,
        faults: Sequence[Fault],
        *,
        derive_writes: bool = True,
        context: object = None,
    ) -> list:
        """Compare-oracle verdicts through one symbolic evaluation.

        With a concrete *width* the verdicts are plain bools — each
        fault is evaluated once, width-generically, then concretized at
        ``(width, words)`` — so the engine drops into ``run_campaign``
        /"CampaignRunner`` wherever ``reference``/``batch`` do.  With
        ``width=None`` (or ``"symbolic"``) the *words* are ignored and
        the raw :class:`SymbolicVerdict` objects are returned instead.
        ``context`` is accepted for interface compatibility and
        ignored: the engine amortizes through its own internal
        shape-cached ``_SymbolicCampaign`` contexts, which are keyed by
        ``(program, datapath)`` and already shared across widths,
        words and campaigns.
        """
        program = self._symbolic(test)
        if width is None or width == "symbolic":
            return self.detect_symbolic(
                program, n_words, faults, derive_writes=derive_writes
            )
        program.at_width(width)  # surface unresolvable-mask errors early
        if words is None or len(words) != n_words:
            raise ExecutionError(
                "initial content length does not match memory size"
            )
        if derive_writes and not program.derivable:
            # An underivable program may still detect (or raise) fault
            # by fault depending on where the first mismatch stops the
            # run; only the interpreter reproduces that exactly.
            return super().detect_batch(
                program.test,
                n_words,
                width,
                words,
                faults,
                derive_writes=derive_writes,
            )
        ctx = self._context(program, derive_writes)
        words = [w & ((1 << width) - 1) for w in words]
        out = []
        for fault in faults:
            fault.validate(n_words, width)
            try:
                verdict = ctx.verdict(fault)
            except _NoSymbolicSemantics:
                out.append(self._fallback(program, width, words, fault, derive_writes))
                continue
            out.append(verdict.concretize(width, words))
        return out

    def detect_symbolic(
        self,
        test,
        n_words: int,
        faults: Sequence[Fault],
        *,
        derive_writes: bool = True,
    ) -> "list[SymbolicVerdict]":
        """Width-generic verdicts for every fault in *faults*.

        Each verdict holds simultaneously for every word width the
        fault fits in (``verdict.min_width``); project one back to a
        concrete memory with :meth:`SymbolicVerdict.concretize`.
        """
        program = self._symbolic(test)
        if derive_writes and not program.derivable:
            raise ExecutionError(
                f"{program.name}: an underivable program has no "
                "width-generic verdicts (the interpreter may raise or "
                "detect depending on concrete content); use the "
                "reference engine"
            )
        ctx = self._context(program, derive_writes)
        verdicts = []
        for fault in faults:
            _validate_addresses(fault, n_words)
            try:
                verdicts.append(ctx.verdict(fault))
            except _NoSymbolicSemantics:
                raise ExecutionError(
                    f"no symbolic semantics for fault kind {fault.kind!r}; "
                    "evaluate it through a concrete engine"
                ) from None
        return verdicts

    def detect_signature_batch(self, *args, **kwargs):
        raise ExecutionError(
            "the symbolic engine has no MISR signature oracle: signature "
            "folding maps word bit j to register position j mod "
            "misr_width, which is width-concrete; run signature-mode "
            "campaigns through engine='reference' or engine='batch'"
        )

    def detect_aliasing_batch(self, *args, **kwargs):
        raise ExecutionError(
            "the symbolic engine has no MISR aliasing oracle: signature "
            "folding is width-concrete; run aliasing-mode campaigns "
            "through engine='reference' or engine='batch'"
        )

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _symbolic(test) -> SymbolicProgram:
        if isinstance(test, SymbolicProgram):
            return test
        if isinstance(test, MarchTest):
            return compile_symbolic(test)
        raise ExecutionError(
            "the symbolic engine needs the symbolic march test, not a "
            f"width-lowered program ({test!r})"
        )

    def _context(
        self, program: SymbolicProgram, derive_writes: bool
    ) -> "_SymbolicCampaign":
        key = (program, derive_writes)
        ctx = self._contexts.get(key)
        if ctx is None:
            if len(self._contexts) >= self._max_contexts:
                self._contexts.pop(next(iter(self._contexts)))
            ctx = _SymbolicCampaign(program, derive_writes)
            self._contexts[key] = ctx
        return ctx

    @staticmethod
    def _fallback(program, width, words, fault, derive_writes) -> bool:
        """Full-fidelity interpretation for fault kinds without
        symbolic semantics (user-defined models)."""
        from ..memory.injection import FaultyMemory

        memory = FaultyMemory(len(words), width, [fault])
        memory.load(words)
        return execute_program(
            program.at_width(width),
            memory,
            stop_on_mismatch=True,
            derive_writes=derive_writes,
        ).detected


class _NoSymbolicSemantics(Exception):
    """Internal: the fault kind has no per-bit replay model."""


def _validate_addresses(fault: Fault, n_words: int) -> None:
    """Address-bounds check without committing to a width (bit fit is
    what ``SymbolicVerdict.min_width`` reports instead)."""
    if isinstance(fault, AddressDecoderFault):
        fault.validate(n_words, 1)
        return
    for cell in fault.cells:
        if not 0 <= cell.addr < n_words:
            raise ValueError(
                f"{fault.describe()}: address {cell.addr} out of range"
            )


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


class SymbolicVerdict:
    """A width-generic detection verdict for one fault.

    ``table`` (cell-confined faults) maps each assignment of the
    support cells' initial bits to the detection verdict; the mapping
    is provably identical for every word width the fault fits in.
    :meth:`concretize` projects the verdict onto a concrete memory.
    """

    __slots__ = ("ctx", "fault")

    def __init__(self, ctx: "_SymbolicCampaign", fault: Fault) -> None:
        self.ctx = ctx
        self.fault = fault

    @property
    def min_width(self) -> int:
        """Smallest word width the fault fits in (computed on demand —
        campaign-scale verdict construction stays allocation-only)."""
        return 1 + max((c.bit for c in self.fault.cells), default=0)

    @property
    def width_independent(self) -> bool:
        """True when the support verdict cannot change with the width
        (concretization still adds the fault-free baseline of
        ill-formed tests, which scans every position)."""
        raise NotImplementedError

    @property
    def constant(self) -> "bool | None":
        """``True`` when the verdict is *detected* for every width and
        every initial content — the common case for a well-formed
        transparent test, where most classes detect all assignments.
        ``None`` means the verdict genuinely depends on ``(width,
        words)`` and must be :meth:`concretize`-d.  (``False`` is never
        returned: an all-miss support table can still be overridden by
        the fault-free baseline of an ill-formed test, which is
        width-and content-dependent.)  Width sweeps use this to skip
        per-width concretization for the constant majority."""
        raise NotImplementedError

    def concretize(self, width: int, words: Sequence[int]) -> bool:
        """The concrete verdict at *width* for initial content *words*
        — bit-identical to the reference engine's campaign verdict."""
        raise NotImplementedError

    def _baseline_outside(
        self,
        width: int,
        words: Sequence[int],
        excluded_cells: tuple[Cell, ...] = (),
        excluded_addrs: frozenset = frozenset(),
    ) -> bool:
        """Fault-free mismatches anywhere the fault cannot reach
        (non-empty only for ill-formed tests)."""
        baseline = self.ctx.baseline_map(width, words)
        if not baseline:
            return False
        for addr, positions in baseline.items():
            if addr in excluded_addrs:
                continue
            for cell in excluded_cells:
                if cell.addr == addr:
                    positions &= ~(1 << cell.bit)
            if positions:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.fault.describe()}>"


class AssignmentTable:
    """Assignment → verdict mapping of one fault shape.

    The constant cases are precomputed: for a well-formed transparent
    test most classes detect *every* initial assignment (``always``),
    so campaign-scale concretization skips the per-fault assignment
    extraction entirely.
    """

    __slots__ = ("data", "always", "never")

    def __init__(self, data: dict) -> None:
        self.data = data
        self.always = all(data.values())
        self.never = not any(data.values())

    def __getitem__(self, assignment):
        return self.data[assignment]

    def __eq__(self, other) -> bool:
        if isinstance(other, AssignmentTable):
            return self.data == other.data
        return self.data == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AssignmentTable({self.data!r})"


class CellSymbolicVerdict(SymbolicVerdict):
    """Verdict of a cell-confined fault (SAF/TF/RDF/DRDF/CF*): one
    assignment table over the initial bits of the fault's cells."""

    __slots__ = ("cells", "table")

    def __init__(self, ctx, fault, cells, table) -> None:
        super().__init__(ctx, fault)
        self.cells = cells
        self.table = table

    @property
    def width_independent(self) -> bool:
        return True

    @property
    def constant(self) -> "bool | None":
        return True if self.table.always else None

    def concretize(self, width: int, words: Sequence[int]) -> bool:
        self.fault.validate(len(words), width)
        table = self.table
        if table.always:
            return True
        if not table.never:
            cells = self.cells
            if len(cells) == 2:  # the CF common case, sans genexpr
                a, b = cells
                assignment = (
                    (words[a.addr] >> a.bit) & 1,
                    (words[b.addr] >> b.bit) & 1,
                )
            else:
                assignment = tuple(
                    (words[cell.addr] >> cell.bit) & 1 for cell in cells
                )
            if table.data[assignment]:
                return True
        return self._baseline_outside(width, words, excluded_cells=self.cells)


class WordSymbolicVerdict(SymbolicVerdict):
    """Verdict of an address-decoder fault: evaluated per bit position
    (lazily, shape-cached), concretization ORs the positions of the
    target width."""

    __slots__ = ()

    @property
    def support(self) -> frozenset:
        """Word addresses the decoder fault can influence (on demand —
        only the rare all-miss baseline path needs it)."""
        fault = self.fault
        addrs = {fault.addr}
        if fault.other_addr is not None:
            addrs.add(fault.other_addr)
        return frozenset(addrs)

    @property
    def width_independent(self) -> bool:
        return False

    @property
    def constant(self) -> "bool | None":
        # Every width >= 1 evaluates position 0, so an all-assignment
        # detection there decides the verdict for the whole sweep.
        return True if self.position_table(0).always else None

    def position_table(self, position: int) -> "AssignmentTable":
        """Assignment table of the support words' bits at *position*."""
        return self.ctx.af_table(self.fault, position)

    def concretize(self, width: int, words: Sequence[int]) -> bool:
        fault = self.fault
        fault.validate(len(words), width)
        for j in range(width):
            table = self.position_table(j)
            if table.always:
                return True
            if table.never:
                continue
            assignment = ((words[fault.addr] >> j) & 1,)
            if fault.other_addr is not None:
                assignment += ((words[fault.other_addr] >> j) & 1,)
            if table.data[assignment]:
                return True
        return self._baseline_outside(width, words, excluded_addrs=self.support)


# ---------------------------------------------------------------------------
# Campaign context: shape-cached per-bit replays
# ---------------------------------------------------------------------------


class _SymbolicCampaign:
    """Shared per-(program, datapath) state of symbolic campaigns.

    Holds the fault-free symbolic trace (the address-space state
    model), the shape-keyed assignment tables, and the per-(width,
    words) fault-free baseline of the most recent concretization.
    """

    def __init__(self, program: SymbolicProgram, derive_writes: bool) -> None:
        self.program = program
        self.derive = derive_writes
        self.trace = symbolic_trace(program.test, derive_writes=derive_writes)
        self._tables: dict = {}
        self._fault_free: dict = {}
        self._fault_free_by_position: dict = {}
        self._baseline_key = None
        self._baseline_value: dict = {}
        # Position-signature interning: shape keys embed bit signatures,
        # which are long tuples whose hashing (and the program hashing
        # behind the bit_signature/bit_plan lru_caches) dominates
        # campaign dispatch if repeated per fault.  Each position
        # resolves to a small interned id exactly once per context.
        self._sig_ids: dict[int, int] = {}
        self._sig_intern: dict[tuple, int] = {}
        self._plans: dict[int, tuple] = {}
        self._clean: dict[int, bool] = {}

    def _sig_id(self, position: int) -> int:
        """Small interned id of ``program.bit_signature(position)`` —
        equal ids iff equal signatures, cheap to hash in shape keys."""
        sid = self._sig_ids.get(position)
        if sid is None:
            signature = self.program.bit_signature(position)
            sid = self._sig_intern.setdefault(
                signature, len(self._sig_intern)
            )
            self._sig_ids[position] = sid
        return sid

    def _bit_plan(self, position: int) -> tuple:
        """Per-context memo of ``program.bit_plan(position)`` (the
        lru_cache behind it re-hashes the whole program per call)."""
        plan = self._plans.get(position)
        if plan is None:
            plan = self.program.bit_plan(position)
            self._plans[position] = plan
        return plan

    # -- verdict construction ------------------------------------------
    def verdict(self, fault: Fault) -> SymbolicVerdict:
        if isinstance(fault, AddressDecoderFault):
            return WordSymbolicVerdict(self, fault)
        key = self._shape_key(fault)
        if key is None:
            raise _NoSymbolicSemantics(fault.kind)
        table = self._tables.get(key)
        if table is None:
            table = self._build_family(fault, key)
            if table is None:  # pragma: no cover - known kinds only
                table = self._cell_table(fault)
                self._tables[key] = table
        return CellSymbolicVerdict(self, fault, fault.cells, table)

    def _shape_key(self, fault: Fault):
        """Everything besides the initial support bits that the per-bit
        replay can depend on; ``None`` for unknown fault kinds.  Bit
        signatures appear as interned ids (:meth:`_sig_id`), so keys
        stay cheap to hash at campaign scale."""
        if isinstance(fault, StuckAtFault):
            return ("SAF", fault.value, self._sig_id(fault.cell.bit))
        if isinstance(fault, TransitionFault):
            return ("TF", fault.rising, self._sig_id(fault.cell.bit))
        if isinstance(fault, ReadDisturbFault):
            return (
                "RDF",
                fault.deceptive,
                self._sig_id(fault.cell.bit),
            )
        if isinstance(fault, CouplingFault):
            aggr, vict = fault.aggressor, fault.victim
            order = "intra" if fault.intra_word else aggr.addr < vict.addr
            if isinstance(fault, StateCouplingFault):
                params = (fault.aggressor_value, fault.forced_value)
            elif isinstance(fault, IdempotentCouplingFault):
                params = (fault.rising, fault.forced_value)
            elif isinstance(fault, InversionCouplingFault):
                params = (fault.rising,)
            else:  # pragma: no cover - no other coupling kinds exist
                return None
            return (
                fault.kind,
                params,
                order,
                self._sig_id(aggr.bit),
                self._sig_id(vict.bit),
            )
        return None

    def _cell_table(self, fault: Fault) -> AssignmentTable:
        """Scalar shape table: one :meth:`_replay` per assignment.

        Kept as the semantic reference for :meth:`_build_family` (the
        packed path that :meth:`verdict` actually uses); the
        equivalence tests compare the two entry for entry."""
        cells = fault.cells
        slots = tuple((cell.addr, cell.bit) for cell in cells)
        table = {}
        for assignment in itertools.product((0, 1), repeat=len(slots)):
            table[assignment] = self._replay(fault, slots, assignment)
        return AssignmentTable(table)

    def _build_family(self, fault: Fault, key) -> "AssignmentTable | None":
        """Evaluate *fault*'s whole shape family — every parameter
        variant times every initial assignment — as bit lanes of a
        single packed replay, populating all sibling ``_tables``
        entries at once.

        Faults sharing support-bit signatures differ only in their
        scalar parameters (stuck value, rising edge, forced value, …),
        and the per-bit replay is bitwise in those parameters, so the
        2–4 assignments of all 2–4 parameter combinations fit in one
        4–16-lane integer pass: lane ``p * n_assign + a`` carries
        parameter combination ``p`` under initial assignment ``a``.
        One program walk therefore prices the entire family where the
        scalar path would run ``n_params * n_assign`` walks.  Returns
        the table for *key* (``None`` for unknown kinds)."""
        cells = fault.cells
        slots = tuple((cell.addr, cell.bit) for cell in cells)
        assignments = list(itertools.product((0, 1), repeat=len(slots)))
        n_assign = len(assignments)

        if isinstance(fault, StuckAtFault):
            sig = self._sig_id(fault.cell.bit)
            members = [({"value": v}, ("SAF", v, sig)) for v in (0, 1)]
        elif isinstance(fault, TransitionFault):
            sig = self._sig_id(fault.cell.bit)
            members = [
                ({"rising": r}, ("TF", r, sig)) for r in (True, False)
            ]
        elif isinstance(fault, ReadDisturbFault):
            sig = self._sig_id(fault.cell.bit)
            members = [
                ({"deceptive": d}, ("RDF", d, sig)) for d in (True, False)
            ]
        elif isinstance(fault, CouplingFault):
            aggr, vict = fault.aggressor, fault.victim
            order = "intra" if fault.intra_word else aggr.addr < vict.addr
            siga = self._sig_id(aggr.bit)
            sigv = self._sig_id(vict.bit)
            kind = fault.kind
            if isinstance(fault, StateCouplingFault):
                members = [
                    (
                        {"aggressor": av, "value": fv},
                        (kind, (av, fv), order, siga, sigv),
                    )
                    for av in (0, 1)
                    for fv in (0, 1)
                ]
            elif isinstance(fault, IdempotentCouplingFault):
                members = [
                    (
                        {"rising": r, "value": fv},
                        (kind, (r, fv), order, siga, sigv),
                    )
                    for r in (True, False)
                    for fv in (0, 1)
                ]
            elif isinstance(fault, InversionCouplingFault):
                members = [
                    ({"rising": r}, (kind, (r,), order, siga, sigv))
                    for r in (True, False)
                ]
            else:  # pragma: no cover - no other coupling kinds exist
                return None
        else:  # pragma: no cover - filtered by _shape_key
            return None

        n_params = len(members)
        lanes = n_params * n_assign
        # Bit at the start of every parameter block: multiplying a
        # per-block pattern by it replicates the pattern across blocks.
        block_starts = sum(1 << (pi * n_assign) for pi in range(n_params))
        masks: dict[str, int] = {}
        for pi, (params, _) in enumerate(members):
            blk = ((1 << n_assign) - 1) << (pi * n_assign)
            for name, val in params.items():
                if val:
                    masks[name] = masks.get(name, 0) | blk
        init = []
        for s in range(len(slots)):
            pattern = 0
            for ai, assignment in enumerate(assignments):
                if assignment[s]:
                    pattern |= 1 << ai
            init.append(pattern * block_starts)

        det = self._family_replay(fault, slots, init, masks, lanes)

        result = None
        for pi, (_, fkey) in enumerate(members):
            base = pi * n_assign
            table = AssignmentTable(
                {
                    assignment: bool((det >> (base + ai)) & 1)
                    for ai, assignment in enumerate(assignments)
                }
            )
            self._tables[fkey] = table
            if fkey == key:
                result = table
        return result

    def _family_replay(
        self,
        fault: Fault,
        slots: tuple[tuple[int, int], ...],
        init: list[int],
        masks: dict[str, int],
        lanes: int,
    ) -> int:
        """Lane-parallel :meth:`_replay`: every slot's state is an
        integer whose bit ``l`` is that slot's value in lane ``l``, and
        the fault-model rules are applied through the per-parameter
        lane masks in *masks*.  Returns the lane vector of detections
        (bit ``l`` set iff lane ``l``'s run observed a mismatch)."""
        derive = self.derive
        full = (1 << lanes) - 1
        state = list(init)

        is_saf = isinstance(fault, StuckAtFault)
        is_tf = isinstance(fault, TransitionFault)
        is_rdf = isinstance(fault, ReadDisturbFault)
        is_cfst = isinstance(fault, StateCouplingFault)
        is_cfid = isinstance(fault, IdempotentCouplingFault)
        is_cfin = isinstance(fault, InversionCouplingFault)

        slot_index = {slot: i for i, slot in enumerate(slots)}
        fault_slot = aggr_slot = vict_slot = None
        if is_saf or is_tf or is_rdf:
            cell = fault.cells[0]
            fault_slot = slot_index[(cell.addr, cell.bit)]
        if is_cfst or is_cfid or is_cfin:
            aggr_slot = slot_index[(fault.aggressor.addr, fault.aggressor.bit)]
            vict_slot = slot_index[(fault.victim.addr, fault.victim.bit)]

        # Lanes where: the stuck/forced value is 1; the edge parameter
        # is rising; the read disturb is deceptive; the CFst aggressor
        # state is 1.
        val = masks.get("value", 0)
        rising = masks.get("rising", 0)
        deceptive = masks.get("deceptive", 0)
        aggr_one = masks.get("aggressor", 0)

        def enforce() -> None:
            if is_saf:
                state[fault_slot] = val
            if is_cfst:
                cond = ~(state[aggr_slot] ^ aggr_one) & full
                state[vict_slot] = (state[vict_slot] & ~cond) | (val & cond)

        enforce()  # the loaded content already expresses the defect
        snap = tuple(state)

        ascending = sorted({addr for addr, _ in slots})
        descending = ascending[::-1]
        by_addr = {
            addr: tuple(i for i, (a, _) in enumerate(slots) if a == addr)
            for addr in ascending
        }
        plans = [self._bit_plan(pos) for _, pos in slots]

        det = 0
        last_raw = [0] * len(slots)
        last_mask = [0] * len(slots)
        for ei, element in enumerate(self.program.elements):
            ordered = descending if element.descending else ascending
            n_steps = len(element.steps)
            for addr in ordered:
                here = by_addr[addr]
                for si in range(n_steps):
                    is_read, relative, _, _ = element.steps[si]
                    if is_read:
                        for i in here:
                            mvec = -plans[i][ei][si][2] & full
                            if is_rdf and i == fault_slot:
                                value = state[i]
                                state[i] = value ^ full
                                raw = value ^ (full & ~deceptive)
                            else:
                                raw = state[i]
                            expected = (snap[i] ^ mvec) if relative else mvec
                            det |= raw ^ expected
                            last_raw[i] = raw
                            last_mask[i] = mvec
                    else:
                        old = list(state)
                        for i in here:
                            mvec = -plans[i][ei][si][2] & full
                            if relative and derive:
                                value = last_raw[i] ^ last_mask[i] ^ mvec
                            elif relative:
                                value = snap[i] ^ mvec
                            else:
                                value = mvec
                            if is_saf and i == fault_slot:
                                value = val
                            elif is_tf and i == fault_slot:
                                blocked = (
                                    (rising & ~old[i] & value)
                                    | (~rising & old[i] & ~value)
                                ) & full
                                value = (value & ~blocked) | (
                                    old[i] & blocked
                                )
                            state[i] = value
                        if (is_cfid or is_cfin) and aggr_slot in here:
                            a_old = old[aggr_slot]
                            a_new = state[aggr_slot]
                            trig = (a_old ^ a_new) & ~(a_new ^ rising) & full
                            if is_cfid:
                                state[vict_slot] = (
                                    state[vict_slot] & ~trig
                                ) | (val & trig)
                            else:
                                state[vict_slot] ^= trig
                        if is_cfst or is_saf:
                            enforce()
        return det

    def af_table(self, fault: AddressDecoderFault, position: int) -> AssignmentTable:
        """Assignment table of one AF at one bit position (cached by
        routing shape and position signature)."""
        float_bit = (fault.float_value >> position) & 1
        order = None if fault.other_addr is None else fault.addr < fault.other_addr
        key = (
            "AF",
            fault.kind_code,
            fault.wired_or,
            float_bit,
            order,
            self._sig_id(position),
        )
        table = self._tables.get(key)
        if table is not None:
            return table
        slots = ((fault.addr, position),)
        if fault.other_addr is not None:
            slots += ((fault.other_addr, position),)
        table = {}
        for assignment in itertools.product((0, 1), repeat=len(slots)):
            table[assignment] = self._replay(fault, slots, assignment)
        table = AssignmentTable(table)
        self._tables[key] = table
        return table

    # -- the per-bit replay --------------------------------------------
    def _replay(
        self,
        fault: Fault,
        slots: tuple[tuple[int, int], ...],
        init_bits: tuple[int, ...],
    ) -> bool:
        """Exact replay of the program over the fault's support slots.

        Mirrors :class:`repro.engine.batch._SubsetSim` (itself a mirror
        of :class:`~repro.memory.injection.FaultyMemory`) at bit
        granularity: every semantic rule of the classic fault models is
        per-cell, and march data is bitwise, so the slots evolve
        exactly as the corresponding bits of a full concrete run — for
        every word width at once.
        """
        derive = self.derive
        n_slots = len(slots)
        state = list(init_bits)

        saf = fault if isinstance(fault, StuckAtFault) else None
        tf = fault if isinstance(fault, TransitionFault) else None
        rdf = fault if isinstance(fault, ReadDisturbFault) else None
        cfst = fault if isinstance(fault, StateCouplingFault) else None
        cfid = fault if isinstance(fault, IdempotentCouplingFault) else None
        cfin = fault if isinstance(fault, InversionCouplingFault) else None
        af = fault if isinstance(fault, AddressDecoderFault) else None

        slot_index = {slot: i for i, slot in enumerate(slots)}
        fault_slot = aggr_slot = vict_slot = None
        if saf is not None or tf is not None or rdf is not None:
            cell = fault.cells[0]
            fault_slot = slot_index[(cell.addr, cell.bit)]
        trigger = cfid if cfid is not None else cfin
        if cfst is not None or trigger is not None:
            aggr_slot = slot_index[(fault.aggressor.addr, fault.aggressor.bit)]
            vict_slot = slot_index[(fault.victim.addr, fault.victim.bit)]
        af_slot = af_partner = None
        if af is not None:
            af_slot = slot_index[(af.addr, slots[0][1])]
            if af.other_addr is not None:
                af_partner = slot_index[(af.other_addr, slots[0][1])]
            af_float = (af.float_value >> slots[0][1]) & 1

        def enforce() -> None:
            if saf is not None:
                state[fault_slot] = saf.value
            if cfst is not None:
                if state[aggr_slot] == cfst.aggressor_value:
                    state[vict_slot] = cfst.forced_value

        enforce()  # the loaded content already expresses the defect
        snap = tuple(state)

        ascending = sorted({addr for addr, _ in slots})
        descending = ascending[::-1]
        by_addr = {
            addr: tuple(i for i, (a, _) in enumerate(slots) if a == addr)
            for addr in ascending
        }
        plans = [self._bit_plan(pos) for _, pos in slots]

        detected = False
        last_raw = [0] * n_slots
        last_mask = [0] * n_slots
        for ei, element in enumerate(self.program.elements):
            ordered = descending if element.descending else ascending
            n_steps = len(element.steps)
            for addr in ordered:
                here = by_addr[addr]
                for si in range(n_steps):
                    is_read, relative, _, _ = element.steps[si]
                    if is_read:
                        for i in here:
                            mbit = plans[i][ei][si][2]
                            if af is not None and addr == af.addr:
                                if af.kind_code == "none":
                                    raw = af_float
                                elif af.kind_code == "other":
                                    raw = state[af_partner]
                                elif af.wired_or:
                                    raw = state[af_slot] | state[af_partner]
                                else:
                                    raw = state[af_slot] & state[af_partner]
                            elif rdf is not None and i == fault_slot:
                                value = state[i]
                                state[i] = value ^ 1
                                raw = value if rdf.deceptive else value ^ 1
                            else:
                                raw = state[i]
                            expected = (snap[i] ^ mbit) if relative else mbit
                            if raw != expected:
                                detected = True
                            last_raw[i] = raw
                            last_mask[i] = mbit
                    else:
                        old = list(state)
                        for i in here:
                            mbit = plans[i][ei][si][2]
                            if relative and derive:
                                value = last_raw[i] ^ last_mask[i] ^ mbit
                            elif relative:
                                value = snap[i] ^ mbit
                            else:
                                value = mbit
                            if af is not None:
                                if addr == af.addr:
                                    if af.kind_code == "other":
                                        state[af_partner] = value
                                    elif af.kind_code == "multi":
                                        state[af_slot] = value
                                        state[af_partner] = value
                                    # "none": write lost
                                else:
                                    state[i] = value
                                continue
                            if saf is not None and i == fault_slot:
                                value = saf.value
                            elif tf is not None and i == fault_slot:
                                blocked = (
                                    tf.rising and old[i] == 0 and value == 1
                                ) or (
                                    not tf.rising and old[i] == 1 and value == 0
                                )
                                if blocked:
                                    value = old[i]
                            state[i] = value
                        if trigger is not None and aggr_slot in here:
                            a_old = old[aggr_slot]
                            a_new = state[aggr_slot]
                            if a_old != a_new and (a_new == 1) == trigger.rising:
                                if cfid is not None:
                                    state[vict_slot] = cfid.forced_value
                                else:
                                    state[vict_slot] ^= 1
                        if cfst is not None or saf is not None:
                            enforce()
        return detected

    # -- fault-free baseline (from the symbolic trace) -----------------
    def fault_free_table(self, position: int) -> tuple[bool, bool]:
        """``(mismatch if c_bit=0, mismatch if c_bit=1)`` of a
        fault-free word at *position* — all-False for well-formed
        tests; derived from the symbolic mask trace, cached by position
        signature."""
        cached = self._fault_free_by_position.get(position)
        if cached is not None:
            return cached
        signature = self._sig_id(position)
        table = self._fault_free.get(signature)
        if table is None:
            hit0 = hit1 = False
            for step in self.trace.read_steps:
                if not hit0 and step.read_mismatch_bit(position, 0):
                    hit0 = True
                if not hit1 and step.read_mismatch_bit(position, 1):
                    hit1 = True
                if hit0 and hit1:
                    break
            table = (hit0, hit1)
            self._fault_free[signature] = table
        self._fault_free_by_position[position] = table
        return table

    def _clean_up_to(self, width: int) -> bool:
        """True when no position below *width* can ever mismatch fault
        free (every well-formed test) — the baseline is then empty for
        *any* content, without touching the words at all."""
        cached = self._clean.get(width)
        if cached is None:
            cached = all(
                self.fault_free_table(j) == (False, False)
                for j in range(width)
            )
            self._clean[width] = cached
        return cached

    def baseline_map(self, width: int, words: Sequence[int]) -> dict[int, int]:
        """Per-address bitmask of positions where the fault-free run
        mismatches for this concrete content (empty for well-formed
        tests; cached for the most recent ``(width, words)``)."""
        if self._clean_up_to(width):
            return {}
        key = (width, tuple(words))
        if self._baseline_key == key:
            return self._baseline_value
        tables = [self.fault_free_table(j) for j in range(width)]
        result: dict[int, int] = {}
        if any(t[0] or t[1] for t in tables):
            for addr, word in enumerate(words):
                positions = 0
                for j, table in enumerate(tables):
                    if table[(word >> j) & 1]:
                        positions |= 1 << j
                if positions:
                    result[addr] = positions
        self._baseline_key = key
        self._baseline_value = result
        return result


register_engine(SymbolicEngine())
