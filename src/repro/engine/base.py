"""Engine abstraction: run artifacts, the backend interface, registry.

A *fault-simulation engine* executes compiled
:class:`~repro.engine.program.MarchProgram` IR against a memory model.
Every engine must reproduce the operational
semantics of the original interpreter bit-for-bit (see
``src/repro/engine/README.md`` for the exactness contract); engines are
free to take shortcuts only where the shortcut is provably equivalent.

Two run granularities exist:

* :meth:`Engine.run` — one march execution on one memory, producing a
  full :class:`RunResult` (read records, MISR sinks, early stop);
* :meth:`Engine.detect_batch` — a whole single-fault campaign slice:
  given the shared initial content and a list of faults, return the
  per-fault detection verdicts of the alias-free compare oracle.  The
  base implementation loops :meth:`Engine.run`; vectorized backends
  override it.  :meth:`Engine.detect_signature_batch` and
  :meth:`Engine.detect_aliasing_batch` are the same granularity under
  the two-phase MISR oracle — the aliasing variant reports ``(stream
  detected, signature detected)`` *pair verdicts* so campaigns can
  count aliasing events (stream-detected but signature-missed)
  directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.march import MarchTest
    from ..memory.faults import Fault
    from ..memory.model import Memory
    from .program import MarchProgram
    from .verdicts import PackedPairVerdicts, PackedVerdicts


class ExecutionError(RuntimeError):
    """Raised when a test is not executable on the given memory."""


@dataclass(frozen=True)
class ReadRecord:
    """One read observation during a march run."""

    op_index: int
    element_index: int
    addr: int
    raw: int
    expected: int
    mask_value: int

    @property
    def mismatch(self) -> bool:
        return self.raw != self.expected


@dataclass
class RunResult:
    """Outcome of executing a march test."""

    ops_executed: int = 0
    n_reads: int = 0
    n_mismatches: int = 0
    records: list[ReadRecord] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def detected(self) -> bool:
        """True when at least one read disagreed with the fault-free value."""
        return self.n_mismatches > 0


ReadSink = Callable[[ReadRecord], None]


class Engine:
    """A fault-simulation backend over compiled march programs."""

    name: str = "base"

    def run(
        self,
        test: "MarchTest | MarchProgram",
        memory: "Memory",
        *,
        snapshot: Sequence[int] | None = None,
        collect: bool = False,
        stop_on_mismatch: bool = False,
        read_sink: ReadSink | None = None,
        derive_writes: bool = True,
    ) -> RunResult:
        """Execute *test* on *memory* (semantics of the classic
        ``run_march``; see :func:`repro.bist.executor.run_march`)."""
        raise NotImplementedError

    def build_compare_context(
        self,
        test: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        *,
        derive_writes: bool = True,
    ) -> object:
        """Reusable compare-oracle campaign state for this engine, or
        ``None`` when the engine has nothing to amortize beyond the
        (already cached) compiled program.  What comes back is opaque:
        hand it to :meth:`detect_batch` via ``context=`` unchanged.
        The base/reference per-fault loop precomputes nothing."""
        return None

    def build_session_context(
        self,
        test: "MarchTest | MarchProgram",
        prediction: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
    ) -> object:
        """Reusable two-phase-session state (shared by the signature
        *and* aliasing oracles — both read the same session), or
        ``None`` when the engine has nothing to amortize."""
        return None

    def detect_batch(
        self,
        test: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: "Sequence[Fault]",
        *,
        derive_writes: bool = True,
        context: object = None,
    ) -> list[bool]:
        """Compare-oracle detection verdict for every fault in *faults*.

        Each fault is simulated alone on a fresh memory loaded with
        *words* (the campaign's shared initial content); the verdict is
        ``RunResult.detected`` of a ``stop_on_mismatch`` run.
        ``context`` accepts a prebuilt :meth:`build_compare_context`
        payload; the per-fault base loop has none and ignores it.
        """
        from ..memory.injection import FaultyMemory

        program = self._program(test, width)
        out = []
        for fault in faults:
            memory = FaultyMemory(n_words, width, [fault])
            memory.load(words)
            out.append(
                self.run(
                    program,
                    memory,
                    stop_on_mismatch=True,
                    derive_writes=derive_writes,
                ).detected
            )
        return out

    def detect_signature_batch(
        self,
        test: "MarchTest | MarchProgram",
        prediction: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: "Sequence[Fault]",
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        context: object = None,
    ) -> list[bool]:
        """Signature-oracle detection verdict for every fault in *faults*.

        Each fault is simulated alone on a fresh memory loaded with
        *words*; a two-phase transparent BIST session (prediction phase
        feeding one MISR with pattern-corrected reads, test phase
        feeding a second MISR with raw reads — the semantics of
        :class:`repro.bist.controller.TransparentBist`) runs through
        this engine, and the verdict is whether the two signatures
        differ.  Aliasing is possible, exactly as in hardware.  The base
        implementation loops :meth:`run`; vectorized backends override.
        ``context`` accepts a prebuilt :meth:`build_session_context`
        payload.
        """
        # context= travels only when a payload exists, so a subclass
        # overriding detect_aliasing_batch with the pre-context
        # signature keeps working (its build hooks return None).
        kwargs = {} if context is None else {"context": context}
        return [
            signature
            for _stream, signature in self.detect_aliasing_batch(
                test,
                prediction,
                n_words,
                width,
                words,
                faults,
                misr_width=misr_width,
                misr_seed=misr_seed,
                **kwargs,
            )
        ]

    def detect_aliasing_batch(
        self,
        test: "MarchTest | MarchProgram",
        prediction: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: "Sequence[Fault]",
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        context: object = None,
    ) -> list[tuple[bool, bool]]:
        """``(stream_detected, signature_detected)`` pair verdict for
        every fault in *faults*.

        The session is the same two-phase transparent BIST run as
        :meth:`detect_signature_batch`; on top of the signature verdict,
        each pair records whether the ideal alias-free compare oracle
        saw the fault in the test phase's read stream (the semantics of
        :attr:`repro.bist.controller.BistOutcome.stream_detected`).  A
        fault with ``(True, False)`` *aliased*: the read stream was
        wrong but the signatures collided.  The base implementation
        loops :meth:`run`; vectorized backends override.
        """
        from ..bist.misr import Misr
        from ..memory.injection import FaultyMemory

        test_program = self._program(test, width)
        prediction_program = self._program(prediction, width)
        out = []
        for fault in faults:
            memory = FaultyMemory(n_words, width, [fault])
            memory.load(words)
            snapshot = memory.snapshot()
            predict_misr = Misr(misr_width, misr_seed)
            self.run(
                prediction_program,
                memory,
                snapshot=snapshot,
                read_sink=lambda rec: predict_misr.absorb(
                    rec.raw ^ rec.mask_value
                ),
            )
            test_misr = Misr(misr_width, misr_seed)
            test_run = self.run(
                test_program,
                memory,
                snapshot=snapshot,
                read_sink=lambda rec: test_misr.absorb(rec.raw),
            )
            out.append(
                (
                    test_run.n_mismatches > 0,
                    predict_misr.signature != test_misr.signature,
                )
            )
        return out

    def detect_class_batch(
        self,
        test: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: "Sequence[Fault]",
        *,
        derive_writes: bool = True,
        context: object = None,
    ) -> "PackedVerdicts":
        """Compare-oracle verdicts for a whole fault class, packed.

        Same oracle as :meth:`detect_batch`, but the result is a
        :class:`~repro.engine.verdicts.PackedVerdicts` bitset —
        campaigns count, transport, and sample undetected faults from
        the packed form without building per-fault bool lists.  The
        base implementation packs the per-fault loop's output; the
        batch backend overrides it with one-pass class kernels over
        streaming :class:`~repro.memory.injection.FaultClass`
        descriptors.
        """
        from .verdicts import PackedVerdicts

        kwargs = {} if context is None else {"context": context}
        return PackedVerdicts.from_bools(
            self.detect_batch(
                test,
                n_words,
                width,
                words,
                faults,
                derive_writes=derive_writes,
                **kwargs,
            )
        )

    def detect_class_signature_batch(
        self,
        test: "MarchTest | MarchProgram",
        prediction: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: "Sequence[Fault]",
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        context: object = None,
    ) -> "PackedVerdicts":
        """Signature-oracle verdicts for a whole fault class, packed
        (:meth:`detect_signature_batch` lifted to bitsets)."""
        from .verdicts import PackedVerdicts

        kwargs = {} if context is None else {"context": context}
        return PackedVerdicts.from_bools(
            self.detect_signature_batch(
                test,
                prediction,
                n_words,
                width,
                words,
                faults,
                misr_width=misr_width,
                misr_seed=misr_seed,
                **kwargs,
            )
        )

    def detect_class_aliasing_batch(
        self,
        test: "MarchTest | MarchProgram",
        prediction: "MarchTest | MarchProgram",
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: "Sequence[Fault]",
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        context: object = None,
    ) -> "PackedPairVerdicts":
        """Aliasing-oracle pair verdicts for a whole fault class, packed
        (:meth:`detect_aliasing_batch` lifted to paired bitsets)."""
        from .verdicts import PackedPairVerdicts

        kwargs = {} if context is None else {"context": context}
        return PackedPairVerdicts.from_pairs(
            self.detect_aliasing_batch(
                test,
                prediction,
                n_words,
                width,
                words,
                faults,
                misr_width=misr_width,
                misr_seed=misr_seed,
                **kwargs,
            )
        )

    def detect_symbolic(
        self,
        test: "MarchTest",
        n_words: int,
        faults: "Sequence[Fault]",
        *,
        derive_writes: bool = True,
    ) -> list:
        """Width-generic verdict objects for every fault in *faults*.

        Only backends with a symbolic state model can answer this (the
        registered ``symbolic`` engine); concrete backends raise
        :class:`ExecutionError`.
        """
        raise ExecutionError(
            f"engine {self.name!r} evaluates faults at a concrete width "
            "and has no width-generic symbolic verdicts; use "
            "get_engine('symbolic')"
        )

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _program(test: "MarchTest | MarchProgram", width: int) -> "MarchProgram":
        from .program import MarchProgram, compile_march

        if isinstance(test, MarchProgram):
            if test.width != width:
                raise ExecutionError(
                    f"program {test.name} compiled for width {test.width}, "
                    f"memory width is {width}"
                )
            return test
        return compile_march(test, width)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Engine] = {}

DEFAULT_ENGINE = "reference"


def register_engine(engine: Engine) -> Engine:
    """Register *engine* under its ``name`` (last registration wins)."""
    _REGISTRY[engine.name] = engine
    return engine


def engine_names() -> tuple[str, ...]:
    """Names of all registered engines."""
    return tuple(sorted(_REGISTRY))


def get_engine(spec: "str | Engine | None" = None) -> Engine:
    """Resolve an engine: an instance passes through, a name looks up
    the registry, ``None`` yields the default (reference) engine."""
    if isinstance(spec, Engine):
        return spec
    name = DEFAULT_ENGINE if spec is None else spec
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(engine_names()) or "<none registered>"
        raise ValueError(
            f"unknown engine {name!r}; registered engines: {known}"
        ) from None
