"""Reference engine: exact interpretive execution of a march program.

This backend reproduces the operational transparent semantics of the
original op-by-op interpreter (`repro.bist.executor.run_march` before
the engine refactor) — derived writes from the most recent read of the
same element-visit, compare/collect/sink/stop-on-mismatch modes — while
hoisting mask resolution and op dispatch out of the inner loop via the
compiled IR.  It is the semantic baseline every other backend is
equivalence-tested against: its campaign entry points (`detect_batch`,
`detect_signature_batch`, `detect_aliasing_batch`) are the inherited
per-fault loops over :meth:`ReferenceEngine.run`, so a reference
campaign is literally the classic one-fault-at-a-time sweep —
including the per-fault two-phase TransparentBist session behind the
signature and pair-verdict aliasing oracles.
"""

from __future__ import annotations

from typing import Sequence

from ..memory.model import Memory
from .base import (
    Engine,
    ExecutionError,
    ReadRecord,
    ReadSink,
    RunResult,
    register_engine,
)
from .program import MarchProgram


def execute_program(
    program: MarchProgram,
    memory: Memory,
    *,
    snapshot: Sequence[int] | None = None,
    collect: bool = False,
    stop_on_mismatch: bool = False,
    read_sink: ReadSink | None = None,
    derive_writes: bool = True,
) -> RunResult:
    """Interpret *program* on *memory*.

    ``snapshot`` is the reference initial content used to compute
    expected read values for content-relative operations; by default the
    memory content at call time.  With ``collect=True`` every read is
    recorded; ``stop_on_mismatch`` aborts at the first failing read;
    ``read_sink`` receives every read record (e.g. to feed a MISR);
    ``derive_writes`` selects the operational (True) or oracle (False)
    datapath for content-relative writes.
    """
    initial = list(snapshot) if snapshot is not None else memory.snapshot()
    if len(initial) != memory.n_words:
        raise ExecutionError("snapshot length does not match memory size")

    read = memory.read
    write = memory.write
    result = RunResult()
    records = result.records
    slow = collect or read_sink is not None
    op_index = 0
    for element in program.elements:
        element_index = element.index
        steps = element.steps
        for addr in element.addresses(memory.n_words):
            last_raw: int | None = None
            last_mask = 0
            initial_word = initial[addr]
            for is_read, relative, mask, derivable in steps:
                if is_read:
                    raw = read(addr)
                    expected = (initial_word ^ mask) if relative else mask
                    result.n_reads += 1
                    mismatch = raw != expected
                    if mismatch:
                        result.n_mismatches += 1
                    if slow:
                        record = ReadRecord(
                            op_index, element_index, addr, raw, expected, mask
                        )
                        if collect:
                            records.append(record)
                        if read_sink is not None:
                            read_sink(record)
                    last_raw, last_mask = raw, mask
                    result.ops_executed += 1
                    if mismatch and stop_on_mismatch:
                        result.stopped_early = True
                        return result
                else:
                    if relative and derive_writes:
                        if last_raw is None:
                            raise ExecutionError(
                                f"{program.name}: transparent write "
                                f"{_underivable_label(element)} at element "
                                f"{element_index} has no preceding read in its "
                                "element-visit; the BIST datapath cannot derive "
                                "its data"
                            )
                        value = last_raw ^ last_mask ^ mask
                    elif relative:
                        value = initial_word ^ mask
                    else:
                        value = mask
                    write(addr, value)
                    result.ops_executed += 1
                op_index += 1
    return result


def _underivable_label(element) -> str:
    """Label of the element's first derived write with no feeding read
    (the op the interpreter trips on) — error reporting only."""
    for op in element.ops:
        if op.is_write and op.relative and op.derive_from is None:
            return op.label
    return "?"  # pragma: no cover - unreachable when called on error


class ReferenceEngine(Engine):
    """Exact op-by-op interpretation of the compiled program."""

    name = "reference"

    def run(
        self,
        test,
        memory: Memory,
        *,
        snapshot: Sequence[int] | None = None,
        collect: bool = False,
        stop_on_mismatch: bool = False,
        read_sink: ReadSink | None = None,
        derive_writes: bool = True,
    ) -> RunResult:
        program = self._program(test, memory.width)
        return execute_program(
            program,
            memory,
            snapshot=snapshot,
            collect=collect,
            stop_on_mismatch=stop_on_mismatch,
            read_sink=read_sink,
            derive_writes=derive_writes,
        )


register_engine(ReferenceEngine())
