"""Batch engine: word-parallel single-fault campaign evaluation.

The campaign cost model of the interpretive path is
``n_faults x op_count x n_words`` memory operations, each a Python-level
``Memory.read``/``Memory.write`` with fault-list scans.  This backend
exploits two structural facts of the compare-oracle campaign
(one fault per run, shared initial content):

* **Fault confinement** — every classic fault involves one or two word
  addresses; reads anywhere else return fault-free data.  The fault-free
  mismatch behaviour is precomputed *once* per (program, content) as a
  packed bit-plane (the reused fault-free read stream), so each fault
  only needs its own cells evaluated.

* **Bit-plane parallelism** — word operations are bitwise, so the state
  of cell ``(addr, bit)`` under a single-cell fault hypothesis *at that
  cell* evolves independently of every other bit.  Packing all
  ``n_words * width`` hypotheses into one big Python integer evaluates
  an entire fault class (all SAFs, all TFs of one direction, all RDFs of
  one flavour) in a single O(op_count) pass of big-int arithmetic.

Per fault class:

``SAF``
    closed form: the stuck cell always reads back its forced value and
    the reference snapshot already contains it, so a relative read
    mismatches iff its mask selects the bit, an absolute read iff its
    mask disagrees with the stuck value.  Two width-bit OR-accumulators
    answer the whole class.
``TF`` / ``RDF`` / ``DRDF``
    one packed-plane pass per variant (rising/falling, plain/deceptive).
``CFst`` / ``CFid`` / ``CFin``
    exact two-word (one-word when intra-word) subset simulation —
    O(op_count) per fault instead of O(op_count x n_words).
``AF``
    same subset machinery over the decoder fault's support (the
    addressed word plus its aliased partner): accesses to the faulty
    address are lost, redirected or wired together exactly as in
    :class:`~repro.memory.injection.FaultyMemory`, and no other word is
    ever influenced, so the two-word replay is exact.
anything unrecognised
    full-fidelity fallback through the reference interpreter.

The *signature* oracle (two-phase transparent BIST, MISR compare) gets
the same treatment through :meth:`BatchEngine.detect_signature_batch`:
the fault-free read streams of both phases are recorded once per
``(programs, content)``, the MISR's GF(2) linearity turns every read
bit into a precomputed signature weight, and each fault only needs a
subset replay over its own words to know which read bits it corrupts —
O(op_count) per fault instead of two full O(op_count x n_words) runs.
:meth:`BatchEngine.detect_aliasing_batch` rides the *same* replay: the
test-phase leg of it also compares every support read against its
session-snapshot expected value, yielding the alias-free stream
verdict next to the signature verdict at no extra pass.

Single executions (:meth:`BatchEngine.run`) use the reference
interpreter unchanged: the batch acceleration is campaign-level.
"""

from __future__ import annotations

from typing import Sequence

from ..memory.faults import (
    AddressDecoderFault,
    CouplingFault,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from ..memory.injection import (
    FaultClass,
    IntraWordCFClass,
    ReadDisturbClass,
    StuckAtClass,
    TransitionClass,
)
from .base import Engine, ExecutionError, ReadSink, RunResult, register_engine
from .program import MarchProgram, pack_words, replicate_mask
from .reference import execute_program
from .verdicts import PackedVerdicts


class BatchEngine(Engine):
    """Vectorized campaign backend over the compiled IR."""

    name = "batch"

    def run(
        self,
        test,
        memory,
        *,
        snapshot: Sequence[int] | None = None,
        collect: bool = False,
        stop_on_mismatch: bool = False,
        read_sink: ReadSink | None = None,
        derive_writes: bool = True,
    ) -> RunResult:
        program = self._program(test, memory.width)
        return execute_program(
            program,
            memory,
            snapshot=snapshot,
            collect=collect,
            stop_on_mismatch=stop_on_mismatch,
            read_sink=read_sink,
            derive_writes=derive_writes,
        )

    # -- campaign contexts (the amortizable per-campaign state) --------
    def build_compare_context(
        self,
        test,
        n_words: int,
        width: int,
        words: Sequence[int],
        *,
        derive_writes: bool = True,
    ) -> "_CampaignContext | None":
        """The compare oracle's whole reusable state — compiled
        program, masked words, packed planes and fault-free baseline
        (built lazily inside).  ``None`` for underivable programs,
        whose campaigns must take the per-fault interpreter path."""
        program = self._program(test, width)
        if derive_writes and not program.derivable:
            return None
        return _CampaignContext(program, n_words, words, derive_writes)

    def build_session_context(
        self,
        test,
        prediction,
        n_words: int,
        width: int,
        words: Sequence[int],
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
    ) -> "_SignatureContext | None":
        """The two-phase session's reusable state — fault-free read
        streams of both phases, MISR weight/fold tables, fault-free
        signature gap and mismatch set.  One context serves both the
        signature and the pair-verdict aliasing oracle.  ``None`` for
        underivable programs (per-fault interpreter path)."""
        test_program = self._program(test, width)
        prediction_program = self._program(prediction, width)
        if not (test_program.derivable and prediction_program.derivable):
            return None
        return _SignatureContext(
            prediction_program, test_program, n_words, words,
            misr_width, misr_seed,
        )

    @staticmethod
    def _check_context(context, kind, program, n_words, words) -> None:
        """Guard against a context built for a different campaign being
        replayed here — the cache keys prevent it, but a silent
        mismatch would mean silently wrong verdicts.  *program* is the
        context's primary program (the compare program, or the test
        phase of a session)."""
        if not isinstance(context, kind):
            raise ExecutionError(
                f"prebuilt context has type {type(context).__name__}, "
                f"expected {kind.__name__}"
            )
        own_program = (
            context.program if kind is _CampaignContext else context.test
        )
        masked = [w & program.word_mask for w in words]
        if (
            context.n_words != n_words
            or context.width != program.width
            or own_program != program
            or context.words != masked
        ):
            raise ExecutionError(
                "prebuilt campaign context does not match this campaign's "
                "(program, geometry, words); rebuild it through the "
                "context cache"
            )

    def detect_batch(
        self,
        test,
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: Sequence[Fault],
        *,
        derive_writes: bool = True,
        context: "_CampaignContext | None" = None,
    ) -> list[bool]:
        program = self._program(test, width)
        if derive_writes and not program.derivable:
            # An underivable program may still detect (or raise) fault
            # by fault, depending on whether a mismatch stops the run
            # before the first underivable write executes; only the
            # interpreter reproduces that exactly.
            return super().detect_batch(
                program, n_words, width, words, faults,
                derive_writes=derive_writes,
            )
        if context is None:
            ctx = _CampaignContext(program, n_words, words, derive_writes)
        else:
            self._check_context(
                context, _CampaignContext, program, n_words, words
            )
            if context.derive != derive_writes:
                raise ExecutionError(
                    "prebuilt campaign context was built for the other "
                    "derived-write datapath"
                )
            ctx = context
        return [ctx.detect(fault) for fault in faults]

    def detect_class_batch(
        self,
        test,
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: Sequence[Fault],
        *,
        derive_writes: bool = True,
        context: "_CampaignContext | None" = None,
    ) -> PackedVerdicts:
        """Compare-oracle verdicts of a whole fault class in packed
        one-pass kernels.

        When *faults* is a streaming
        :class:`~repro.memory.injection.FaultClass` descriptor and the
        program is derivable, the verdict bitset comes straight off the
        campaign context's packed planes — no per-fault ``Fault``
        objects, no per-fault dispatch.  Anything else (materialized
        lists, underivable programs) takes the per-fault path and is
        packed on the way out.
        """
        program = self._program(test, width)
        if not isinstance(faults, FaultClass) or (
            derive_writes and not program.derivable
        ):
            return super().detect_class_batch(
                program, n_words, width, words, faults,
                derive_writes=derive_writes, context=context,
            )
        if context is None:
            ctx = _CampaignContext(program, n_words, words, derive_writes)
        else:
            self._check_context(
                context, _CampaignContext, program, n_words, words
            )
            if context.derive != derive_writes:
                raise ExecutionError(
                    "prebuilt campaign context was built for the other "
                    "derived-write datapath"
                )
            ctx = context
        return ctx.detect_class(faults)

    def detect_signature_batch(
        self,
        test,
        prediction,
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: Sequence[Fault],
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        context: "_SignatureContext | None" = None,
    ) -> list[bool]:
        ctx = self._session_context(
            test, prediction, n_words, width, words, misr_width, misr_seed,
            context,
        )
        if ctx is None:
            # The per-fault reference path raises ExecutionError at the
            # first underivable write; only it reproduces that exactly.
            return super().detect_signature_batch(
                self._program(test, width), self._program(prediction, width),
                n_words, width, words, faults,
                misr_width=misr_width, misr_seed=misr_seed,
            )
        return [ctx.detect(fault) for fault in faults]

    def detect_aliasing_batch(
        self,
        test,
        prediction,
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: Sequence[Fault],
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        context: "_SignatureContext | None" = None,
    ) -> list[tuple[bool, bool]]:
        ctx = self._session_context(
            test, prediction, n_words, width, words, misr_width, misr_seed,
            context,
        )
        if ctx is None:
            # The per-fault reference path raises ExecutionError at the
            # first underivable write; only it reproduces that exactly.
            return super().detect_aliasing_batch(
                self._program(test, width), self._program(prediction, width),
                n_words, width, words, faults,
                misr_width=misr_width, misr_seed=misr_seed,
            )
        return [ctx.detect_pair(fault) for fault in faults]

    def _session_context(
        self, test, prediction, n_words, width, words, misr_width, misr_seed,
        context,
    ) -> "_SignatureContext | None":
        """Resolve the session context for one signature/aliasing call:
        the validated prebuilt one, a fresh build, or ``None`` when the
        programs are underivable (per-fault interpreter path)."""
        test_program = self._program(test, width)
        prediction_program = self._program(prediction, width)
        if not (test_program.derivable and prediction_program.derivable):
            return None
        if context is not None:
            self._check_context(
                context, _SignatureContext, test_program, n_words, words
            )
            if (
                context.prediction != prediction_program
                or context.misr_width != misr_width
                or context.misr_seed != misr_seed
            ):
                raise ExecutionError(
                    "prebuilt session context was built for a different "
                    "prediction program or MISR configuration"
                )
            return context
        return _SignatureContext(
            prediction_program, test_program, n_words, words,
            misr_width, misr_seed,
        )


class _CampaignContext:
    """Shared per-(program, content) state of one campaign slice.

    Planes are computed lazily, at most once each, and reused for every
    fault of the matching class.
    """

    def __init__(
        self,
        program: MarchProgram,
        n_words: int,
        words: Sequence[int],
        derive_writes: bool,
    ) -> None:
        if len(words) != n_words:
            raise ExecutionError("initial content length does not match memory size")
        self.program = program
        self.n_words = n_words
        self.width = program.width
        self.words = [w & program.word_mask for w in words]
        self.derive = derive_writes
        self._packed = pack_words(self.words, self.width)
        self._full = (1 << (n_words * self.width)) - 1
        self._rep: list[list[int]] | None = None
        self._baseline: int | None = None
        self._saf: tuple[int, int] | None = None
        self._tf: dict[bool, int] = {}
        self._rdf: dict[bool, int] = {}
        self._lane_cache: dict[int, int] = {}
        self._fold_cache: dict[int, int] = {}

    # -- dispatch ------------------------------------------------------
    def detect(self, fault: Fault) -> bool:
        fault.validate(self.n_words, self.width)
        if isinstance(fault, StuckAtFault):
            plane = self._saf_planes()[fault.value]
            if (plane >> fault.cell.bit) & 1:
                return True
            return self._baseline_outside_cell(fault.cell)
        if isinstance(fault, TransitionFault):
            plane = self._tf_plane(fault.rising)
            if (plane >> self._pos(fault.cell)) & 1:
                return True
            return self._baseline_outside_cell(fault.cell)
        if isinstance(fault, ReadDisturbFault):
            plane = self._rdf_plane(fault.deceptive)
            if (plane >> self._pos(fault.cell)) & 1:
                return True
            return self._baseline_outside_cell(fault.cell)
        if isinstance(fault, CouplingFault):
            if self._coupling(fault):
                return True
            return self._baseline_outside_addrs(
                {fault.aggressor.addr, fault.victim.addr}
            )
        if isinstance(fault, AddressDecoderFault):
            support = _SubsetSim.support(fault)
            if self._subset_detect(fault, support):
                return True
            return self._baseline_outside_addrs(support)
        return self._fallback(fault)

    def _pos(self, cell) -> int:
        return cell.addr * self.width + cell.bit

    # -- class-level dispatch ------------------------------------------
    def detect_class(self, fault_class: FaultClass) -> PackedVerdicts:
        """Packed verdict bitset of one whole fault class.

        The strided class kernels apply when the class geometry matches
        this campaign and the fault-free baseline is clean (always, for
        well-formed tests); everything else — inter-word CF classes, AF
        classes, mismatched geometry, ill-formed tests — streams through
        the exact per-fault dispatch one fault at a time, so no path
        ever materializes the class as a list.
        """
        n, w = self.n_words, self.width
        exact = fault_class.n_words == n and fault_class.width == w
        if self._baseline_plane() == 0:
            if (
                isinstance(fault_class, StuckAtClass)
                and fault_class.n_words == n
                and fault_class.width <= w
            ):
                # The SAF verdict is address- and content-independent
                # (see _saf_planes), so a narrower class just replicates
                # the truncated accumulators at its own lane width.
                cw = fault_class.width
                saf0, saf1 = self._saf_planes()
                cmask = (1 << cw) - 1
                return PackedVerdicts(
                    len(fault_class),
                    (
                        replicate_mask(saf0 & cmask, n, cw),
                        replicate_mask(saf1 & cmask, n, cw),
                    ),
                    stride=2,
                )
            if exact and isinstance(fault_class, TransitionClass):
                return PackedVerdicts(
                    len(fault_class),
                    (self._tf_plane(True), self._tf_plane(False)),
                    stride=2,
                )
            if exact and isinstance(fault_class, ReadDisturbClass):
                return PackedVerdicts(
                    len(fault_class),
                    (self._rdf_plane(fault_class.deceptive),),
                )
            if exact and isinstance(fault_class, IntraWordCFClass) and w > 1:
                return self._intra_cf_class(fault_class)
        return PackedVerdicts.from_bools(
            self.detect(fault) for fault in fault_class
        )

    def _intra_cf_class(self, fault_class: IntraWordCFClass) -> PackedVerdicts:
        """All intra-word coupling faults of one kind: one packed pass
        per (bit pair, parameter variant) — ``width*(width-1) *
        variants`` passes answer the whole class for every address at
        once, with the per-lane any-bit fold placing each verdict at
        its word lane's bit 0 (``slot_stride = width``)."""
        vectors = []
        for pair_index in range(fault_class.n_pairs):
            a_bit, v_bit = fault_class.pair_bits(pair_index)
            for variant in range(fault_class.variants):
                det = self._packed_coupling_run(
                    fault_class.cf_kind, a_bit, v_bit, variant
                )
                vectors.append(self._lane_any(det))
        return PackedVerdicts(
            len(fault_class),
            vectors,
            stride=fault_class.n_pairs * fault_class.variants,
            slot_stride=self.width,
        )

    def _bit_lane(self, bit: int) -> int:
        """``1 << bit`` replicated across every word lane (cached)."""
        lane = self._lane_cache.get(bit)
        if lane is None:
            lane = replicate_mask(1 << bit, self.n_words, self.width)
            self._lane_cache[bit] = lane
        return lane

    def _lane_any(self, det: int) -> int:
        """OR-fold each word lane of a packed mismatch plane down to
        the lane's bit 0.  Every shifted term is masked to the low
        ``width - shift`` bits of its lane so no bit crosses into the
        neighbouring word (which matters for non-power-of-two widths).
        """
        w = self.width
        shift = 1
        while shift < w:
            fold = self._fold_cache.get(shift)
            if fold is None:
                fold = replicate_mask(
                    (1 << (w - shift)) - 1, self.n_words, w
                )
                self._fold_cache[shift] = fold
            det |= (det >> shift) & fold
            shift <<= 1
        return det & self._bit_lane(0)

    def _packed_coupling_run(
        self, cf_kind: str, a_bit: int, v_bit: int, variant: int
    ) -> int:
        """One word-parallel pass hypothesising the same intra-word
        coupling fault (aggressor bit, victim bit, parameter variant)
        in *every* word lane at once.

        Intra-word coupling confines the fault to its own word, so the
        lanes evolve independently and one pass simulates ``n_words``
        faults; the semantics mirror :meth:`_coupling` bit for bit —
        continuous CFst forcing after the initial load and every store,
        CFid/CFin triggered by aggressor transitions of stores.  The
        returned plane keeps accumulating after a lane's first
        mismatch; the verdict is the lane OR, and detection is
        monotone, so the extra bits are harmless.
        """
        aggr_lane = self._bit_lane(a_bit)
        shift = v_bit - a_bit
        rising = x = y = False
        if cf_kind == "CFst":
            y, x = divmod(variant, 2)
        elif cf_kind == "CFid":
            half, x = divmod(variant, 2)
            rising = half == 0
        else:
            rising = variant == 0

        def enforce(state: int) -> int:
            cond = (state & aggr_lane) if y else (~state & aggr_lane)
            cond = (cond << shift) if shift >= 0 else (cond >> -shift)
            return (state | cond) if x else (state & ~cond)

        state = self._packed
        if cf_kind == "CFst":
            state = enforce(state)  # loaded content expresses the defect
        snap = state
        det = 0
        derive = self.derive
        for element, rep_masks in zip(self.program.elements, self._replicated()):
            last_raw = 0
            last_mask = 0
            for (is_read, relative, _mask, _ok), mrep in zip(
                element.steps, rep_masks
            ):
                if is_read:
                    det |= state ^ ((snap ^ mrep) if relative else mrep)
                    last_raw, last_mask = state, mrep
                else:
                    if relative and derive:
                        value = last_raw ^ last_mask ^ mrep
                    elif relative:
                        value = snap ^ mrep
                    else:
                        value = mrep
                    if cf_kind == "CFst":
                        state = enforce(value)
                    else:
                        trig = (
                            (state ^ value)
                            & (value if rising else ~value)
                            & aggr_lane
                        )
                        trig = (
                            (trig << shift) if shift >= 0 else (trig >> -shift)
                        )
                        if cf_kind == "CFid":
                            state = (value | trig) if x else (value & ~trig)
                        else:
                            state = value ^ trig
        return det

    # -- fault-free baseline -------------------------------------------
    def _baseline_plane(self) -> int:
        """Packed mismatch plane of the fault-free run: bit
        ``addr*width + bit`` is set iff the fault-free execution already
        disagrees with the snapshot-derived expected value there.  Zero
        for every well-formed march test; non-zero planes keep
        ill-formed tests bit-identical with the interpreter."""
        if self._baseline is None:
            self._baseline = self._packed_run(None, False)
        return self._baseline

    def _baseline_outside_cell(self, cell) -> bool:
        return bool(self._baseline_plane() & ~(1 << self._pos(cell)))

    def _baseline_outside_addrs(self, addrs) -> bool:
        outside = self._baseline_plane()
        for addr in addrs:
            outside &= ~(self.program.word_mask << (addr * self.width))
        return bool(outside)

    # -- packed bit-plane passes ---------------------------------------
    def _replicated(self) -> list[list[int]]:
        if self._rep is None:
            n, w = self.n_words, self.width
            self._rep = [
                [replicate_mask(mask, n, w) for _, _, mask, _ in element.steps]
                for element in self.program.elements
            ]
        return self._rep

    def _packed_run(self, kind: str | None, variant: bool) -> int:
        """One word-parallel pass over the program.

        ``kind`` selects the per-column fault hypothesis: ``None`` is
        the fault-free baseline, ``"TF"`` a transition fault at every
        column (``variant`` = rising), ``"RDF"`` a read-disturb fault at
        every column (``variant`` = deceptive).  Returns the accumulated
        mismatch plane for the hypothesised cell itself.
        """
        snap = self._packed
        full = self._full
        state = snap
        det = 0
        derive = self.derive
        is_tf = kind == "TF"
        is_rdf = kind == "RDF"
        for element, rep_masks in zip(self.program.elements, self._replicated()):
            last_raw = 0
            last_mask = 0
            for (is_read, relative, _mask, _ok), mrep in zip(
                element.steps, rep_masks
            ):
                if is_read:
                    if is_rdf:
                        raw = state if variant else state ^ full
                        state ^= full
                    else:
                        raw = state
                    det |= raw ^ ((snap ^ mrep) if relative else mrep)
                    last_raw, last_mask = raw, mrep
                else:
                    if relative and derive:
                        value = last_raw ^ last_mask ^ mrep
                    elif relative:
                        value = snap ^ mrep
                    else:
                        value = mrep
                    if is_tf:
                        state = (state & value) if variant else (state | value)
                    else:
                        state = value
        return det

    def _tf_plane(self, rising: bool) -> int:
        if rising not in self._tf:
            self._tf[rising] = self._packed_run("TF", rising)
        return self._tf[rising]

    def _rdf_plane(self, deceptive: bool) -> int:
        if deceptive not in self._rdf:
            self._rdf[deceptive] = self._packed_run("RDF", deceptive)
        return self._rdf[deceptive]

    def _saf_planes(self) -> tuple[int, int]:
        """``(detects_saf0, detects_saf1)`` width-bit accumulators.

        The stuck cell reads back its forced value and the reference
        snapshot (taken after static enforcement) already holds it, so
        relative reads mismatch exactly where their mask selects the
        bit, absolute reads exactly where their mask disagrees with the
        stuck value — independent of address and initial content.
        """
        if self._saf is None:
            det0 = det1 = 0
            wm = self.program.word_mask
            for element in self.program.elements:
                for is_read, relative, mask, _ok in element.steps:
                    if not is_read:
                        continue
                    if relative:
                        det0 |= mask
                        det1 |= mask
                    else:
                        det0 |= mask
                        det1 |= ~mask & wm
            self._saf = (det0, det1)
        return self._saf

    # -- coupling-fault subset simulation ------------------------------
    def _coupling(self, fault: CouplingFault) -> bool:
        """Exact simulation restricted to the aggressor/victim words,
        mirroring ``FaultyMemory`` semantics: continuous CFst forcing
        re-established after every store, CFid/CFin triggered by
        aggressor transitions of stores to the aggressor's word."""
        aggr, vict = fault.aggressor, fault.victim
        addrs = sorted({aggr.addr, vict.addr})
        w = {a: self.words[a] for a in addrs}
        v_clear = ~(1 << vict.bit)
        v_set = 1 << vict.bit
        is_cfst = isinstance(fault, StateCouplingFault)
        is_cfid = isinstance(fault, IdempotentCouplingFault)
        is_cfin = isinstance(fault, InversionCouplingFault)

        def enforce() -> None:
            if is_cfst and ((w[aggr.addr] >> aggr.bit) & 1) == fault.aggressor_value:
                w[vict.addr] = (w[vict.addr] & v_clear) | (
                    fault.forced_value << vict.bit
                )

        enforce()  # the loaded content already expresses the defect
        snap = dict(w)
        derive = self.derive
        descending_addrs = addrs[::-1]

        for element in self.program.elements:
            ordered = descending_addrs if element.descending else addrs
            for addr in ordered:
                last_raw = 0
                last_mask = 0
                snap_word = snap[addr]
                for is_read, relative, mask, _ok in element.steps:
                    if is_read:
                        raw = w[addr]
                        if raw != ((snap_word ^ mask) if relative else mask):
                            return True
                        last_raw, last_mask = raw, mask
                    else:
                        if relative and derive:
                            value = last_raw ^ last_mask ^ mask
                        elif relative:
                            value = snap_word ^ mask
                        else:
                            value = mask
                        old = w[addr]
                        w[addr] = value
                        if (is_cfid or is_cfin) and addr == aggr.addr:
                            a_old = (old >> aggr.bit) & 1
                            a_new = (value >> aggr.bit) & 1
                            if a_old != a_new and (a_new == 1) == fault.rising:
                                if is_cfid:
                                    w[vict.addr] = (w[vict.addr] & v_clear) | (
                                        fault.forced_value << vict.bit
                                    )
                                else:
                                    w[vict.addr] ^= v_set
                        enforce()
        return False

    # -- generic subset simulation (AF fast path) ----------------------
    def _subset_detect(self, fault: Fault, addrs: tuple[int, ...]) -> bool:
        """Exact replay of the program restricted to the fault's support
        words through :class:`_SubsetSim`, with the compare oracle's
        stop-at-first-mismatch verdict."""
        sim = _SubsetSim(fault, {a: self.words[a] for a in addrs}, self.width)
        snap = dict(sim.words)  # post static enforcement == run snapshot
        derive = self.derive
        ascending = sorted(addrs)
        descending = ascending[::-1]
        fetch = sim.fetch
        store = sim.store
        for element in self.program.elements:
            ordered = descending if element.descending else ascending
            steps = element.steps
            for addr in ordered:
                last_raw = 0
                last_mask = 0
                snap_word = snap[addr]
                for is_read, relative, mask, _ok in steps:
                    if is_read:
                        raw = fetch(addr)
                        if raw != ((snap_word ^ mask) if relative else mask):
                            return True
                        last_raw, last_mask = raw, mask
                    else:
                        if relative and derive:
                            value = last_raw ^ last_mask ^ mask
                        elif relative:
                            value = snap_word ^ mask
                        else:
                            value = mask
                        store(addr, value)
        return False

    # -- fallback ------------------------------------------------------
    def _fallback(self, fault: Fault) -> bool:
        """Full-fidelity interpretation for fault kinds without a fast
        path (address-decoder faults, user-defined models)."""
        from ..memory.injection import FaultyMemory

        memory = FaultyMemory(self.n_words, self.width, [fault])
        memory.load(self.words)
        return execute_program(
            self.program,
            memory,
            stop_on_mismatch=True,
            derive_writes=self.derive,
        ).detected


# ---------------------------------------------------------------------------
# Subset simulation: FaultyMemory semantics restricted to a fault's support
# ---------------------------------------------------------------------------


class _SubsetSim:
    """Mirror of :class:`~repro.memory.injection.FaultyMemory` for one
    classic fault, restricted to the word addresses the fault can
    influence (its *support*).

    Every classic fault model is word-confined: stuck-at, transition and
    read-disturb faults live in one word, coupling faults in at most
    two, and an address-decoder fault only ever loses, redirects or
    wires accesses between its own address and its aliased partner.
    Accesses to any other word behave exactly like the fault-free
    baseline, so replaying the program on just the support words is an
    exact simulation at O(op_count) instead of O(op_count x n_words).
    """

    __slots__ = (
        "words", "mask",
        "saf", "tf", "rdf", "cfst", "cfid", "cfin", "af",
    )

    def __init__(self, fault: Fault, words: dict[int, int], width: int) -> None:
        self.words = words
        self.mask = (1 << width) - 1
        self.saf = fault if isinstance(fault, StuckAtFault) else None
        self.tf = fault if isinstance(fault, TransitionFault) else None
        self.rdf = fault if isinstance(fault, ReadDisturbFault) else None
        self.cfst = fault if isinstance(fault, StateCouplingFault) else None
        self.cfid = fault if isinstance(fault, IdempotentCouplingFault) else None
        self.cfin = fault if isinstance(fault, InversionCouplingFault) else None
        self.af = fault if isinstance(fault, AddressDecoderFault) else None
        if not (self.saf or self.tf or self.rdf or self.cfst or self.cfid
                or self.cfin or self.af):
            raise ExecutionError(
                f"no subset semantics for fault kind {fault.kind!r}"
            )
        self._enforce()  # loaded content already expresses the defect

    @staticmethod
    def support(fault: Fault) -> "tuple[int, ...] | None":
        """Sorted word addresses the fault can influence, or ``None``
        when the fault kind has no subset semantics (user-defined
        models must take the full-fidelity fallback)."""
        if isinstance(fault, AddressDecoderFault):
            addrs = {fault.addr}
            if fault.other_addr is not None:
                addrs.add(fault.other_addr)
            return tuple(sorted(addrs))
        if isinstance(
            fault,
            (StuckAtFault, TransitionFault, ReadDisturbFault, CouplingFault),
        ):
            return tuple(sorted({cell.addr for cell in fault.cells}))
        return None

    # -- storage semantics (mirrors FaultyMemory._fetch/_store) --------
    def fetch(self, addr: int) -> int:
        af = self.af
        if af is not None:
            if af.addr != addr:
                return self.words[addr]
            code = af.kind_code
            if code == "none":
                return af.float_value & self.mask
            if code == "other":
                return self.words[af.other_addr]
            a = self.words[addr]
            b = self.words[af.other_addr]
            return (a | b) if af.wired_or else (a & b)
        rdf = self.rdf
        if rdf is not None and rdf.cell.addr == addr:
            value = self.words[addr]
            flip = 1 << rdf.cell.bit
            self.words[addr] = value ^ flip
            return value if rdf.deceptive else value ^ flip
        return self.words[addr]

    def store(self, addr: int, value: int) -> None:
        af = self.af
        if af is not None:
            if af.addr != addr:
                self.words[addr] = value
            elif af.kind_code == "other":
                self.words[af.other_addr] = value
            elif af.kind_code == "multi":
                self.words[addr] = value
                self.words[af.other_addr] = value
            # "none": write lost, no cell selected
            return
        old = self.words[addr]
        saf = self.saf
        tf = self.tf
        if saf is not None and saf.cell.addr == addr:
            bit = saf.cell.bit
            value = (value & ~(1 << bit)) | (saf.value << bit)
        elif tf is not None and tf.cell.addr == addr:
            bit = tf.cell.bit
            old_b = (old >> bit) & 1
            new_b = (value >> bit) & 1
            blocked = (
                (tf.rising and old_b == 0 and new_b == 1)
                or (not tf.rising and old_b == 1 and new_b == 0)
            )
            if blocked:
                value = (value & ~(1 << bit)) | (old_b << bit)
        self.words[addr] = value
        coupling = self.cfid or self.cfin
        if coupling is not None and coupling.aggressor.addr == addr:
            aggr_bit = coupling.aggressor.bit
            a_old = (old >> aggr_bit) & 1
            a_new = (value >> aggr_bit) & 1
            if a_old != a_new and (a_new == 1) == coupling.rising:
                victim = coupling.victim
                vw = self.words[victim.addr]
                if self.cfid is not None:
                    self.words[victim.addr] = (
                        vw & ~(1 << victim.bit)
                    ) | (self.cfid.forced_value << victim.bit)
                else:
                    self.words[victim.addr] = vw ^ (1 << victim.bit)
        if self.cfst is not None or saf is not None:
            self._enforce()

    def _enforce(self) -> None:
        saf = self.saf
        if saf is not None:
            cell = saf.cell
            self.words[cell.addr] = (
                self.words[cell.addr] & ~(1 << cell.bit)
            ) | (saf.value << cell.bit)
        cfst = self.cfst
        if cfst is not None:
            aggr = cfst.aggressor
            if ((self.words[aggr.addr] >> aggr.bit) & 1) == cfst.aggressor_value:
                victim = cfst.victim
                self.words[victim.addr] = (
                    self.words[victim.addr] & ~(1 << victim.bit)
                ) | (cfst.forced_value << victim.bit)


# ---------------------------------------------------------------------------
# Batched signature oracle
# ---------------------------------------------------------------------------


class _SignatureContext:
    """Shared per-(programs, content) state of one signature-mode slice.

    The two-phase session's verdict is ``predicted_signature !=
    test_signature``.  Both signatures are GF(2)-linear in the absorbed
    read streams, and a confined fault only perturbs reads of its
    support words, so:

    ``sig_faulty == sig_fault_free XOR delta`` where ``delta`` XORs the
    precomputed linear weight of every read *bit* the fault corrupts
    (:func:`repro.bist.misr.absorb_weight_table`).  The fault-free
    streams and weights are computed once; each fault then costs one
    O(op_count) subset replay of both phases.

    The same replay answers the *aliasing* oracle (:meth:`detect_pair`)
    for free: the test-phase stream verdict is whether any replayed
    read at a support word disagrees with its session-snapshot expected
    value, OR-ed with the recorded fault-free mismatch behaviour of the
    words the fault cannot influence (non-empty only for ill-formed
    tests).  No second replay is needed for the pair.
    """

    def __init__(
        self,
        prediction: MarchProgram,
        test: MarchProgram,
        n_words: int,
        words: Sequence[int],
        misr_width: int,
        misr_seed: int,
    ) -> None:
        from ..bist.misr import (
            absorb_weight_table,
            fold_table,
            signature_of_stream,
        )
        from ..memory.model import Memory

        if len(words) != n_words:
            raise ExecutionError("initial content length does not match memory size")
        self.prediction = prediction
        self.test = test
        self.n_words = n_words
        self.width = test.width
        self.words = [w & test.word_mask for w in words]
        self.misr_width = misr_width
        self.misr_seed = misr_seed

        # Fault-free read streams of both phases, run back to back on
        # one memory (a read-only prediction leaves it untouched, but a
        # user-supplied prediction with writes carries state over — the
        # controller does the same).
        memory = Memory(n_words, self.width)
        memory.load(self.words)
        prediction_raw: list[int] = []
        prediction_absorbed: list[int] = []

        def _sink_prediction(rec) -> None:
            prediction_raw.append(rec.raw)
            prediction_absorbed.append(rec.raw ^ rec.mask_value)

        execute_program(
            prediction, memory, snapshot=self.words, read_sink=_sink_prediction
        )
        test_raw: list[int] = []
        test_mismatch_addrs: set[int] = set()

        def _sink_test(rec) -> None:
            test_raw.append(rec.raw)
            if rec.mismatch:
                test_mismatch_addrs.add(rec.addr)

        execute_program(
            test, memory, snapshot=self.words, read_sink=_sink_test
        )
        self.prediction_raw = prediction_raw
        self.test_raw = test_raw
        # Addresses whose fault-free test-phase reads already mismatch
        # their expected values (empty for well-formed tests).  A fault
        # cannot influence reads outside its support, so these are its
        # stream verdict's contribution from everywhere else.
        self.test_mismatch_addrs = frozenset(test_mismatch_addrs)
        prediction_sig, n_pred = signature_of_stream(
            prediction_absorbed, width=misr_width, seed=misr_seed
        )
        test_sig, n_test = signature_of_stream(
            test_raw, width=misr_width, seed=misr_seed
        )
        # A fault is detected iff its two signature deltas differ by
        # something other than the fault-free signature gap (zero for a
        # well-formed transparent pair).
        self.fault_free_gap = prediction_sig ^ test_sig
        self.prediction_weights = absorb_weight_table(n_pred, misr_width)
        self.test_weights = absorb_weight_table(n_test, misr_width)
        self.fold_positions = fold_table(self.width, misr_width)

    # -- per-fault dispatch --------------------------------------------
    def detect(self, fault: Fault) -> bool:
        fault.validate(self.n_words, self.width)
        support = _SubsetSim.support(fault)
        if support is None:
            return self._fallback(fault)
        sim = _SubsetSim(
            fault, {a: self.words[a] for a in support}, self.width
        )
        delta, _ = self._phase_delta(
            self.prediction, sim, support, self.prediction_raw,
            self.prediction_weights,
        )
        test_delta, _ = self._phase_delta(
            self.test, sim, support, self.test_raw, self.test_weights
        )
        return (delta ^ test_delta) != self.fault_free_gap

    def detect_pair(self, fault: Fault) -> tuple[bool, bool]:
        """``(stream_detected, signature_detected)`` of one session,
        bit-identical to :class:`~repro.bist.controller.TransparentBist`
        on the same fault, from the same single subset replay."""
        fault.validate(self.n_words, self.width)
        support = _SubsetSim.support(fault)
        if support is None:
            return self._fallback_pair(fault)
        sim = _SubsetSim(
            fault, {a: self.words[a] for a in support}, self.width
        )
        # The controller snapshots the faulty memory *before* the
        # prediction phase; the subset constructor has just applied the
        # static fault enforcement, so this is that snapshot restricted
        # to the support words.
        session_snap = dict(sim.words)
        delta, _ = self._phase_delta(
            self.prediction, sim, support, self.prediction_raw,
            self.prediction_weights,
        )
        test_delta, mismatched = self._phase_delta(
            self.test, sim, support, self.test_raw, self.test_weights,
            expected_snap=session_snap,
        )
        if not mismatched and self.test_mismatch_addrs:
            mismatched = any(
                addr not in support for addr in self.test_mismatch_addrs
            )
        return mismatched, (delta ^ test_delta) != self.fault_free_gap

    def _phase_delta(
        self,
        program: MarchProgram,
        sim: _SubsetSim,
        addrs: tuple[int, ...],
        fault_free_raw: Sequence[int],
        weights: Sequence[Sequence[int]],
        expected_snap: "dict[int, int] | None" = None,
    ) -> tuple[int, bool]:
        """Subset replay of one phase, XOR-accumulating the signature
        weights of every corrupted read bit.

        The fault-free stream index of the *j*-th read of address *a*
        in element *e* is ``base_e + position(a) * reads_e + j`` —
        exactly the order the interpreter emits reads in.

        With *expected_snap* (the session snapshot of the support
        words) the replay additionally reports whether any read
        disagreed with its snapshot-derived expected value — the
        compare-oracle stream verdict over the support.
        """
        delta = 0
        mismatched = False
        n_words = self.n_words
        fold_positions = self.fold_positions
        ascending = sorted(addrs)
        descending = ascending[::-1]
        fetch = sim.fetch
        store = sim.store
        base = 0
        for element in program.elements:
            steps = element.steps
            n_reads = element.n_reads
            if element.descending:
                ordered = descending
            else:
                ordered = ascending
            for addr in ordered:
                position = (n_words - 1 - addr) if element.descending else addr
                k = base + position * n_reads
                last_raw = 0
                last_mask = 0
                snap_word = (
                    expected_snap[addr] if expected_snap is not None else 0
                )
                for is_read, relative, mask, _ok in steps:
                    if is_read:
                        raw = fetch(addr)
                        if expected_snap is not None and not mismatched:
                            expected = (snap_word ^ mask) if relative else mask
                            mismatched = raw != expected
                        err = raw ^ fault_free_raw[k]
                        if err:
                            weight = weights[k]
                            bit = 0
                            while err:
                                if err & 1:
                                    delta ^= weight[fold_positions[bit]]
                                err >>= 1
                                bit += 1
                        last_raw, last_mask = raw, mask
                        k += 1
                    else:
                        value = (
                            (last_raw ^ last_mask ^ mask) if relative else mask
                        )
                        store(addr, value)
            base += n_reads * n_words
        return delta, mismatched

    # -- fallback ------------------------------------------------------
    def _fallback(self, fault: Fault) -> bool:
        """Full-fidelity two-phase session for fault kinds without
        subset semantics (user-defined models)."""
        return self._fallback_pair(fault)[1]

    def _fallback_pair(self, fault: Fault) -> tuple[bool, bool]:
        """Full-fidelity two-phase session reporting the
        ``(stream, signature)`` pair verdict."""
        from ..bist.misr import Misr
        from ..memory.injection import FaultyMemory

        memory = FaultyMemory(self.n_words, self.width, [fault])
        memory.load(self.words)
        snapshot = memory.snapshot()
        predict_misr = Misr(self.misr_width, self.misr_seed)
        execute_program(
            self.prediction,
            memory,
            snapshot=snapshot,
            read_sink=lambda rec: predict_misr.absorb(rec.raw ^ rec.mask_value),
        )
        test_misr = Misr(self.misr_width, self.misr_seed)
        test_run = execute_program(
            self.test,
            memory,
            snapshot=snapshot,
            read_sink=lambda rec: test_misr.absorb(rec.raw),
        )
        return (
            test_run.n_mismatches > 0,
            predict_misr.signature != test_misr.signature,
        )


register_engine(BatchEngine())
