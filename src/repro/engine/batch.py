"""Batch engine: word-parallel single-fault campaign evaluation.

The campaign cost model of the interpretive path is
``n_faults x op_count x n_words`` memory operations, each a Python-level
``Memory.read``/``Memory.write`` with fault-list scans.  This backend
exploits two structural facts of the compare-oracle campaign
(one fault per run, shared initial content):

* **Fault confinement** — every classic fault involves one or two word
  addresses; reads anywhere else return fault-free data.  The fault-free
  mismatch behaviour is precomputed *once* per (program, content) as a
  packed bit-plane (the reused fault-free read stream), so each fault
  only needs its own cells evaluated.

* **Bit-plane parallelism** — word operations are bitwise, so the state
  of cell ``(addr, bit)`` under a single-cell fault hypothesis *at that
  cell* evolves independently of every other bit.  Packing all
  ``n_words * width`` hypotheses into one big Python integer evaluates
  an entire fault class (all SAFs, all TFs of one direction, all RDFs of
  one flavour) in a single O(op_count) pass of big-int arithmetic.

Per fault class:

``SAF``
    closed form: the stuck cell always reads back its forced value and
    the reference snapshot already contains it, so a relative read
    mismatches iff its mask selects the bit, an absolute read iff its
    mask disagrees with the stuck value.  Two width-bit OR-accumulators
    answer the whole class.
``TF`` / ``RDF`` / ``DRDF``
    one packed-plane pass per variant (rising/falling, plain/deceptive).
``CFst`` / ``CFid`` / ``CFin``
    exact two-word (one-word when intra-word) subset simulation —
    O(op_count) per fault instead of O(op_count x n_words).
``AF`` and anything unrecognised
    full-fidelity fallback through the reference interpreter.

Single executions (:meth:`BatchEngine.run`) use the reference
interpreter unchanged: the batch acceleration is campaign-level.
"""

from __future__ import annotations

from typing import Sequence

from ..memory.faults import (
    CouplingFault,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from .base import Engine, ExecutionError, ReadSink, RunResult, register_engine
from .program import MarchProgram, pack_words, replicate_mask
from .reference import execute_program


class BatchEngine(Engine):
    """Vectorized campaign backend over the compiled IR."""

    name = "batch"

    def run(
        self,
        test,
        memory,
        *,
        snapshot: Sequence[int] | None = None,
        collect: bool = False,
        stop_on_mismatch: bool = False,
        read_sink: ReadSink | None = None,
        derive_writes: bool = True,
    ) -> RunResult:
        program = self._program(test, memory.width)
        return execute_program(
            program,
            memory,
            snapshot=snapshot,
            collect=collect,
            stop_on_mismatch=stop_on_mismatch,
            read_sink=read_sink,
            derive_writes=derive_writes,
        )

    def detect_batch(
        self,
        test,
        n_words: int,
        width: int,
        words: Sequence[int],
        faults: Sequence[Fault],
        *,
        derive_writes: bool = True,
    ) -> list[bool]:
        program = self._program(test, width)
        if derive_writes and not program.derivable:
            # An underivable program may still detect (or raise) fault
            # by fault, depending on whether a mismatch stops the run
            # before the first underivable write executes; only the
            # interpreter reproduces that exactly.
            return super().detect_batch(
                program, n_words, width, words, faults,
                derive_writes=derive_writes,
            )
        ctx = _CampaignContext(program, n_words, words, derive_writes)
        return [ctx.detect(fault) for fault in faults]


class _CampaignContext:
    """Shared per-(program, content) state of one campaign slice.

    Planes are computed lazily, at most once each, and reused for every
    fault of the matching class.
    """

    def __init__(
        self,
        program: MarchProgram,
        n_words: int,
        words: Sequence[int],
        derive_writes: bool,
    ) -> None:
        if len(words) != n_words:
            raise ExecutionError("initial content length does not match memory size")
        self.program = program
        self.n_words = n_words
        self.width = program.width
        self.words = [w & program.word_mask for w in words]
        self.derive = derive_writes
        self._packed = pack_words(self.words, self.width)
        self._full = (1 << (n_words * self.width)) - 1
        self._rep: list[list[int]] | None = None
        self._baseline: int | None = None
        self._saf: tuple[int, int] | None = None
        self._tf: dict[bool, int] = {}
        self._rdf: dict[bool, int] = {}

    # -- dispatch ------------------------------------------------------
    def detect(self, fault: Fault) -> bool:
        fault.validate(self.n_words, self.width)
        if isinstance(fault, StuckAtFault):
            plane = self._saf_planes()[fault.value]
            if (plane >> fault.cell.bit) & 1:
                return True
            return self._baseline_outside_cell(fault.cell)
        if isinstance(fault, TransitionFault):
            plane = self._tf_plane(fault.rising)
            if (plane >> self._pos(fault.cell)) & 1:
                return True
            return self._baseline_outside_cell(fault.cell)
        if isinstance(fault, ReadDisturbFault):
            plane = self._rdf_plane(fault.deceptive)
            if (plane >> self._pos(fault.cell)) & 1:
                return True
            return self._baseline_outside_cell(fault.cell)
        if isinstance(fault, CouplingFault):
            if self._coupling(fault):
                return True
            return self._baseline_outside_addrs(
                {fault.aggressor.addr, fault.victim.addr}
            )
        return self._fallback(fault)

    def _pos(self, cell) -> int:
        return cell.addr * self.width + cell.bit

    # -- fault-free baseline -------------------------------------------
    def _baseline_plane(self) -> int:
        """Packed mismatch plane of the fault-free run: bit
        ``addr*width + bit`` is set iff the fault-free execution already
        disagrees with the snapshot-derived expected value there.  Zero
        for every well-formed march test; non-zero planes keep
        ill-formed tests bit-identical with the interpreter."""
        if self._baseline is None:
            self._baseline = self._packed_run(None, False)
        return self._baseline

    def _baseline_outside_cell(self, cell) -> bool:
        return bool(self._baseline_plane() & ~(1 << self._pos(cell)))

    def _baseline_outside_addrs(self, addrs) -> bool:
        outside = self._baseline_plane()
        for addr in addrs:
            outside &= ~(self.program.word_mask << (addr * self.width))
        return bool(outside)

    # -- packed bit-plane passes ---------------------------------------
    def _replicated(self) -> list[list[int]]:
        if self._rep is None:
            n, w = self.n_words, self.width
            self._rep = [
                [replicate_mask(mask, n, w) for _, _, mask, _ in element.steps]
                for element in self.program.elements
            ]
        return self._rep

    def _packed_run(self, kind: str | None, variant: bool) -> int:
        """One word-parallel pass over the program.

        ``kind`` selects the per-column fault hypothesis: ``None`` is
        the fault-free baseline, ``"TF"`` a transition fault at every
        column (``variant`` = rising), ``"RDF"`` a read-disturb fault at
        every column (``variant`` = deceptive).  Returns the accumulated
        mismatch plane for the hypothesised cell itself.
        """
        snap = self._packed
        full = self._full
        state = snap
        det = 0
        derive = self.derive
        is_tf = kind == "TF"
        is_rdf = kind == "RDF"
        for element, rep_masks in zip(self.program.elements, self._replicated()):
            last_raw = 0
            last_mask = 0
            for (is_read, relative, _mask, _ok), mrep in zip(
                element.steps, rep_masks
            ):
                if is_read:
                    if is_rdf:
                        raw = state if variant else state ^ full
                        state ^= full
                    else:
                        raw = state
                    det |= raw ^ ((snap ^ mrep) if relative else mrep)
                    last_raw, last_mask = raw, mrep
                else:
                    if relative and derive:
                        value = last_raw ^ last_mask ^ mrep
                    elif relative:
                        value = snap ^ mrep
                    else:
                        value = mrep
                    if is_tf:
                        state = (state & value) if variant else (state | value)
                    else:
                        state = value
        return det

    def _tf_plane(self, rising: bool) -> int:
        if rising not in self._tf:
            self._tf[rising] = self._packed_run("TF", rising)
        return self._tf[rising]

    def _rdf_plane(self, deceptive: bool) -> int:
        if deceptive not in self._rdf:
            self._rdf[deceptive] = self._packed_run("RDF", deceptive)
        return self._rdf[deceptive]

    def _saf_planes(self) -> tuple[int, int]:
        """``(detects_saf0, detects_saf1)`` width-bit accumulators.

        The stuck cell reads back its forced value and the reference
        snapshot (taken after static enforcement) already holds it, so
        relative reads mismatch exactly where their mask selects the
        bit, absolute reads exactly where their mask disagrees with the
        stuck value — independent of address and initial content.
        """
        if self._saf is None:
            det0 = det1 = 0
            wm = self.program.word_mask
            for element in self.program.elements:
                for is_read, relative, mask, _ok in element.steps:
                    if not is_read:
                        continue
                    if relative:
                        det0 |= mask
                        det1 |= mask
                    else:
                        det0 |= mask
                        det1 |= ~mask & wm
            self._saf = (det0, det1)
        return self._saf

    # -- coupling-fault subset simulation ------------------------------
    def _coupling(self, fault: CouplingFault) -> bool:
        """Exact simulation restricted to the aggressor/victim words,
        mirroring ``FaultyMemory`` semantics: continuous CFst forcing
        re-established after every store, CFid/CFin triggered by
        aggressor transitions of stores to the aggressor's word."""
        aggr, vict = fault.aggressor, fault.victim
        addrs = sorted({aggr.addr, vict.addr})
        w = {a: self.words[a] for a in addrs}
        v_clear = ~(1 << vict.bit)
        v_set = 1 << vict.bit
        is_cfst = isinstance(fault, StateCouplingFault)
        is_cfid = isinstance(fault, IdempotentCouplingFault)
        is_cfin = isinstance(fault, InversionCouplingFault)

        def enforce() -> None:
            if is_cfst and ((w[aggr.addr] >> aggr.bit) & 1) == fault.aggressor_value:
                w[vict.addr] = (w[vict.addr] & v_clear) | (
                    fault.forced_value << vict.bit
                )

        enforce()  # the loaded content already expresses the defect
        snap = dict(w)
        derive = self.derive
        descending_addrs = addrs[::-1]

        for element in self.program.elements:
            ordered = descending_addrs if element.descending else addrs
            for addr in ordered:
                last_raw = 0
                last_mask = 0
                snap_word = snap[addr]
                for is_read, relative, mask, _ok in element.steps:
                    if is_read:
                        raw = w[addr]
                        if raw != ((snap_word ^ mask) if relative else mask):
                            return True
                        last_raw, last_mask = raw, mask
                    else:
                        if relative and derive:
                            value = last_raw ^ last_mask ^ mask
                        elif relative:
                            value = snap_word ^ mask
                        else:
                            value = mask
                        old = w[addr]
                        w[addr] = value
                        if (is_cfid or is_cfin) and addr == aggr.addr:
                            a_old = (old >> aggr.bit) & 1
                            a_new = (value >> aggr.bit) & 1
                            if a_old != a_new and (a_new == 1) == fault.rising:
                                if is_cfid:
                                    w[vict.addr] = (w[vict.addr] & v_clear) | (
                                        fault.forced_value << vict.bit
                                    )
                                else:
                                    w[vict.addr] ^= v_set
                        enforce()
        return False

    # -- fallback ------------------------------------------------------
    def _fallback(self, fault: Fault) -> bool:
        """Full-fidelity interpretation for fault kinds without a fast
        path (address-decoder faults, user-defined models)."""
        from ..memory.injection import FaultyMemory

        memory = FaultyMemory(self.n_words, self.width, [fault])
        memory.load(self.words)
        return execute_program(
            self.program,
            memory,
            stop_on_mismatch=True,
            derive_writes=self.derive,
        ).detected


register_engine(BatchEngine())
