"""Pluggable fault-simulation engines over a compiled march-program IR.

Layers (see ``README.md`` in this directory):

* :mod:`repro.engine.program` — the compiler: lower a symbolic
  :class:`~repro.core.march.MarchTest` into an immutable
  :class:`MarchProgram` (resolved masks, address-order descriptors,
  derived-write data-flow links), cached per ``(test, width)``;
* :mod:`repro.engine.base` — run artifacts (:class:`RunResult`,
  :class:`ReadRecord`), the :class:`Engine` interface and the backend
  registry;
* :mod:`repro.engine.reference` — exact op-by-op interpretation, the
  semantic baseline;
* :mod:`repro.engine.batch` — word-parallel campaign evaluation
  (bit-plane passes for single-cell faults, subset simulation for
  coupling and address-decoder faults, linear-MISR signature and
  pair-verdict aliasing batching, reference fallback otherwise);
* :mod:`repro.engine.parallel` — supervised, lease-based campaign
  sharding (:class:`CampaignRunner`): chunks dispatched as retryable
  leases onto respawnable workers, merged back into the deterministic
  sequential order (with :mod:`repro.engine.retry` bounding recovery
  and :mod:`repro.engine.chaos` injecting deterministic worker faults
  for tests and benches).

Select a backend by name wherever an ``engine=`` parameter is accepted
(``run_campaign``, ``TransparentBist``, the ``coverage`` CLI command)::

    from repro.engine import get_engine

    engine = get_engine("batch")
    verdicts = engine.detect_batch(test, n_words, width, words, faults)
"""

from .base import (
    DEFAULT_ENGINE,
    Engine,
    ExecutionError,
    ReadRecord,
    ReadSink,
    RunResult,
    engine_names,
    get_engine,
    register_engine,
)
from .batch import BatchEngine
from .chaos import ChaosEvent, FaultPlan
from .context import CampaignContext, ContextCache, ContextStats
from .parallel import (
    AliasingWork,
    CampaignRunner,
    ChunkExhaustedError,
    ChunkLease,
    CompareWork,
    SignatureWork,
    shard_bounds,
    work_key,
)
from .retry import FaultToleranceStats, RetryPolicy
from .program import (
    MarchProgram,
    ProgramElement,
    ProgramOp,
    SymbolicElement,
    SymbolicProgram,
    compile_march,
    compile_symbolic,
)
from .reference import ReferenceEngine, execute_program
from .verdicts import PackedPairVerdicts, PackedVerdicts

# Imported last: the symbolic backend reuses the analysis layer's mask
# tracking, and repro.analysis.coverage imports back from this package
# — by this point every name it needs is already bound.
from .symbolic import (
    CellSymbolicVerdict,
    SymbolicEngine,
    SymbolicVerdict,
    WordSymbolicVerdict,
)

__all__ = [
    "AliasingWork",
    "BatchEngine",
    "CampaignContext",
    "CampaignRunner",
    "CellSymbolicVerdict",
    "ChaosEvent",
    "ChunkExhaustedError",
    "ChunkLease",
    "CompareWork",
    "ContextCache",
    "ContextStats",
    "DEFAULT_ENGINE",
    "Engine",
    "ExecutionError",
    "FaultPlan",
    "FaultToleranceStats",
    "MarchProgram",
    "PackedPairVerdicts",
    "PackedVerdicts",
    "ProgramElement",
    "ProgramOp",
    "ReadRecord",
    "ReadSink",
    "ReferenceEngine",
    "RetryPolicy",
    "RunResult",
    "SignatureWork",
    "SymbolicElement",
    "SymbolicEngine",
    "SymbolicProgram",
    "SymbolicVerdict",
    "WordSymbolicVerdict",
    "compile_march",
    "compile_symbolic",
    "engine_names",
    "execute_program",
    "get_engine",
    "register_engine",
    "shard_bounds",
    "work_key",
]
