"""Retry policy and fault-tolerance accounting for supervised campaigns.

The lease-based runner (:mod:`repro.engine.parallel`) re-dispatches
chunks whose worker crashed, hung past its deadline, or returned a
corrupt result.  :class:`RetryPolicy` bounds that recovery — how many
attempts a chunk gets, how long each attempt may run, and how the
re-dispatch backoff grows — and :class:`FaultToleranceStats` accounts
for everything the supervisor had to do about it, end to end:
``CampaignReport.fault_tolerance``, the CLI ``faults:`` line, and the
chaos benchmark leg all read these counters.

Retries are safe by the determinism contract: a chunk is a pure
function of ``(work, class, start, stop)``, so a re-dispatched attempt
produces the same verdicts bit for bit, and a recovered campaign is
bit-identical to an undisturbed one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on chunk re-dispatch after a worker fault.

    ``max_attempts`` is the total number of dispatches a chunk gets
    (1 = no retries: the first failure degrades or raises).
    ``base_delay`` seeds the exponential backoff — attempt *k* waits
    ``base_delay * 2**(k-1)`` seconds before re-dispatch.  ``timeout``
    is the per-attempt wall-clock deadline; ``None`` means attempts may
    run forever (a hung worker is then only reclaimed by ``close()``),
    and ``0.0`` expires every attempt immediately — the degenerate
    policy that forces full in-process degradation.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError("timeout must be >= 0 (or None)")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before re-dispatching after failed
        *attempt* (1-based): bounded exponential, capped at 30s so a
        long retry ladder cannot stall a campaign indefinitely."""
        return min(self.base_delay * (2 ** max(0, attempt - 1)), 30.0)

    @property
    def max_retries(self) -> int:
        return self.max_attempts - 1


@dataclass
class FaultToleranceStats:
    """What the supervisor did to keep a campaign alive.

    ``retries`` counts chunk re-dispatches, ``respawns`` replacement
    worker processes, ``degraded_chunks`` chunks that exhausted their
    attempts and ran in-process instead, and ``lost_seconds`` the
    wall-clock burned by failed attempts (dispatch to failure
    detection).  The breakdown counters attribute the failures:
    ``crashes`` (worker death), ``timeouts`` (lease deadline passed),
    ``corrupt_chunks`` (verdict-count mismatch), ``chunk_errors``
    (worker raised), ``pool_failures`` (a worker or pool could not be
    (re)built), ``chaos_injected`` (faults the chaos plan asked for).
    Mergeable across campaigns exactly like
    :class:`~repro.engine.context.ContextStats`.
    """

    retries: int = 0
    respawns: int = 0
    degraded_chunks: int = 0
    lost_seconds: float = 0.0
    crashes: int = 0
    timeouts: int = 0
    corrupt_chunks: int = 0
    chunk_errors: int = 0
    pool_failures: int = 0
    chaos_injected: int = 0

    @property
    def any(self) -> bool:
        """True when the supervisor had to intervene at all."""
        return any(
            value for key, value in self.as_dict().items()
            if key != "lost_seconds"
        ) or self.lost_seconds > 0

    def merge(self, other: "FaultToleranceStats | dict") -> "FaultToleranceStats":
        """Accumulate *other* (a stats object or its ``as_dict``) into
        this one and return self."""
        if isinstance(other, dict):
            other = FaultToleranceStats(**other)
        for key, value in other.as_dict().items():
            setattr(self, key, getattr(self, key) + value)
        return self

    def copy(self) -> "FaultToleranceStats":
        return FaultToleranceStats(**self.as_dict())

    def reset(self) -> None:
        """Zero every counter in place (the object identity survives,
        so a supervisor holding a reference keeps accounting into it)."""
        for key in self.as_dict():
            setattr(self, key, 0.0 if key == "lost_seconds" else 0)

    def as_dict(self) -> dict:
        """Plain-dict form (picklable / JSON benchmark column)."""
        return {
            "retries": self.retries,
            "respawns": self.respawns,
            "degraded_chunks": self.degraded_chunks,
            "lost_seconds": self.lost_seconds,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "corrupt_chunks": self.corrupt_chunks,
            "chunk_errors": self.chunk_errors,
            "pool_failures": self.pool_failures,
            "chaos_injected": self.chaos_injected,
        }

    def render(self) -> str:
        line = (
            f"{self.retries} retries, {self.respawns} respawns, "
            f"{self.degraded_chunks} degraded chunks, "
            f"{self.lost_seconds:.3f}s lost"
        )
        breakdown = [
            f"{value} {label}"
            for label, value in (
                ("crashes", self.crashes),
                ("timeouts", self.timeouts),
                ("corrupt", self.corrupt_chunks),
                ("errors", self.chunk_errors),
                ("pool failures", self.pool_failures),
                ("chaos", self.chaos_injected),
            )
            if value
        ]
        if breakdown:
            line += f" ({', '.join(breakdown)})"
        return line
