"""Campaign-context runtime: keyed, amortized per-campaign engine state.

Every batch oracle pays a *context* cost before the first fault verdict
comes out: compile the program(s), mask the initial words, record the
fault-free read streams, build the MISR weight tables, derive the
fault-free baseline/mismatch sets.  That cost is per ``(test,
geometry, words, mode)`` — not per fault class and not per shard chunk
— yet the sharded runner used to rebuild it from scratch inside every
chunk, which is exactly why ``jobs=N`` lost to single-process batch on
the scaled workloads.

This module makes context construction an explicit, cached, amortized
cost:

* :class:`CampaignContext` — one built context: the cache key, the
  owning engine's name, the engine-specific payload (e.g. the batch
  engine's ``_CampaignContext`` / ``_SignatureContext``), and how long
  it took to build;
* :class:`ContextCache` — a keyed cache of contexts for one engine.
  Keys come from the work units' :meth:`context_key` (test identity,
  geometry, words, mode parameters); the engine is fixed per cache, so
  the effective key is the issue-spec ``(test, geometry, words, mode,
  engine)`` tuple.  Signature- and aliasing-mode work units share one
  ``"session"`` key on purpose: both oracles read the same two-phase
  session state, so a mixed-mode run builds it once;
* :class:`ContextStats` — hit/miss/build counters with build seconds,
  mergeable across worker processes so campaigns can *prove* the
  amortization (``CampaignReport.context_stats``, the CLI ``contexts:``
  line, and the ``context_*`` benchmark columns).

The cache itself is process-local.  :mod:`repro.engine.parallel` keeps
one per engine in every worker process for the worker's lifetime, so a
context is built at most once per distinct key per worker and then
replayed across all chunks, fault classes and modes that share it.

Fault tolerance composes with the amortization: each chunk result
ships its worker cache's counter delta (``ContextStats.as_dict`` over
the pipe, merged in the parent), so the accounting survives retries
and respawns — a respawned worker simply rebuilds its contexts (new
``builds``), a retried chunk re-reports only the delta its attempt
actually caused, and a chunk degraded to in-process execution counts
against the runner's own inline cache.  The supervision counters
travel the same way (:class:`repro.engine.retry.FaultToleranceStats`,
``CampaignReport.fault_tolerance``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import Engine


@runtime_checkable
class ContextWork(Protocol):
    """What a work unit must offer to be context-cacheable."""

    def context_key(self) -> tuple: ...

    def build_context(self, engine: "Engine") -> object: ...


@dataclass
class ContextStats:
    """Counters of one context cache (or a merge of several).

    ``misses`` counts cache lookups that had to construct a context,
    ``builds`` the subset whose engine actually produced a reusable
    payload (an engine with nothing to amortize — e.g. ``reference`` —
    returns ``None`` and builds nothing).  ``build_seconds`` is the
    wall-clock spent constructing, including the ``None`` probes.
    """

    builds: int = 0
    hits: int = 0
    misses: int = 0
    build_seconds: float = 0.0

    def merge(self, other: "ContextStats | dict") -> "ContextStats":
        """Accumulate *other* (a stats object or its ``as_dict``) into
        this one and return self."""
        if isinstance(other, dict):
            other = ContextStats(**other)
        self.builds += other.builds
        self.hits += other.hits
        self.misses += other.misses
        self.build_seconds += other.build_seconds
        return self

    def delta(self, earlier: "ContextStats") -> "ContextStats":
        """The counter increments since *earlier* was captured."""
        return ContextStats(
            self.builds - earlier.builds,
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.build_seconds - earlier.build_seconds,
        )

    def copy(self) -> "ContextStats":
        return ContextStats(
            self.builds, self.hits, self.misses, self.build_seconds
        )

    def as_dict(self) -> dict:
        """Plain-dict form (picklable chunk-result / JSON column)."""
        return {
            "builds": self.builds,
            "hits": self.hits,
            "misses": self.misses,
            "build_seconds": self.build_seconds,
        }

    def render(self) -> str:
        return (
            f"{self.builds} built ({self.build_seconds:.3f}s), "
            f"{self.hits} hits / {self.misses} misses"
        )


@dataclass(frozen=True)
class CampaignContext:
    """One built campaign context.

    ``payload`` is whatever the engine's builder returned — opaque to
    the runtime, handed back verbatim through the work unit's
    ``run(engine, faults, context=payload)``.  ``None`` means the
    engine has nothing reusable for this work (the cache still
    remembers that, so the probe is not repeated either).
    """

    key: tuple
    engine: str
    payload: object
    build_seconds: float


class ContextCache:
    """Keyed cache of campaign contexts for one engine.

    Insertion-ordered with FIFO eviction at ``max_contexts`` — campaign
    drivers touch a handful of contexts, so recency bookkeeping would
    cost more than it saves.  Not thread-safe; each worker process (and
    the in-process runner) owns its own instance.
    """

    def __init__(self, engine: "Engine", max_contexts: int = 16) -> None:
        if max_contexts < 1:
            raise ValueError("max_contexts must be >= 1")
        self.engine = engine
        self.max_contexts = max_contexts
        self._contexts: dict[tuple, CampaignContext] = {}
        self._stats = ContextStats()
        self._cursor = ContextStats()

    def __len__(self) -> int:
        return len(self._contexts)

    @property
    def stats(self) -> ContextStats:
        """Lifetime counters of this cache (a defensive copy)."""
        return self._stats.copy()

    def take_stats(self) -> ContextStats:
        """Counter increments since the previous ``take_stats`` call —
        the per-chunk / per-campaign delta the runner aggregates."""
        delta = self._stats.delta(self._cursor)
        self._cursor = self._stats.copy()
        return delta

    def get(self, work: ContextWork) -> CampaignContext:
        """The cached context for *work*, building it on first touch."""
        key = work.context_key()
        ctx = self._contexts.get(key)
        if ctx is not None:
            self._stats.hits += 1
            return ctx
        self._stats.misses += 1
        started = time.perf_counter()
        payload = work.build_context(self.engine)
        elapsed = time.perf_counter() - started
        self._stats.build_seconds += elapsed
        if payload is not None:
            self._stats.builds += 1
        if len(self._contexts) >= self.max_contexts:
            self._contexts.pop(next(iter(self._contexts)))
        ctx = CampaignContext(key, self.engine.name, payload, elapsed)
        self._contexts[key] = ctx
        return ctx

    def clear(self) -> None:
        """Drop every cached context (counters are kept)."""
        self._contexts.clear()
