"""Packed verdict bitsets: the class-level result containers.

A campaign's per-class result used to be a Python list of one bool (or
``(stream_hit, signature_hit)`` tuple) per fault — linear Python-object
work to build, transport, and count.  The containers here store the
same verdicts as a handful of big integers:

* :class:`PackedVerdicts` — one detection bit per fault;
* :class:`PackedPairVerdicts` — the aliasing-mode pair of bit planes.

Layout.  A fault class enumerates as ``slot``-major runs of ``stride``
parameter variants (e.g. SAF: cell-major, value 0 then 1 → stride 2).
The verdict of fault ``i`` lives at bit ``(i // stride) * slot_stride``
of ``vectors[i % stride]`` — one vector per variant, one (possibly
spaced) bit per slot.  ``slot_stride`` lets a kernel hand over its
natural geometry without recompaction: the intra-word coupling passes
produce one detection bit per *word lane* (slot = address, spacing =
word width), which plugs in directly as ``slot_stride = width``.

Counting is ``int.bit_count`` over the vectors, transport (pickling to
the pool parent) is a few bytes per 8 faults, and the undetected-fault
sample needed for reports is recovered with lowest-set-bit extraction
on the inverted vectors — no per-fault iteration anywhere.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


def _valid_mask(slots: int, slot_stride: int) -> int:
    """Bits ``slot * slot_stride`` for ``slot in range(slots)``."""
    if slots == 0:
        return 0
    if slot_stride == 1:
        return (1 << slots) - 1
    return ((1 << (slots * slot_stride)) - 1) // ((1 << slot_stride) - 1)


def _lowest_bits(value: int, limit: int) -> list[int]:
    """Positions of the *limit* lowest set bits of *value*."""
    out: list[int] = []
    while value and len(out) < limit:
        low = value & -value
        out.append(low.bit_length() - 1)
        value ^= low
    return out


class PackedVerdicts(Sequence):
    """Boolean verdicts of one fault class as packed bit vectors."""

    __slots__ = ("n", "stride", "slot_stride", "vectors")

    def __init__(
        self,
        n: int,
        vectors: Sequence[int],
        *,
        stride: int = 1,
        slot_stride: int = 1,
    ) -> None:
        if stride < 1 or slot_stride < 1:
            raise ValueError("stride and slot_stride must be >= 1")
        if len(vectors) != stride:
            raise ValueError("need exactly one vector per stride variant")
        if n % stride:
            raise ValueError("fault count must be a multiple of stride")
        valid = _valid_mask(n // stride, slot_stride)
        self.n = n
        self.stride = stride
        self.slot_stride = slot_stride
        self.vectors = tuple(v & valid for v in vectors)

    @classmethod
    def from_bools(cls, verdicts: Iterable[object]) -> "PackedVerdicts":
        """Pack a per-fault bool list (strict: rejects non-bool verdicts,
        preserving the tuple-truthiness guard of the list pipeline)."""
        packed = 0
        n = 0
        for verdict in verdicts:
            if not isinstance(verdict, bool):
                raise TypeError(
                    "expected a bool verdict, got "
                    f"{type(verdict).__name__}: {verdict!r}"
                )
            if verdict:
                packed |= 1 << n
            n += 1
        return cls(n, (packed,))

    @classmethod
    def concat(cls, parts: Sequence["PackedVerdicts"]) -> "PackedVerdicts":
        """Join stride-1 chunk results back into one class vector."""
        packed = 0
        offset = 0
        for part in parts:
            if part.stride != 1 or part.slot_stride != 1:
                raise ValueError("concat only supports flat (stride 1) chunks")
            packed |= part.vectors[0] << offset
            offset += part.n
        return cls(offset, (packed,))

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.n))]
        if index < 0:
            index += self.n
        if not 0 <= index < self.n:
            raise IndexError("verdict index out of range")
        slot, variant = divmod(index, self.stride)
        return bool((self.vectors[variant] >> (slot * self.slot_stride)) & 1)

    def __iter__(self) -> Iterator[bool]:
        if self.stride == 1 and self.slot_stride == 1:
            vector = self.vectors[0]
            for i in range(self.n):
                yield bool((vector >> i) & 1)
            return
        for i in range(self.n):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedVerdicts):
            return self.n == other.n and self.tolist() == other.tolist()
        if isinstance(other, list):
            return self.tolist() == other
        return NotImplemented

    def __hash__(self) -> None:  # pragma: no cover - mutable-equality type
        raise TypeError("PackedVerdicts is unhashable")

    def __reduce__(self):
        return (
            _rebuild_verdicts,
            (self.n, self.vectors, self.stride, self.slot_stride),
        )

    def count(self) -> int:
        """Number of detected faults (popcount over the vectors)."""
        return sum(v.bit_count() for v in self.vectors)

    def missed_indices(self, limit: int | None = None) -> list[int]:
        """Fault indices with a False verdict, ascending, capped at
        *limit* — O(limit * stride) big-int ops, not O(n)."""
        limit = self.n if limit is None else min(limit, self.n)
        if limit <= 0:
            return []
        valid = _valid_mask(self.n // self.stride, self.slot_stride)
        out: list[int] = []
        per_variant = [
            _lowest_bits(valid & ~vector, limit) for vector in self.vectors
        ]
        cursors = [0] * self.stride
        while len(out) < limit:
            best = None
            for variant, bits in enumerate(per_variant):
                cursor = cursors[variant]
                if cursor >= len(bits):
                    continue
                slot = bits[cursor] // self.slot_stride
                if best is None or (slot, variant) < best[:2]:
                    best = (slot, variant)
            if best is None:
                break
            slot, variant = best
            cursors[variant] += 1
            out.append(slot * self.stride + variant)
        return out

    def tolist(self) -> list[bool]:
        return list(self)


def _rebuild_verdicts(n, vectors, stride, slot_stride):
    return PackedVerdicts(n, vectors, stride=stride, slot_stride=slot_stride)


class PackedPairVerdicts(Sequence):
    """Aliasing-mode ``(stream_hit, signature_hit)`` verdicts, packed.

    Two parallel :class:`PackedVerdicts`-layout vector sets share one
    geometry; item access recovers the legacy tuple form, while the
    campaign counters come straight off the planes — in particular the
    aliased count is ``popcount(stream & ~signature)`` per vector.
    """

    __slots__ = ("stream", "signature")

    def __init__(self, stream: PackedVerdicts, signature: PackedVerdicts) -> None:
        if (
            stream.n != signature.n
            or stream.stride != signature.stride
            or stream.slot_stride != signature.slot_stride
        ):
            raise ValueError("stream/signature planes must share geometry")
        self.stream = stream
        self.signature = signature

    @classmethod
    def from_pairs(cls, verdicts: Iterable[object]) -> "PackedPairVerdicts":
        """Pack per-fault ``(stream_hit, signature_hit)`` tuples
        (strict, mirroring the list pipeline's verdict validation)."""
        stream = 0
        signature = 0
        n = 0
        for verdict in verdicts:
            if (
                not isinstance(verdict, tuple)
                or len(verdict) != 2
                or not isinstance(verdict[0], bool)
                or not isinstance(verdict[1], bool)
            ):
                raise TypeError(
                    "expected a (stream_hit, signature_hit) bool pair, got "
                    f"{type(verdict).__name__}: {verdict!r}"
                )
            if verdict[0]:
                stream |= 1 << n
            if verdict[1]:
                signature |= 1 << n
            n += 1
        return cls(PackedVerdicts(n, (stream,)), PackedVerdicts(n, (signature,)))

    @classmethod
    def concat(cls, parts: Sequence["PackedPairVerdicts"]) -> "PackedPairVerdicts":
        return cls(
            PackedVerdicts.concat([part.stream for part in parts]),
            PackedVerdicts.concat([part.signature for part in parts]),
        )

    @property
    def n(self) -> int:
        return self.stream.n

    def __len__(self) -> int:
        return self.stream.n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.n))]
        return (self.stream[index], self.signature[index])

    def __iter__(self) -> Iterator[tuple[bool, bool]]:
        return iter(zip(self.stream, self.signature, strict=True))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedPairVerdicts):
            return self.tolist() == other.tolist()
        if isinstance(other, list):
            return self.tolist() == other
        return NotImplemented

    def __hash__(self) -> None:  # pragma: no cover - mutable-equality type
        raise TypeError("PackedPairVerdicts is unhashable")

    def __reduce__(self):
        return (PackedPairVerdicts, (self.stream, self.signature))

    def count(self) -> int:
        """Detected faults — signature-visible hits, matching the list
        pipeline's use of the pair's second component."""
        return self.signature.count()

    def stream_count(self) -> int:
        return self.stream.count()

    def aliased_count(self) -> int:
        """Stream-caught faults whose MISR signature still matched."""
        return sum(
            (s & ~g).bit_count()
            for s, g in zip(self.stream.vectors, self.signature.vectors)
        )

    def missed_indices(self, limit: int | None = None) -> list[int]:
        """Indices missed by the *signature* verdict (report semantics)."""
        return self.signature.missed_indices(limit)

    def tolist(self) -> list[tuple[bool, bool]]:
        return list(self)
