"""Sharded parallel campaign execution across persistent worker processes.

A compare- or signature-oracle campaign slice is embarrassingly
parallel: every fault is simulated alone against the same immutable
``(test, content)`` context, so a per-class fault list can be split
into contiguous chunks and evaluated on separate processes with no
shared state.  This module provides

* :class:`CompareWork` / :class:`SignatureWork` / :class:`AliasingWork`
  — picklable work-unit descriptions (the flow structure minus the
  faults), executable against any registered engine and keyed into the
  campaign-context cache (:mod:`repro.engine.context`);
* :class:`CampaignRunner` — a process-pool wrapper that shards fault
  classes, dispatches chunks, and merges verdicts deterministically.

Amortized campaign contexts
---------------------------

The expensive part of a chunk is not the fault verdicts — it is the
*context*: packed bit-planes, MISR weight tables, fault-free
baselines.  That context depends only on ``(test, geometry, words,
mode, engine)``, so every worker process keeps a
:class:`~repro.engine.context.ContextCache` for its lifetime:

* the **first** chunk a worker sees for a given key builds the context
  (at most one build per distinct context per worker);
* every later chunk — across classes, campaigns and oracles — replays
  the cached one;
* signature- and aliasing-mode work units share one ``"session"``
  context key on purpose, so a mixed-mode run builds the two-phase
  session state once per worker, not once per mode.

Chunk results carry the worker cache's counter deltas back to the
parent, where :meth:`CampaignRunner.take_stats` aggregates them with
the in-process cache (the jobs=1 / small-class path) so
``CampaignReport.context_stats`` can prove the amortization.

Determinism contract
--------------------

``jobs=1`` and ``jobs=N`` produce bit-identical coverage vectors and
stable report ordering, by construction:

* all randomness (initial memory content, fault-universe sampling) is
  resolved from the campaign seed *before* sharding — the work unit
  carries the concrete word list, and fault enumeration order is fixed
  by the universe builder;
* chunk boundaries depend only on ``(len(faults), jobs)``, never on
  timing; because the enumerators emit faults in address order,
  contiguous chunks are address-range shards;
* verdicts are merged back in submission order (chunk *i*'s verdicts
  land before chunk *i+1*'s), recovering the exact sequential order;
* cached contexts are pure precomputations of the work unit — a warm
  replay and a cold build produce the same verdicts bit for bit (only
  the cache *counters* differ between runs).

Workers are forked when the platform allows it, so custom engines
registered in the parent are visible in the children; on spawn-only
platforms the chunk worker re-resolves the engine by name from the
registry the fresh interpreter builds at import.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..memory.injection import FaultClass
from .base import Engine, engine_names, get_engine
from .context import ContextCache, ContextStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.march import MarchTest
    from ..memory.faults import Fault
    from .verdicts import PackedPairVerdicts, PackedVerdicts


@dataclass(frozen=True)
class CompareWork:
    """One compare-oracle campaign context description: everything an
    engine's :meth:`~repro.engine.Engine.detect_batch` needs except the
    faults."""

    test: "MarchTest"
    n_words: int
    width: int
    words: tuple[int, ...]
    derive_writes: bool = True

    def context_key(self) -> tuple:
        """Cache key of the amortizable campaign state (the engine is
        fixed per cache, completing the ``(test, geometry, words,
        mode, engine)`` key of the context runtime)."""
        return (
            "compare",
            self.test,
            self.n_words,
            self.width,
            self.words,
            self.derive_writes,
        )

    def build_context(self, engine: Engine) -> object:
        return engine.build_compare_context(
            self.test,
            self.n_words,
            self.width,
            list(self.words),
            derive_writes=self.derive_writes,
        )

    def run(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> list[bool]:
        # context= travels only when a payload exists: an engine whose
        # build hook returned None may predate the context parameter
        # entirely (custom engines overriding the old signatures).
        kwargs = {} if context is None else {"context": context}
        return engine.detect_batch(
            self.test,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            derive_writes=self.derive_writes,
            **kwargs,
        )

    def run_class(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> "PackedVerdicts":
        kwargs = {} if context is None else {"context": context}
        return engine.detect_class_batch(
            self.test,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            derive_writes=self.derive_writes,
            **kwargs,
        )


@dataclass(frozen=True)
class SignatureWork:
    """One signature-oracle campaign context description (two-phase
    MISR session)."""

    test: "MarchTest"
    prediction: "MarchTest"
    n_words: int
    width: int
    words: tuple[int, ...]
    misr_width: int = 16
    misr_seed: int = 0

    def context_key(self) -> tuple:
        """Deliberately shared with :class:`AliasingWork`: both oracles
        read the same two-phase session state, so signature- and
        aliasing-mode campaigns of the same session reuse one cached
        context."""
        return (
            "session",
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            self.words,
            self.misr_width,
            self.misr_seed,
        )

    def build_context(self, engine: Engine) -> object:
        return engine.build_session_context(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
        )

    def run(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> list[bool]:
        kwargs = {} if context is None else {"context": context}
        return engine.detect_signature_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )

    def run_class(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> "PackedVerdicts":
        kwargs = {} if context is None else {"context": context}
        return engine.detect_class_signature_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )


@dataclass(frozen=True)
class AliasingWork(SignatureWork):
    """One aliasing-oracle campaign context description: the exact
    session description of :class:`SignatureWork` (including its cache
    key), but reporting per-fault ``(stream detected, signature
    detected)`` pair verdicts so aliasing events can be counted.  Pair
    verdicts are plain tuples of bools, so chunks shard and merge
    exactly like boolean verdicts."""

    def run(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> list[tuple[bool, bool]]:
        kwargs = {} if context is None else {"context": context}
        return engine.detect_aliasing_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )

    def run_class(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> "PackedPairVerdicts":
        kwargs = {} if context is None else {"context": context}
        return engine.detect_class_aliasing_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )


def work_key(work) -> tuple:
    """Dispatch identity of a work unit: its class plus its context
    key.  Two works may *share* a context (signature + aliasing share
    the session state) yet run different oracles, so bound-work lookup
    must key on both."""
    return (type(work).__name__, work.context_key())


# ---------------------------------------------------------------------------
# Worker-side persistent state
# ---------------------------------------------------------------------------

# Per-process campaign-context caches, one per engine name, alive for
# the worker process's lifetime.  A worker builds each distinct context
# at most once and replays it for every subsequent chunk that shares
# the key — across fault classes, campaigns and oracle modes.  The
# parent process never touches these (its inline path uses the
# runner's own cache), so forked children start empty.
_WORKER_CACHES: dict[str, ContextCache] = {}


def _worker_cache(engine_name: str) -> ContextCache:
    cache = _WORKER_CACHES.get(engine_name)
    if cache is None:
        cache = ContextCache(get_engine(engine_name))
        _WORKER_CACHES[engine_name] = cache
    return cache


def _run_chunk(engine_name, work, faults):
    """Worker entry point for the unbound path: the chunk carries its
    pickled work unit and fault slice; the context is served from the
    worker's persistent cache.  Returns ``(packed_verdicts,
    stats_delta)`` — the packed bitset pickles back to the parent at a
    few bytes per 8 faults, where the old per-fault bool/tuple lists
    rivalled the simulation cost of a chunk (module-level so it
    pickles under both fork and spawn)."""
    cache = _worker_cache(engine_name)
    ctx = cache.get(work)
    verdicts = work.run_class(cache.engine, faults, context=ctx.payload)
    return verdicts, cache.take_stats().as_dict()


# Campaign state inherited by forked workers.  Binding the work units
# and every fault class here *before* the pool forks lets chunks travel
# as bare (work_key, class_name, start, stop) messages — the fault
# objects and work units reach the workers through copy-on-write memory
# instead of being pickled through a pipe, which would otherwise rival
# the per-fault simulation cost itself.  One binding at a time per
# process: the generation token makes a stale binding (a second runner
# re-binding before this runner's pool forks) a loud error instead of
# silently wrong verdicts.
_BOUND: "tuple[int, dict[tuple, object], dict[str, list]] | None" = None
_BIND_GENERATION = 0


def _bind(works, classes) -> int:
    global _BOUND, _BIND_GENERATION
    _BIND_GENERATION += 1
    _BOUND = None if works is None else (_BIND_GENERATION, works, classes)
    return _BIND_GENERATION


def _run_bound_chunk(engine_name, token, key, class_name, start, stop):
    """Worker entry point for the fork path: resolve the work unit and
    fault slice from the inherited binding, then evaluate the chunk
    against the worker's persistent context cache."""
    if _BOUND is None or _BOUND[0] != token:
        raise RuntimeError(
            "campaign binding changed after the worker pool forked; "
            "bind() must precede detect_class() and bound campaigns "
            "must not interleave within one process"
        )
    _token, works, classes = _BOUND
    work = works[key]
    faults = classes[class_name][start:stop]
    cache = _worker_cache(engine_name)
    ctx = cache.get(work)
    verdicts = work.run_class(cache.engine, faults, context=ctx.payload)
    return verdicts, cache.take_stats().as_dict()


def shard_bounds(n_faults: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` chunk bounds.

    Sizes differ by at most one, larger chunks first; depends only on
    the arguments, so the shard layout is reproducible.
    """
    n_chunks = max(1, min(n_chunks, n_faults)) if n_faults else 0
    bounds = []
    start = 0
    for i in range(n_chunks):
        size = n_faults // n_chunks + (1 if i < n_faults % n_chunks else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _pool_context():
    """Prefer fork (cheap, inherits the engine registry); fall back to
    the platform default where fork does not exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class CampaignRunner:
    """Shards per-class fault lists across persistent worker processes.

    The pool is created lazily on the first class large enough to
    shard and reused for every subsequent class — and, when the
    binding allows it, every subsequent *campaign* — so worker startup
    **and** per-context construction are amortized across everything
    the runner executes.  Classes smaller than ``min_chunk * 2`` run
    inline through the runner's own context cache.

    A runner is reusable: pass it to several ``run_campaign`` calls
    (e.g. one per oracle mode) via ``run_campaign(..., runner=...)``.
    Bind every mode's work unit up front —
    ``runner.bind([w1, w2, w3], universe)`` — and the pool, its
    workers and their warm context caches survive across the whole
    mixed-mode run; re-binding with a different universe or an unknown
    work restarts the pool (correct, merely colder).
    """

    def __init__(
        self,
        engine: "str | Engine | None" = None,
        jobs: int = 1,
        *,
        chunks_per_job: int = 4,
        min_chunk: int = 64,
        max_contexts: int = 16,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.engine = get_engine(engine)
        # An unregistered engine instance cannot be rehydrated by name
        # in a worker; run it inline instead of crashing mid-campaign.
        self.jobs = jobs if self.engine.name in engine_names() else 1
        self.chunks_per_job = chunks_per_job
        self.min_chunk = min_chunk
        self._context = _pool_context()
        self._pool: ProcessPoolExecutor | None = None
        self._cache = ContextCache(self.engine, max_contexts)
        self._worker_stats = ContextStats()
        self._bound_works: "dict[tuple, object] | None" = None
        self._bound_classes: "dict[str, Sequence[Fault]] | None" = None
        self._bound_refs: "dict[str, Sequence[Fault]] | None" = None
        self._bound_token: int | None = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool, drop the binding and the runner's own
        cached contexts (counters survive for a final take_stats)."""
        self._drop_binding()
        self._cache.clear()

    def _drop_binding(self) -> None:
        """Shut down the pool and forget the bound campaign, keeping
        the runner's own context cache — contexts are keyed by work,
        not by universe, so a re-bind does not invalidate them."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._bound_classes is not None:
            self._bound_classes = None
            self._bound_works = None
            self._bound_refs = None
            # Only clear the global if this runner still owns it — a
            # later runner's binding must survive this one's close().
            if _BOUND is not None and _BOUND[0] == self._bound_token:
                _bind(None, None)
            self._bound_token = None

    # -- statistics ----------------------------------------------------
    def take_stats(self) -> ContextStats:
        """Context-cache counter increments since the previous call:
        the runner's inline cache plus every worker delta returned with
        the chunks in between.  ``run_campaign`` calls this once per
        campaign, so shared runners report per-campaign stats."""
        stats = self._worker_stats
        self._worker_stats = ContextStats()
        return stats.merge(self._cache.take_stats())

    # -- binding -------------------------------------------------------
    def bind(self, work, universe: "dict[str, Sequence[Fault]]") -> None:
        """Pre-bind a campaign — or, given a sequence of work units, a
        whole mixed-mode run — so forked workers inherit the works and
        fault classes copy-on-write and chunks travel as bare
        ``(work_key, class, start, stop)`` messages.

        Binding the same works and universe again is a no-op, keeping
        the live pool, the worker caches and the runner's own context
        cache warm; binding anything new restarts the pool (the
        context caches survive — contexts do not depend on the
        universe).  Without a fork-capable platform (or with
        ``jobs=1``) the binding is recorded for this idempotence check
        only: chunks then carry their pickled work unit and fault
        list, which is merely slower, not wrong (contexts are still
        cached per worker).
        """
        if self.jobs == 1:
            # Inline execution has no pool to keep warm and never
            # consults the binding — its context cache survives any
            # re-bind on its own, so recording anything would only
            # cost the universe copy and per-campaign comparison.
            return
        works = list(work) if isinstance(work, (list, tuple)) else [work]
        new_works = {work_key(w): w for w in works}
        if self._bound_works is not None:
            if (
                all(k in self._bound_works for k in new_works)
                and self._universe_matches(universe)
            ):
                return  # already bound — keep pool and warm caches
        self._drop_binding()
        self._bound_works = new_works
        # Streaming FaultClass descriptors are bound as-is — they are
        # tiny, index-addressable and picklable, so workers never need
        # (and the parent never builds) a materialized copy.
        self._bound_classes = {
            name: faults if isinstance(faults, FaultClass) else list(faults)
            for name, faults in universe.items()
        }
        # The caller's original per-class sequences, for the identity
        # short-circuit of the common same-universe re-bind.
        self._bound_refs = dict(universe)
        if self._context.get_start_method() == "fork":
            # Publish for the zero-copy fork path; on spawn-only
            # platforms the binding only serves the re-bind idempotence
            # check above (spawned workers cannot see the global).
            self._bound_token = _bind(self._bound_works, self._bound_classes)

    def _universe_matches(self, universe) -> bool:
        bound = self._bound_classes
        refs = self._bound_refs or {}
        if bound is None or set(bound) != set(universe):
            return False
        # Identity of the caller's sequences (the common case: one
        # universe object reused across modes) makes the re-bind check
        # O(classes); only genuinely new sequences pay the deep
        # element-wise comparison.  FaultClass descriptors compare by
        # enumeration spec — O(1), and never equal to a plain list, so
        # swapping representations rebinds (correct, merely colder).
        def matches(name: str) -> bool:
            bound_faults = bound[name]
            new_faults = universe[name]
            if refs.get(name) is new_faults:
                return True
            if isinstance(bound_faults, FaultClass) or isinstance(
                new_faults, FaultClass
            ):
                return bound_faults == new_faults
            return len(bound_faults) == len(new_faults) and bound_faults == list(
                new_faults
            )

        return all(matches(name) for name in bound)

    # -- execution -----------------------------------------------------
    def detect_class(
        self,
        work,
        faults: "Sequence[Fault]",
        *,
        class_name: str | None = None,
    ) -> list[bool]:
        """Verdicts for one fault class as a plain per-fault list,
        bit-identical to ``work.run(engine, faults)`` executed
        sequentially (the packed pipeline, unpacked at the end)."""
        return self.detect_class_packed(
            work, faults, class_name=class_name
        ).tolist()

    def detect_class_packed(
        self,
        work,
        faults: "Sequence[Fault]",
        *,
        class_name: str | None = None,
    ) -> "PackedVerdicts | PackedPairVerdicts":
        """Packed verdict bitset for one fault class, bit-identical to
        ``work.run(engine, faults)`` executed sequentially.

        When *class_name* names a class of a prior :meth:`bind` (and
        the work unit was bound), the bound copies are what the workers
        evaluate — the zero-copy fork path.  Streaming
        :class:`~repro.memory.injection.FaultClass` descriptors always
        run inline: their class kernels answer the whole class in a few
        packed passes over state the workers would each have to rebuild,
        so sharding them would multiply the context work it saves.
        """
        key = work_key(work)
        bound = (
            self._bound_token is not None
            and self._bound_classes is not None
            and class_name is not None
            and class_name in self._bound_classes
            and key in (self._bound_works or ())
        )
        if bound:
            # Fail fast in the parent too: the inline FaultClass path
            # below never consults the forked workers, but running it
            # against a clobbered binding would still interleave two
            # bound campaigns in one process.
            self._check_live_binding()
            faults = self._bound_classes[class_name]
        elif not isinstance(faults, FaultClass):
            faults = list(faults)
        if (
            isinstance(faults, FaultClass)
            or self.jobs == 1
            or len(faults) < 2 * self.min_chunk
        ):
            ctx = self._cache.get(work)
            return work.run_class(self.engine, faults, context=ctx.payload)
        n_chunks = min(
            self.jobs * self.chunks_per_job,
            max(1, len(faults) // self.min_chunk),
        )
        bounds = shard_bounds(len(faults), n_chunks)
        if len(bounds) <= 1:
            ctx = self._cache.get(work)
            return work.run_class(self.engine, faults, context=ctx.payload)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=self._context
            )
        if bound:
            futures = [
                self._pool.submit(
                    _run_bound_chunk, self.engine.name, self._bound_token,
                    key, class_name, start, stop,
                )
                for start, stop in bounds
            ]
        else:
            futures = [
                self._pool.submit(
                    _run_chunk, self.engine.name, work, faults[start:stop]
                )
                for start, stop in bounds
            ]
        parts = []
        for future in futures:  # submission order == fault order
            chunk_verdicts, stats = future.result()
            parts.append(chunk_verdicts)
            self._worker_stats.merge(stats)
        merged = type(parts[0]).concat(parts)
        if len(merged) != len(faults):
            raise RuntimeError(
                f"sharded class returned {len(merged)} verdicts for "
                f"{len(faults)} faults; refusing to report truncated coverage"
            )
        return merged

    def _check_live_binding(self) -> None:
        """Raise if this runner's binding has been clobbered by a later
        ``bind()`` in this process (same guard the forked workers
        apply, applied before any inline execution)."""
        if self._bound_token is None:
            return
        if _BOUND is None or _BOUND[0] != self._bound_token:
            raise RuntimeError(
                "campaign binding changed after bind(); bound campaigns "
                "must not interleave within one process"
            )
