"""Sharded parallel campaign execution across worker processes.

A compare- or signature-oracle campaign slice is embarrassingly
parallel: every fault is simulated alone against the same immutable
``(test, content)`` context, so a per-class fault list can be split
into contiguous chunks and evaluated on separate processes with no
shared state.  This module provides

* :class:`CompareWork` / :class:`SignatureWork` / :class:`AliasingWork`
  — picklable work-unit descriptions (the flow structure minus the
  faults), executable against any registered engine;
* :class:`CampaignRunner` — a process-pool wrapper that shards a fault
  class, dispatches chunks, and merges verdicts deterministically.

Determinism contract
--------------------

``jobs=1`` and ``jobs=N`` produce bit-identical coverage vectors and
stable report ordering, by construction:

* all randomness (initial memory content, fault-universe sampling) is
  resolved from the campaign seed *before* sharding — the work unit
  carries the concrete word list, and fault enumeration order is fixed
  by the universe builder;
* chunk boundaries depend only on ``(len(faults), jobs)``, never on
  timing; because the enumerators emit faults in address order,
  contiguous chunks are address-range shards;
* verdicts are merged back in submission order (chunk *i*'s verdicts
  land before chunk *i+1*'s), recovering the exact sequential order.

Workers are forked when the platform allows it, so custom engines
registered in the parent are visible in the children; on spawn-only
platforms the chunk worker re-resolves the engine by name from the
registry the fresh interpreter builds at import.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .base import Engine, engine_names, get_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.march import MarchTest
    from ..memory.faults import Fault


@dataclass(frozen=True)
class CompareWork:
    """One compare-oracle campaign context: everything an engine's
    :meth:`~repro.engine.Engine.detect_batch` needs except the faults."""

    test: "MarchTest"
    n_words: int
    width: int
    words: tuple[int, ...]
    derive_writes: bool = True

    def run(self, engine: Engine, faults: "Sequence[Fault]") -> list[bool]:
        return engine.detect_batch(
            self.test,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            derive_writes=self.derive_writes,
        )


@dataclass(frozen=True)
class SignatureWork:
    """One signature-oracle campaign context (two-phase MISR session)."""

    test: "MarchTest"
    prediction: "MarchTest"
    n_words: int
    width: int
    words: tuple[int, ...]
    misr_width: int = 16
    misr_seed: int = 0

    def run(self, engine: Engine, faults: "Sequence[Fault]") -> list[bool]:
        return engine.detect_signature_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
        )


@dataclass(frozen=True)
class AliasingWork(SignatureWork):
    """One aliasing-oracle campaign context: the exact session
    description of :class:`SignatureWork`, but reporting per-fault
    ``(stream detected, signature detected)`` pair verdicts so
    aliasing events can be counted.  Pair verdicts are plain tuples of
    bools, so chunks shard and merge exactly like boolean verdicts."""

    def run(
        self, engine: Engine, faults: "Sequence[Fault]"
    ) -> list[tuple[bool, bool]]:
        return engine.detect_aliasing_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
        )


def _run_chunk(engine_name, work, faults):
    """Worker entry point: evaluate one fault chunk (module-level so it
    pickles under both fork and spawn start methods)."""
    return work.run(get_engine(engine_name), faults)


# Campaign state inherited by forked workers.  Binding the work unit
# and every fault class here *before* the pool forks lets chunks travel
# as bare (class_name, start, stop) index triples — the fault objects
# reach the workers through copy-on-write memory instead of being
# pickled through a pipe, which would otherwise rival the per-fault
# simulation cost itself.  One campaign at a time per process: the
# generation token makes a stale binding (a second runner re-binding
# before this runner's pool forks) a loud error instead of silently
# wrong verdicts.
_BOUND: "tuple[int, object, dict[str, list]] | None" = None
_BIND_GENERATION = 0


def _bind(work, classes) -> int:
    global _BOUND, _BIND_GENERATION
    _BIND_GENERATION += 1
    _BOUND = None if work is None else (_BIND_GENERATION, work, classes)
    return _BIND_GENERATION


def _run_bound_chunk(engine_name, token, class_name, start, stop):
    """Worker entry point for the fork path: slice the inherited class."""
    if _BOUND is None or _BOUND[0] != token:
        raise RuntimeError(
            "campaign binding changed after the worker pool forked; "
            "bind() must precede detect_class() and bound campaigns "
            "must not interleave within one process"
        )
    _token, work, classes = _BOUND
    return work.run(get_engine(engine_name), classes[class_name][start:stop])


def shard_bounds(n_faults: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` chunk bounds.

    Sizes differ by at most one, larger chunks first; depends only on
    the arguments, so the shard layout is reproducible.
    """
    n_chunks = max(1, min(n_chunks, n_faults)) if n_faults else 0
    bounds = []
    start = 0
    for i in range(n_chunks):
        size = n_faults // n_chunks + (1 if i < n_faults % n_chunks else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _pool_context():
    """Prefer fork (cheap, inherits the engine registry); fall back to
    the platform default where fork does not exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class CampaignRunner:
    """Shards per-class fault lists across a process pool.

    The pool is created lazily on the first class large enough to
    shard and reused for every subsequent class of the campaign, so
    worker startup is amortized across the whole universe.  Classes
    smaller than ``min_chunk * 2`` run inline — the per-chunk context
    rebuild (bit-plane passes, fault-free streams) would otherwise cost
    more than the parallelism returns.
    """

    def __init__(
        self,
        engine: "str | Engine | None" = None,
        jobs: int = 1,
        *,
        chunks_per_job: int = 4,
        min_chunk: int = 64,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.engine = get_engine(engine)
        # An unregistered engine instance cannot be rehydrated by name
        # in a worker; run it inline instead of crashing mid-campaign.
        self.jobs = jobs if self.engine.name in engine_names() else 1
        self.chunks_per_job = chunks_per_job
        self.min_chunk = min_chunk
        self._context = _pool_context()
        self._pool: ProcessPoolExecutor | None = None
        self._bound_classes: "dict[str, list[Fault]] | None" = None
        self._bound_token: int | None = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._bound_classes is not None:
            self._bound_classes = None
            # Only clear the global if this runner still owns it — a
            # later runner's binding must survive this one's close().
            if _BOUND is not None and _BOUND[0] == self._bound_token:
                _bind(None, None)
            self._bound_token = None

    def bind(self, work, universe: "dict[str, Sequence[Fault]]") -> None:
        """Pre-bind a whole campaign so forked workers inherit the
        fault classes copy-on-write and chunks travel as index triples.

        Must be called before the first :meth:`detect_class` (the pool
        forks lazily and snapshots the bound state).  Without a bind —
        or on spawn-only platforms — chunks fall back to carrying their
        pickled fault lists, which is merely slower, not wrong.
        """
        self.close()
        if self._context.get_start_method() != "fork":
            return  # spawned workers would not see the parent's global
        self._bound_classes = {
            name: list(faults) for name, faults in universe.items()
        }
        self._bound_token = _bind(work, self._bound_classes)

    # -- execution -----------------------------------------------------
    def detect_class(
        self,
        work,
        faults: "Sequence[Fault]",
        *,
        class_name: str | None = None,
    ) -> list[bool]:
        """Verdicts for one fault class, bit-identical to
        ``work.run(engine, faults)`` executed sequentially.

        When *class_name* names a class of a prior :meth:`bind`, the
        bound copy is what the workers evaluate (zero-copy fork path).
        """
        bound = (
            self._bound_classes is not None
            and class_name is not None
            and class_name in self._bound_classes
        )
        faults = (
            self._bound_classes[class_name] if bound else list(faults)
        )
        if self.jobs == 1 or len(faults) < 2 * self.min_chunk:
            return work.run(self.engine, faults)
        n_chunks = min(
            self.jobs * self.chunks_per_job,
            max(1, len(faults) // self.min_chunk),
        )
        bounds = shard_bounds(len(faults), n_chunks)
        if len(bounds) <= 1:
            return work.run(self.engine, faults)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=self._context
            )
        if bound:
            futures = [
                self._pool.submit(
                    _run_bound_chunk, self.engine.name, self._bound_token,
                    class_name, start, stop,
                )
                for start, stop in bounds
            ]
        else:
            futures = [
                self._pool.submit(
                    _run_chunk, self.engine.name, work, faults[start:stop]
                )
                for start, stop in bounds
            ]
        verdicts: list[bool] = []
        for future in futures:  # submission order == fault order
            verdicts.extend(future.result())
        if len(verdicts) != len(faults):
            raise RuntimeError(
                f"sharded class returned {len(verdicts)} verdicts for "
                f"{len(faults)} faults; refusing to report truncated coverage"
            )
        return verdicts
