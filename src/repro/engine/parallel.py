"""Supervised, lease-based parallel campaign execution.

A compare- or signature-oracle campaign slice is embarrassingly
parallel: every fault is simulated alone against the same immutable
``(test, content)`` context, so a per-class fault list can be split
into contiguous chunks and evaluated on separate processes with no
shared state.  This module provides

* :class:`CompareWork` / :class:`SignatureWork` / :class:`AliasingWork`
  — picklable work-unit descriptions (the flow structure minus the
  faults), executable against any registered engine and keyed into the
  campaign-context cache (:mod:`repro.engine.context`);
* :class:`CampaignRunner` — a supervised worker-pool wrapper that
  shards fault classes into **leases**, dispatches them, survives
  worker faults, and merges verdicts deterministically.

Fault-tolerant execution fabric
-------------------------------

Every dispatched chunk is a :class:`ChunkLease` ``(work_key, class,
start, stop, attempt, deadline)`` tracked by the parent.  Workers are
plain ``multiprocessing`` processes supervised over per-worker duplex
pipes — no shared queues a dying worker could corrupt — and the
supervisor loop detects three fault families:

* **crash** — the worker's pipe hits EOF (or the process stops being
  alive): its lease is unacked, the worker is respawned, the lease
  re-dispatched;
* **hang** — the lease's deadline (``RetryPolicy.timeout``) passes:
  the worker is terminated and respawned, the lease re-dispatched;
* **corruption / poison** — the chunk result carries the wrong number
  of verdicts, or the chunk raised in the worker: the attempt is
  discarded and the lease re-dispatched.

Re-dispatch is bounded by :class:`~repro.engine.retry.RetryPolicy`
(attempt count, per-attempt deadline, exponential backoff).  A lease
that exhausts its attempts **degrades gracefully**: the chunk runs
in-process through the runner's own context cache (and when the pool
cannot be built or rebuilt at all, the whole class falls back to
``jobs=1`` execution) instead of aborting the campaign; pass
``degrade=False`` to make exhaustion raise instead.  Everything the
supervisor did is accounted in
:class:`~repro.engine.retry.FaultToleranceStats`
(``CampaignReport.fault_tolerance``, the CLI ``faults:`` line).

An injectable chaos layer (:mod:`repro.engine.chaos`) disturbs
dispatches deterministically — worker N crashes/hangs/corrupts on
chunk M — so tests, CI and the benchmark can prove the recovery paths
produce bit-identical reports.

Amortized campaign contexts
---------------------------

The expensive part of a chunk is not the fault verdicts — it is the
*context*: packed bit-planes, MISR weight tables, fault-free
baselines.  That context depends only on ``(test, geometry, words,
mode, engine)``, so every worker process keeps a
:class:`~repro.engine.context.ContextCache` for its lifetime:

* the **first** chunk a worker sees for a given key builds the context
  (at most one build per distinct context per worker);
* every later chunk — across classes, campaigns and oracles — replays
  the cached one;
* signature- and aliasing-mode work units share one ``"session"``
  context key on purpose, so a mixed-mode run builds the two-phase
  session state once per worker, not once per mode.

Chunk results carry the worker cache's counter deltas back to the
parent, where :meth:`CampaignRunner.take_stats` aggregates them with
the in-process cache (the jobs=1 / small-class path) so
``CampaignReport.context_stats`` can prove the amortization.

Determinism contract
--------------------

``jobs=1`` and ``jobs=N`` produce bit-identical coverage vectors and
stable report ordering — *with or without faults in the fabric* — by
construction:

* all randomness (initial memory content, fault-universe sampling) is
  resolved from the campaign seed *before* sharding — the work unit
  carries the concrete word list, and fault enumeration order is fixed
  by the universe builder;
* chunk boundaries depend only on ``(len(faults), jobs)``, never on
  timing; because the enumerators emit faults in address order,
  contiguous chunks are address-range shards;
* verdicts are merged back in lease order (chunk *i*'s verdicts land
  before chunk *i+1*'s), recovering the exact sequential order
  regardless of completion order, retries or degradation;
* a chunk is a pure function of ``(work, class, start, stop)`` — a
  retried attempt, a chunk evaluated on a respawned worker and a
  degraded in-process run all produce the same verdicts bit for bit;
* cached contexts are pure precomputations of the work unit — a warm
  replay and a cold build produce the same verdicts (only the cache
  *counters* differ between runs).

Incremental binding
-------------------

Workers are forked when the platform allows it, and
:meth:`CampaignRunner.bind` publishes the work units and fault classes
to the runner's private binding store immediately before the fork, so
chunks travel as bare ``(work_key, class, gen, start, stop)`` messages
and the fault objects reach the workers through copy-on-write memory.
Re-binding is **incremental**: binding new works or a different
universe while the pool is alive ships only the per-class *diff* to
each worker over its pipe — the pool, its processes and their warm
context caches all survive, and because every runner owns its store
(respawned workers inherit a just-in-time snapshot of it), two bound
runners can interleave in one process without clobbering each other.
On spawn-only platforms chunks carry their pickled work unit and fault
slice instead — slower transport, same verdicts.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import TYPE_CHECKING, Callable, Sequence

from ..memory.injection import FaultClass
from .base import Engine, ExecutionError, engine_names, get_engine
from .chaos import FaultPlan, perform as perform_chaos
from .context import ContextCache, ContextStats
from .retry import FaultToleranceStats, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.march import MarchTest
    from ..memory.faults import Fault
    from .verdicts import PackedPairVerdicts, PackedVerdicts


@dataclass(frozen=True)
class CompareWork:
    """One compare-oracle campaign context description: everything an
    engine's :meth:`~repro.engine.Engine.detect_batch` needs except the
    faults."""

    test: "MarchTest"
    n_words: int
    width: int
    words: tuple[int, ...]
    derive_writes: bool = True

    def context_key(self) -> tuple:
        """Cache key of the amortizable campaign state (the engine is
        fixed per cache, completing the ``(test, geometry, words,
        mode, engine)`` key of the context runtime)."""
        return (
            "compare",
            self.test,
            self.n_words,
            self.width,
            self.words,
            self.derive_writes,
        )

    def build_context(self, engine: Engine) -> object:
        return engine.build_compare_context(
            self.test,
            self.n_words,
            self.width,
            list(self.words),
            derive_writes=self.derive_writes,
        )

    def run(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> list[bool]:
        # context= travels only when a payload exists: an engine whose
        # build hook returned None may predate the context parameter
        # entirely (custom engines overriding the old signatures).
        kwargs = {} if context is None else {"context": context}
        return engine.detect_batch(
            self.test,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            derive_writes=self.derive_writes,
            **kwargs,
        )

    def run_class(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> "PackedVerdicts":
        kwargs = {} if context is None else {"context": context}
        return engine.detect_class_batch(
            self.test,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            derive_writes=self.derive_writes,
            **kwargs,
        )


@dataclass(frozen=True)
class SignatureWork:
    """One signature-oracle campaign context description (two-phase
    MISR session)."""

    test: "MarchTest"
    prediction: "MarchTest"
    n_words: int
    width: int
    words: tuple[int, ...]
    misr_width: int = 16
    misr_seed: int = 0

    def context_key(self) -> tuple:
        """Deliberately shared with :class:`AliasingWork`: both oracles
        read the same two-phase session state, so signature- and
        aliasing-mode campaigns of the same session reuse one cached
        context."""
        return (
            "session",
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            self.words,
            self.misr_width,
            self.misr_seed,
        )

    def build_context(self, engine: Engine) -> object:
        return engine.build_session_context(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
        )

    def run(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> list[bool]:
        kwargs = {} if context is None else {"context": context}
        return engine.detect_signature_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )

    def run_class(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> "PackedVerdicts":
        kwargs = {} if context is None else {"context": context}
        return engine.detect_class_signature_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )


@dataclass(frozen=True)
class AliasingWork(SignatureWork):
    """One aliasing-oracle campaign context description: the exact
    session description of :class:`SignatureWork` (including its cache
    key), but reporting per-fault ``(stream detected, signature
    detected)`` pair verdicts so aliasing events can be counted.  Pair
    verdicts are plain tuples of bools, so chunks shard and merge
    exactly like boolean verdicts."""

    def run(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> list[tuple[bool, bool]]:
        kwargs = {} if context is None else {"context": context}
        return engine.detect_aliasing_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )

    def run_class(
        self, engine: Engine, faults: "Sequence[Fault]", context: object = None
    ) -> "PackedPairVerdicts":
        kwargs = {} if context is None else {"context": context}
        return engine.detect_class_aliasing_batch(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            list(self.words),
            faults,
            misr_width=self.misr_width,
            misr_seed=self.misr_seed,
            **kwargs,
        )


def work_key(work) -> tuple:
    """Dispatch identity of a work unit: its class plus its context
    key.  Two works may *share* a context (signature + aliasing share
    the session state) yet run different oracles, so bound-work lookup
    must key on both."""
    return (type(work).__name__, work.context_key())


class ChunkExhaustedError(ExecutionError):
    """A chunk lease failed on every allowed attempt and degradation
    was disabled (``degrade=False`` / ``--no-degrade``)."""


@dataclass
class ChunkLease:
    """One dispatched (and re-dispatchable) chunk of a fault class.

    The parent tracks every lease until its verdicts are acked; an
    unacked lease — worker crash, deadline passed, corrupt or raising
    chunk — is re-dispatched with bounded backoff, and chunk purity
    makes the retry bit-identical.  ``index`` is the merge position in
    the class's chunk order; ``chunk`` the ordinal the chaos plan keys
    on (identical to ``index`` for a single-class dispatch).
    """

    index: int
    task: tuple
    class_name: str | None
    chunk: int
    start: int
    stop: int
    attempt: int = 0
    not_before: float = 0.0
    deadline: float | None = None
    dispatched_at: float = 0.0
    last_error: str | None = None

    @property
    def n_faults(self) -> int:
        return self.stop - self.start

    def describe(self) -> str:
        label = self.class_name if self.class_name is not None else "<direct>"
        return f"chunk {self.chunk} of class {label} [{self.start}:{self.stop}]"


# ---------------------------------------------------------------------------
# Worker-side persistent state
# ---------------------------------------------------------------------------

# Per-process campaign-context caches, one per engine name, alive for
# the worker process's lifetime.  A worker builds each distinct context
# at most once and replays it for every subsequent chunk that shares
# the key — across fault classes, campaigns and oracle modes.  The
# parent process never touches these (its inline path uses the
# runner's own cache), so forked children start empty.
_WORKER_CACHES: dict[str, ContextCache] = {}


def _worker_cache(engine_name: str) -> ContextCache:
    cache = _WORKER_CACHES.get(engine_name)
    if cache is None:
        cache = ContextCache(get_engine(engine_name))
        _WORKER_CACHES[engine_name] = cache
    return cache


class _BindingStore:
    """Bound campaign state: work units and fault classes by name.

    Each :class:`CampaignRunner` owns one; each worker process holds a
    snapshot of its runner's store (inherited copy-on-write at fork)
    and applies incremental ``bind`` diffs the parent pushes over the
    worker's pipe.  ``class_gen`` carries a per-class generation the
    chunk messages echo, so a worker evaluating a chunk against stale
    class data fails loudly instead of returning wrong verdicts.
    """

    __slots__ = ("works", "classes", "class_gen")

    def __init__(self) -> None:
        self.works: dict[tuple, object] = {}
        self.classes: dict[str, Sequence] = {}
        self.class_gen: dict[str, int] = {}

    def apply(self, works, classes, gens, drops) -> None:
        self.works.update(works)
        self.classes.update(classes)
        self.class_gen.update(gens)
        for name in drops:
            self.classes.pop(name, None)
            self.class_gen.pop(name, None)


# Fork-transfer slot: set to the spawning runner's store immediately
# before each Process.start() and cleared right after, so every forked
# worker — initial or respawned — inherits exactly its own runner's
# current binding snapshot.  Single-threaded parents make this
# race-free, and per-runner stores make interleaved bound runners safe
# (each pool's workers only ever see their own runner's campaigns).
_FORK_STORE: "_BindingStore | None" = None


class _BindingError(Exception):
    """A chunk referenced a work or class generation its worker does
    not hold — a supervision-protocol bug, never retried."""


def _execute_chunk(engine_name: str, store: _BindingStore, task, action):
    """Run one chunk in a worker: resolve the work unit and fault
    slice (from the inherited binding or the message itself), apply
    any injected chaos, and evaluate against the worker's persistent
    context cache.  Returns ``(packed_verdicts, stats_delta)`` — the
    packed bitset pickles back to the parent at a few bytes per 8
    faults."""
    perform_chaos(action)
    if task[0] == "bound":
        _, key, class_name, gen, start, stop = task
        work = store.works.get(key)
        if work is None or store.class_gen.get(class_name) != gen:
            raise _BindingError(
                f"worker holds no binding for work {key[0]} / class "
                f"{class_name!r} at generation {gen} (bind diffs must "
                "precede the chunks that use them)"
            )
        faults = store.classes[class_name][start:stop]
    else:
        _, work, faults = task
    if action == "corrupt":
        # Evaluate a truncated slice: the result is a well-formed
        # verdict vector for the wrong number of faults, which is
        # exactly what the parent's integrity check must catch.
        faults = faults[:-1]
    if action == "error":
        raise RuntimeError("chaos: injected chunk failure")
    cache = _worker_cache(engine_name)
    ctx = cache.get(work)
    verdicts = work.run_class(cache.engine, faults, context=ctx.payload)
    return verdicts, cache.take_stats().as_dict()


def _worker_main(engine_name: str, conn) -> None:
    """Worker process loop: apply bind diffs, evaluate chunk leases,
    ship results (or picklable failure descriptions) back over the
    worker's private pipe.  Module-level so it pickles under both fork
    and spawn; under spawn the inherited store is empty and chunks
    arrive self-contained."""
    store = _FORK_STORE if _FORK_STORE is not None else _BindingStore()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "bind":
            store.apply(*message[1:])
            continue
        _, lease_index, attempt, task, action = message
        try:
            verdicts, stats = _execute_chunk(engine_name, store, task, action)
            reply = ("ok", lease_index, attempt, verdicts, stats)
        except _BindingError as error:
            reply = ("err", lease_index, attempt, False, str(error))
        except Exception as error:  # noqa: BLE001 - shipped to the parent
            reply = (
                "err",
                lease_index,
                attempt,
                True,
                f"{type(error).__name__}: {error}",
            )
        try:
            conn.send(reply)
        except (OSError, ValueError):
            return  # parent is gone; nothing left to report to


def shard_bounds(n_faults: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` chunk bounds.

    Sizes differ by at most one, larger chunks first; depends only on
    the arguments, so the shard layout is reproducible.
    """
    n_chunks = max(1, min(n_chunks, n_faults)) if n_faults else 0
    bounds = []
    start = 0
    for i in range(n_chunks):
        size = n_faults // n_chunks + (1 if i < n_faults % n_chunks else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _pool_context():
    """Prefer fork (cheap, inherits the engine registry and binding
    store); fall back to the platform default where fork does not
    exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class _Worker:
    """Parent-side handle of one supervised worker process: its
    process, its private duplex pipe, and the lease it currently
    holds (at most one — the supervisor is the scheduler)."""

    process: object
    conn: object
    id: int
    lease: "ChunkLease | None" = None


class _SupervisedPool:
    """A fixed-size set of supervised worker processes.

    One duplex pipe per worker — no shared queue a dying worker could
    corrupt — and at most one outstanding lease per worker, so the
    lease→worker mapping is exact and worker loss maps to a precise
    set of unacked leases.  :meth:`run_leases` is the supervisor loop:
    dispatch, wait on the busy pipes, collect, reap crashed and hung
    workers, re-dispatch with backoff, degrade what exhausts.
    """

    # Idle poll cap: pipe EOF wakes the wait() immediately on crashes,
    # so this only bounds how late a liveness edge case is noticed.
    _POLL_SECONDS = 0.2

    def __init__(
        self,
        jobs: int,
        mp_context,
        engine_name: str,
        store: _BindingStore,
        stats: FaultToleranceStats,
    ) -> None:
        self._jobs = jobs
        self._context = mp_context
        self._engine_name = engine_name
        self._store = store
        self._stats = stats
        self._workers: list[_Worker] = []
        self._next_id = 0
        try:
            for _ in range(jobs):
                self._workers.append(self._spawn())
        except Exception:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> _Worker:
        global _FORK_STORE
        _FORK_STORE = self._store
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main,
                args=(self._engine_name, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
        finally:
            _FORK_STORE = None
        worker = _Worker(process, parent_conn, self._next_id)
        self._next_id += 1
        return worker

    def _respawn(self) -> None:
        """Replace a lost worker; a failed respawn shrinks the pool
        (counted, and survivable down to in-process degradation)."""
        if len(self._workers) >= self._jobs:
            return
        try:
            self._workers.append(self._spawn())
            self._stats.respawns += 1
        except Exception:
            self._stats.pool_failures += 1

    def _discard(self, worker: _Worker, *, terminate: bool) -> None:
        self._workers = [w for w in self._workers if w is not worker]
        try:
            worker.conn.close()
        except Exception:
            pass
        try:
            if terminate and worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn child
                worker.process.kill()
                worker.process.join(timeout=1.0)
        except Exception:
            pass

    def close(self) -> None:
        """Stop every worker; never raises (teardown must not mask a
        campaign error or an interpreter-shutdown sequence)."""
        for worker in list(self._workers):
            try:
                worker.conn.send(("stop",))
            except Exception:
                pass
            self._discard(worker, terminate=True)
        self._workers = []

    @property
    def alive(self) -> bool:
        return bool(self._workers)

    def worker_pids(self) -> list[int]:
        """Live worker process ids (tests assert pool survival on
        re-bind through these)."""
        return [w.process.pid for w in self._workers]

    # -- binding -------------------------------------------------------
    def broadcast_bind(self, works, classes, gens, drops) -> None:
        """Push an incremental binding diff to every worker.  Pipes
        are FIFO, so the diff lands before any chunk that needs it; a
        worker that died while idle is replaced (and inherits the
        already-updated store wholesale at fork)."""
        for worker in list(self._workers):
            try:
                worker.conn.send(("bind", works, classes, gens, drops))
            except (OSError, ValueError):
                self._stats.crashes += 1
                self._discard(worker, terminate=True)
                self._respawn()

    # -- supervision ---------------------------------------------------
    def run_leases(
        self,
        leases: "list[ChunkLease]",
        *,
        retry: RetryPolicy,
        chaos: "FaultPlan | None",
        degrade: bool,
        run_inline: "Callable[[ChunkLease], object]",
    ) -> list:
        """Execute every lease to acknowledgement and return
        ``[(verdicts, stats_delta_or_None), ...]`` in lease order.

        Completion order never matters: results are keyed by lease
        index, so retries, respawns and degradations cannot perturb
        the deterministic merge.
        """
        results: dict[int, tuple] = {}
        pending: deque[ChunkLease] = deque(leases)
        try:
            while len(results) < len(leases):
                now = time.monotonic()
                self._dispatch(
                    pending, results, retry, chaos, degrade, run_inline, now
                )
                if len(results) >= len(leases):
                    break
                busy = [w for w in self._workers if w.lease is not None]
                if not busy:
                    if not pending:  # pragma: no cover - accounting guard
                        raise RuntimeError(
                            "lease accounting error: leases outstanding "
                            "but neither pending nor dispatched"
                        )
                    # Every pending lease is backing off (or the pool
                    # is gone, which _dispatch degrades next pass).
                    wait = min(
                        (lease.not_before for lease in pending),
                        default=now,
                    ) - now
                    if wait > 0:
                        time.sleep(min(wait, self._POLL_SECONDS))
                    continue
                timeout = self._poll_timeout(pending, busy, now)
                ready = mp_connection.wait(
                    [w.conn for w in busy], timeout=timeout
                )
                for conn in ready:
                    worker = next(
                        (w for w in self._workers if w.conn is conn), None
                    )
                    if worker is not None:
                        self._collect(
                            worker, results, pending, retry, degrade,
                            run_inline,
                        )
                self._reap(results, pending, retry, degrade, run_inline)
        finally:
            # A raising campaign (degrade=False, or a genuine error
            # resurfacing from an in-process degraded run) must not
            # leave workers computing abandoned leases: their late
            # results could collide with a future dispatch's
            # (index, attempt) tag, so replace those workers outright.
            # On the success path every lease was acked and this is a
            # no-op.
            for worker in list(self._workers):
                if worker.lease is not None:
                    worker.lease = None
                    self._discard(worker, terminate=True)
                    self._respawn()
        return [results[lease.index] for lease in leases]

    def _dispatch(
        self, pending, results, retry, chaos, degrade, run_inline, now
    ) -> None:
        while pending:
            if not self._workers:
                # No pool left at all: the remaining leases can only
                # run in-process (the jobs=1 degradation ladder rung).
                lease = pending.popleft()
                lease.last_error = lease.last_error or "worker pool lost"
                self._degrade(lease, results, degrade, run_inline)
                continue
            idle = next((w for w in self._workers if w.lease is None), None)
            if idle is None:
                return
            lease = self._next_ready(pending, now)
            if lease is None:
                return
            lease.attempt += 1
            action = (
                chaos.action_for(lease.class_name, lease.chunk, lease.attempt)
                if chaos is not None
                else None
            )
            if action is not None:
                self._stats.chaos_injected += 1
            lease.dispatched_at = now
            lease.deadline = (
                now + retry.timeout if retry.timeout is not None else None
            )
            try:
                idle.conn.send(
                    ("chunk", lease.index, lease.attempt, lease.task, action)
                )
            except (OSError, ValueError):
                # Died while idle: undo the attempt (it never ran),
                # replace the worker and let the loop re-dispatch.
                lease.attempt -= 1
                pending.appendleft(lease)
                self._stats.crashes += 1
                self._discard(idle, terminate=True)
                self._respawn()
                continue
            idle.lease = lease

    @staticmethod
    def _next_ready(pending, now) -> "ChunkLease | None":
        for _ in range(len(pending)):
            if pending[0].not_before <= now:
                return pending.popleft()
            pending.rotate(-1)
        return None

    def _poll_timeout(self, pending, busy, now) -> float:
        timeout = self._POLL_SECONDS
        for lease in pending:
            timeout = min(timeout, lease.not_before - now)
        for worker in busy:
            if worker.lease is not None and worker.lease.deadline is not None:
                timeout = min(timeout, worker.lease.deadline - now)
        return max(0.0, timeout)

    def _collect(
        self, worker, results, pending, retry, degrade, run_inline
    ) -> None:
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._on_death(worker, results, pending, retry, degrade, run_inline)
            return
        kind, lease_index, attempt = message[:3]
        lease = worker.lease
        if (
            lease is None
            or lease.index != lease_index
            or lease.attempt != attempt
        ):
            return  # stale result from a superseded attempt; drop it
        if kind == "ok":
            verdicts, stats = message[3:]
            if len(verdicts) != lease.n_faults:
                self._stats.corrupt_chunks += 1
                worker.lease = None
                self._retry_or_degrade(
                    lease,
                    f"corrupt chunk: {len(verdicts)} verdicts for "
                    f"{lease.n_faults} faults",
                    results, pending, retry, degrade, run_inline,
                )
                return
            worker.lease = None
            results[lease.index] = (verdicts, stats)
            return
        retryable, message_text = message[3:]
        worker.lease = None
        if not retryable:
            raise RuntimeError(message_text)
        self._stats.chunk_errors += 1
        self._retry_or_degrade(
            lease, message_text, results, pending, retry, degrade, run_inline
        )

    def _reap(self, results, pending, retry, degrade, run_inline) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            lease = worker.lease
            if not worker.process.is_alive():
                self._on_death(
                    worker, results, pending, retry, degrade, run_inline
                )
            elif (
                lease is not None
                and lease.deadline is not None
                and now > lease.deadline
            ):
                # Hung worker: only termination can reclaim the lease.
                self._stats.timeouts += 1
                worker.lease = None
                self._discard(worker, terminate=True)
                self._respawn()
                self._retry_or_degrade(
                    lease,
                    f"chunk deadline exceeded ({retry.timeout:.3f}s)",
                    results, pending, retry, degrade, run_inline,
                )

    def _on_death(
        self, worker, results, pending, retry, degrade, run_inline
    ) -> None:
        self._stats.crashes += 1
        lease = worker.lease
        worker.lease = None
        self._discard(worker, terminate=False)
        self._respawn()
        if lease is not None:
            self._retry_or_degrade(
                lease,
                f"worker crashed (exit code {worker.process.exitcode})",
                results, pending, retry, degrade, run_inline,
            )

    def _retry_or_degrade(
        self, lease, reason, results, pending, retry, degrade, run_inline
    ) -> None:
        now = time.monotonic()
        if lease.dispatched_at:
            self._stats.lost_seconds += max(0.0, now - lease.dispatched_at)
        lease.last_error = reason
        if lease.attempt >= retry.max_attempts:
            self._degrade(lease, results, degrade, run_inline)
            return
        self._stats.retries += 1
        lease.not_before = now + retry.backoff(lease.attempt)
        pending.append(lease)

    def _degrade(self, lease, results, degrade, run_inline) -> None:
        if not degrade:
            raise ChunkExhaustedError(
                f"{lease.describe()} failed after {lease.attempt} "
                f"attempt(s) with degradation disabled: {lease.last_error} "
                "(drop --no-degrade / pass degrade=True to run exhausted "
                "chunks in-process, or raise --max-retries)"
            )
        self._stats.degraded_chunks += 1
        results[lease.index] = (run_inline(lease), None)


class CampaignRunner:
    """Shards per-class fault lists across supervised worker processes.

    The pool is created lazily on the first class large enough to
    shard and reused for every subsequent class — and, through the
    incremental binding, every subsequent *campaign* — so worker
    startup **and** per-context construction are amortized across
    everything the runner executes.  Classes smaller than
    ``min_chunk * 2`` run inline through the runner's own context
    cache.

    Dispatched chunks are supervised leases: worker crashes, hangs
    past ``retry.timeout`` and corrupt results are retried up to
    ``retry.max_attempts`` times with exponential backoff on
    respawned workers, then degraded to in-process execution (set
    ``degrade=False`` to raise instead); the accounting is drained per
    campaign via :meth:`take_fault_stats`.  An optional *chaos* plan
    (:class:`~repro.engine.chaos.FaultPlan`) injects deterministic
    worker faults for tests and benchmarks.

    A runner is reusable: pass it to several ``run_campaign`` calls
    (e.g. one per oracle mode) via ``run_campaign(..., runner=...)``.
    Bind every mode's work unit up front —
    ``runner.bind([w1, w2, w3], universe)`` — and the pool, its
    workers and their warm context caches survive across the whole
    mixed-mode run; re-binding with a different universe or new works
    ships only the diff to the live workers (the pool is never
    restarted for a re-bind).
    """

    def __init__(
        self,
        engine: "str | Engine | None" = None,
        jobs: int = 1,
        *,
        chunks_per_job: int = 4,
        min_chunk: int = 64,
        max_contexts: int = 16,
        retry: "RetryPolicy | None" = None,
        chaos: "FaultPlan | None" = None,
        degrade: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.engine = get_engine(engine)
        # An unregistered engine instance cannot be rehydrated by name
        # in a worker; run it inline instead of crashing mid-campaign.
        self.jobs = jobs if self.engine.name in engine_names() else 1
        self.chunks_per_job = chunks_per_job
        self.min_chunk = min_chunk
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        self.degrade = degrade
        self._context = _pool_context()
        self._pool: "_SupervisedPool | None" = None
        self._pool_broken = False
        self._cache = ContextCache(self.engine, max_contexts)
        self._worker_stats = ContextStats()
        self._fault_stats = FaultToleranceStats()
        self._store = _BindingStore()
        self._generation = 0
        self._bound_refs: dict[str, Sequence] = {}

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool, drop the binding and the runner's own
        cached contexts (counters survive for a final take_stats).

        Idempotent and exception-safe: teardown failures — a pool
        whose workers already died, an interpreter mid-shutdown — are
        swallowed so ``close()`` in a ``finally`` (or ``__exit__``)
        never masks the error that got us here.
        """
        try:
            if self._pool is not None:
                self._pool.close()
        except Exception:
            pass
        finally:
            self._pool = None
            self._pool_broken = False
        try:
            self._store = _BindingStore()
            self._bound_refs = {}
            self._cache.clear()
        except Exception:
            pass

    # -- statistics ----------------------------------------------------
    def take_stats(self) -> ContextStats:
        """Context-cache counter increments since the previous call:
        the runner's inline cache plus every worker delta returned with
        the chunks in between.  ``run_campaign`` calls this once per
        campaign, so shared runners report per-campaign stats."""
        stats = self._worker_stats
        self._worker_stats = ContextStats()
        return stats.merge(self._cache.take_stats())

    def take_fault_stats(self) -> FaultToleranceStats:
        """Fault-tolerance counter increments since the previous call
        (retries, respawns, degradations, lost wall-clock) —
        ``run_campaign`` drains this into
        ``CampaignReport.fault_tolerance`` per campaign."""
        stats = self._fault_stats.copy()
        # Reset in place: the live pool keeps accounting into the same
        # object, so the drain must not swap it out from under it.
        self._fault_stats.reset()
        return stats

    # -- binding -------------------------------------------------------
    def bind(self, work, universe: "dict[str, Sequence[Fault]]") -> None:
        """Bind a campaign — or, given a sequence of work units, a
        whole mixed-mode run — so forked workers inherit the works and
        fault classes copy-on-write and chunks travel as bare
        ``(work_key, class, gen, start, stop)`` messages.

        Binding is **incremental**: re-binding the same works and
        universe is a no-op, and binding new works or changed classes
        while the pool is alive ships only the per-class diff to each
        worker over its pipe — the pool, its processes and their warm
        context caches survive every re-bind.  Respawned workers
        inherit the runner's full current store at fork, so diffs and
        respawns compose.  Without a fork-capable platform (or with
        ``jobs=1``) the binding is recorded for diffing only: chunks
        then carry their pickled work unit and fault list, which is
        merely slower, not wrong (contexts are still cached per
        worker).
        """
        if self.jobs == 1:
            # Inline execution has no pool to keep warm and never
            # consults the binding — its context cache survives any
            # re-bind on its own, so recording anything would only
            # cost the universe copy and per-campaign comparison.
            return
        works = list(work) if isinstance(work, (list, tuple)) else [work]
        # work_key embodies every field of a (frozen) work unit, so
        # key presence is value equality.
        works_diff = {
            work_key(w): w
            for w in works
            if work_key(w) not in self._store.works
        }
        classes_diff = {
            name: faults
            for name, faults in universe.items()
            if not self._class_matches(name, faults)
        }
        drops = [name for name in self._store.classes if name not in universe]
        if not works_diff and not classes_diff and not drops:
            return  # already bound — keep pool and warm caches
        self._generation += 1
        gens: dict[str, int] = {}
        normalized: dict[str, Sequence] = {}
        for name, faults in classes_diff.items():
            # Streaming FaultClass descriptors are bound as-is — they
            # are tiny, index-addressable and picklable, so workers
            # never need (and the parent never builds) a materialized
            # copy.
            normalized[name] = (
                faults if isinstance(faults, FaultClass) else list(faults)
            )
            gens[name] = self._generation
        self._store.works.update(works_diff)
        self._store.classes.update(normalized)
        self._store.class_gen.update(gens)
        for name in drops:
            del self._store.classes[name]
            del self._store.class_gen[name]
        # The caller's original per-class sequences, for the identity
        # short-circuit of the common same-universe re-bind.
        self._bound_refs = dict(universe)
        if self._pool is not None:
            self._pool.broadcast_bind(works_diff, normalized, gens, drops)

    def _class_matches(self, name: str, faults) -> bool:
        bound = self._store.classes.get(name)
        if bound is None:
            return False
        # Identity of the caller's sequences (the common case: one
        # universe object reused across modes) makes the re-bind check
        # O(classes); only genuinely new sequences pay the deep
        # element-wise comparison.  FaultClass descriptors compare by
        # enumeration spec — O(1), and never equal to a plain list, so
        # swapping representations re-binds the class (correct, merely
        # a one-class diff).
        if self._bound_refs.get(name) is faults:
            return True
        if isinstance(bound, FaultClass) or isinstance(faults, FaultClass):
            return bound == faults
        return len(bound) == len(faults) and bound == list(faults)

    @property
    def _use_bound(self) -> bool:
        return self._context.get_start_method() == "fork"

    # -- execution -----------------------------------------------------
    def detect_class(
        self,
        work,
        faults: "Sequence[Fault]",
        *,
        class_name: str | None = None,
    ) -> list[bool]:
        """Verdicts for one fault class as a plain per-fault list,
        bit-identical to ``work.run(engine, faults)`` executed
        sequentially (the packed pipeline, unpacked at the end)."""
        return self.detect_class_packed(
            work, faults, class_name=class_name
        ).tolist()

    def detect_class_packed(
        self,
        work,
        faults: "Sequence[Fault]",
        *,
        class_name: str | None = None,
    ) -> "PackedVerdicts | PackedPairVerdicts":
        """Packed verdict bitset for one fault class, bit-identical to
        ``work.run(engine, faults)`` executed sequentially.

        When *class_name* names a class of a prior :meth:`bind` (and
        the work unit was bound), the bound copies are what the workers
        evaluate — the zero-copy fork path.  Streaming
        :class:`~repro.memory.injection.FaultClass` descriptors always
        run inline: their class kernels answer the whole class in a few
        packed passes over state the workers would each have to rebuild,
        so sharding them would multiply the context work it saves.
        """
        key = work_key(work)
        bound = (
            self._use_bound
            and self.jobs > 1
            and class_name is not None
            and class_name in self._store.classes
            and key in self._store.works
        )
        if bound:
            faults = self._store.classes[class_name]
        elif not isinstance(faults, FaultClass):
            faults = list(faults)
        if (
            isinstance(faults, FaultClass)
            or self.jobs == 1
            or len(faults) < 2 * self.min_chunk
        ):
            return self._run_inline(work, faults)
        n_chunks = min(
            self.jobs * self.chunks_per_job,
            max(1, len(faults) // self.min_chunk),
        )
        bounds = shard_bounds(len(faults), n_chunks)
        if len(bounds) <= 1:
            return self._run_inline(work, faults)
        pool = self._ensure_pool()
        if pool is None:
            # Bottom rung of the degradation ladder: the pool cannot
            # be (re)built, so the whole class runs as if jobs=1.
            return self._run_inline(work, faults)
        leases = []
        for index, (start, stop) in enumerate(bounds):
            if bound:
                task = (
                    "bound",
                    key,
                    class_name,
                    self._store.class_gen[class_name],
                    start,
                    stop,
                )
            else:
                task = ("direct", work, faults[start:stop])
            leases.append(
                ChunkLease(index, task, class_name, index, start, stop)
            )

        def run_inline(lease: ChunkLease):
            chunk_faults = faults[lease.start:lease.stop]
            ctx = self._cache.get(work)
            return work.run_class(
                self.engine, chunk_faults, context=ctx.payload
            )

        parts = []
        for chunk_verdicts, stats in pool.run_leases(
            leases,
            retry=self.retry,
            chaos=self.chaos,
            degrade=self.degrade,
            run_inline=run_inline,
        ):
            parts.append(chunk_verdicts)
            if stats is not None:
                self._worker_stats.merge(stats)
        merged = type(parts[0]).concat(parts)
        if len(merged) != len(faults):
            raise RuntimeError(
                f"sharded class returned {len(merged)} verdicts for "
                f"{len(faults)} faults; refusing to report truncated coverage"
            )
        return merged

    def _run_inline(self, work, faults):
        ctx = self._cache.get(work)
        return work.run_class(self.engine, faults, context=ctx.payload)

    def _ensure_pool(self) -> "_SupervisedPool | None":
        if self._pool is not None:
            if self._pool.alive:
                return self._pool
            # All workers lost and respawns failed mid-run: retire the
            # dead pool and try to build a fresh one below.
            self._pool.close()
            self._pool = None
        if self._pool_broken:
            return None
        try:
            self._pool = _SupervisedPool(
                self.jobs,
                self._context,
                self.engine.name,
                self._store,
                self._fault_stats,
            )
        except Exception:
            # The fabric itself cannot come up (fork failures, fd
            # exhaustion): degrade this runner to inline execution for
            # its remaining lifetime instead of aborting campaigns.
            self._pool = None
            self._pool_broken = True
            self._fault_stats.pool_failures += 1
        return self._pool
