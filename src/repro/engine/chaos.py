"""Deterministic fault injection for the campaign execution fabric.

The repo simulates memory faults; this module injects faults into the
*simulator's own* execution fabric so the supervised runner
(:mod:`repro.engine.parallel`) can be tested — and benchmarked — under
worker loss, hangs and data corruption.  A :class:`FaultPlan` decides,
purely as a function of ``(class name, chunk ordinal, attempt)``,
whether a dispatched chunk is disturbed and how:

* ``crash`` — the worker process exits hard (``os._exit``) before
  touching the chunk, exactly like an OOM kill or segfault;
* ``hang`` — the worker sleeps far past any sane chunk deadline, so
  only the supervisor's lease timeout can reclaim it;
* ``corrupt`` — the worker returns a verdict vector for the *wrong*
  number of faults, exercising the parent's per-chunk integrity check;
* ``error`` — the chunk raises inside the worker (a "poisoned" chunk:
  with ``attempt=None`` it fails on every attempt and can only be
  recovered by in-process degradation).

Plans are deterministic by construction — explicit events match on
their fields, and seeded plans hash ``(seed, class, chunk, attempt)``
through CRC-32 rather than Python's per-process-salted ``hash`` — so a
chaos campaign is reproducible run to run and process to process, and
its recovered report can be asserted bit-identical to an undisturbed
one.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from dataclasses import dataclass

CHAOS_KINDS = ("crash", "hang", "corrupt", "error")

# How long an injected hang sleeps.  Long enough that only the lease
# deadline (RetryPolicy.timeout) ever reclaims the worker — a finite
# bound so a chaos plan without a timeout wedges one campaign, not the
# interpreter.
HANG_SECONDS = 600.0


def perform(action: str | None) -> None:
    """Carry out a pre-chunk disturbance inside a worker process.

    Only the *pre-execution* kinds are handled here — ``crash`` kills
    the process hard and ``hang`` sleeps past every sane lease
    deadline; ``corrupt`` and ``error`` need the chunk itself and stay
    with the executor.  Centralised so process-kill semantics live in
    exactly one module (the determinism lint forbids ``os._exit``
    anywhere else in the engine)."""
    if action == "crash":
        os._exit(13)
    if action == "hang":
        time.sleep(HANG_SECONDS)


@dataclass(frozen=True)
class ChaosEvent:
    """One planned disturbance of a dispatched chunk.

    ``class_name=None`` matches any fault class; ``attempt=None``
    matches every attempt (a chunk poisoned beyond retry), while the
    default ``attempt=1`` disturbs only the first dispatch so the
    retry recovers cleanly.
    """

    kind: str
    class_name: str | None = None
    chunk: int = 0
    attempt: int | None = 1

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of "
                f"{', '.join(CHAOS_KINDS)}"
            )
        if self.chunk < 0:
            raise ValueError("chunk ordinal must be >= 0")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError("attempt must be >= 1 (or None for all)")

    def matches(self, class_name: str | None, chunk: int, attempt: int) -> bool:
        return (
            (self.class_name is None or self.class_name == class_name)
            and self.chunk == chunk
            and (self.attempt is None or self.attempt == attempt)
        )


class FaultPlan:
    """A deterministic schedule of injected execution faults.

    Built from explicit :class:`ChaosEvent` entries, a seeded random
    rate, or both.  ``action_for(class_name, chunk, attempt)`` is the
    single decision point the supervisor consults at every dispatch;
    it is a pure function of its arguments (and the plan), so the same
    plan disturbs the same dispatches in every run.
    """

    def __init__(
        self,
        events: "tuple[ChaosEvent, ...] | list[ChaosEvent]" = (),
        *,
        seed: int | None = None,
        rate: float = 0.0,
        kinds: "tuple[str, ...]" = ("crash",),
    ) -> None:
        self.events = tuple(events)
        if seed is not None and not 0.0 <= rate <= 1.0:
            raise ValueError("seeded chaos rate must be within [0, 1]")
        unknown = [k for k in kinds if k not in CHAOS_KINDS]
        if unknown:
            raise ValueError(
                f"unknown chaos kinds: {', '.join(unknown)} "
                f"(expected a subset of {', '.join(CHAOS_KINDS)})"
            )
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float = 0.1,
        kinds: "tuple[str, ...]" = ("crash",),
    ) -> "FaultPlan":
        """A plan that disturbs roughly ``rate`` of all *first*
        dispatches, choosing kinds uniformly — deterministic per
        ``(seed, class, chunk)``, and never touching retries, so every
        injected fault is recoverable."""
        return cls(seed=seed, rate=rate, kinds=kinds)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the CLI chaos syntax.

        ``"crash:SAF:0,hang:TF:1"`` — comma-separated
        ``kind:class:chunk[:attempt|*]`` events (``*`` = every attempt,
        i.e. a poisoned chunk); or ``"seeded:SEED:RATE[:kind|kind]"``
        for a seeded random plan.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty chaos spec")
        if spec.startswith("seeded:"):
            parts = spec.split(":")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"seeded chaos spec {spec!r}; expected "
                    "'seeded:SEED:RATE[:kind|kind]'"
                )
            kinds = tuple(parts[3].split("|")) if len(parts) == 4 else ("crash",)
            try:
                return cls.seeded(int(parts[1]), float(parts[2]), kinds)
            except ValueError as error:
                raise ValueError(f"bad chaos spec {spec!r}: {error}") from None
        events = []
        for item in spec.split(","):
            parts = item.strip().split(":")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"chaos event {item.strip()!r}; expected "
                    "'kind:class:chunk[:attempt|*]'"
                )
            kind, class_name, chunk = parts[0], parts[1], parts[2]
            attempt: int | None = 1
            if len(parts) == 4:
                attempt = None if parts[3] == "*" else int(parts[3])
            try:
                events.append(
                    ChaosEvent(kind, class_name or None, int(chunk), attempt)
                )
            except ValueError as error:
                raise ValueError(f"bad chaos spec {item!r}: {error}") from None
        return cls(events)

    def action_for(
        self, class_name: str | None, chunk: int, attempt: int
    ) -> str | None:
        """The injected fault kind for this dispatch, or ``None``.

        Explicit events win over the seeded rate; seeded decisions
        hash through CRC-32 (never the salted builtin ``hash``) so
        they are stable across interpreter processes.
        """
        for event in self.events:
            if event.matches(class_name, chunk, attempt):
                return event.kind
        if self.seed is not None and attempt == 1:
            key = f"{self.seed}:{class_name}:{chunk}".encode()
            rng = random.Random(zlib.crc32(key))
            if rng.random() < self.rate:
                return self.kinds[rng.randrange(len(self.kinds))]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        seeded = (
            f", seed={self.seed}, rate={self.rate}, kinds={self.kinds}"
            if self.seed is not None
            else ""
        )
        return f"FaultPlan(events={self.events!r}{seeded})"
