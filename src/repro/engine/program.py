"""Compiled march-program IR.

A :class:`~repro.core.march.MarchTest` is symbolic: data expressions are
width-polymorphic masks, address orders are abstract, and derived-write
data flow is implicit in element structure.  Compiling against a word
width lowers all of that once, so engines never touch :class:`Mask`
resolution or :class:`Op` dispatch in their inner loops:

* every mask is resolved to a concrete integer;
* every address order becomes an ascending/descending descriptor;
* every content-relative write is linked to the read that feeds its
  XOR-derived data (the BIST datapath's data-flow edge), or flagged as
  underivable so engines can fail exactly like the interpreter.

Programs are immutable and cached per ``(test, width)`` — a campaign
re-running the same test over a million faults compiles once.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..core.element import AddressOrder
from ..core.march import MarchTest
from ..core.ops import Mask


@dataclass(frozen=True)
class ProgramOp:
    """One lowered march operation.

    ``mask`` is the data mask resolved at the program's width.  For a
    read, the expected fault-free value is ``snapshot[addr] ^ mask``
    when ``relative`` else ``mask``.  For a write, the stored value is
    ``mask`` (absolute), ``snapshot[addr] ^ mask`` (relative, oracle
    datapath) or ``last_read_raw ^ last_read_mask ^ mask`` (relative,
    operational derived datapath).  ``derive_from`` is the data-flow
    link of that last case: the index *within the element* of the most
    recent preceding read, or ``None`` when no read precedes (executing
    such a write with derived semantics is an :class:`ExecutionError`).
    """

    index: int
    is_read: bool
    relative: bool
    mask: int
    derive_from: int | None
    label: str

    @property
    def is_write(self) -> bool:
        return not self.is_read


@dataclass(frozen=True)
class ProgramElement:
    """One lowered march element: an address sweep over an op block.

    ``steps`` repeats the op fields as bare tuples
    ``(is_read, relative, mask, derivable)`` — the engines' hot loops
    iterate these to avoid attribute lookups.
    """

    index: int
    descending: bool
    ops: tuple[ProgramOp, ...]
    steps: tuple[tuple[bool, bool, int, bool], ...]

    def addresses(self, n_words: int) -> range:
        if self.descending:
            return range(n_words - 1, -1, -1)
        return range(n_words)

    @property
    def n_reads(self) -> int:
        return sum(1 for op in self.ops if op.is_read)

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class MarchProgram:
    """A march test lowered against a concrete word width."""

    name: str
    width: int
    word_mask: int
    elements: tuple[ProgramElement, ...]

    def __iter__(self) -> Iterator[ProgramElement]:
        return iter(self.elements)

    @property
    def op_count(self) -> int:
        """Operations applied per address (the ``N`` of complexity
        formulas)."""
        return sum(len(e) for e in self.elements)

    @property
    def n_reads(self) -> int:
        return sum(e.n_reads for e in self.elements)

    @property
    def derivable(self) -> bool:
        """True when every relative write has a feeding read, i.e. the
        program is executable with the operational derived-write
        datapath."""
        return all(
            op.derive_from is not None
            for e in self.elements
            for op in e.ops
            if op.is_write and op.relative
        )

    def flat_steps(self) -> list[tuple[bool, bool, int, bool]]:
        """The per-address op sequence, concatenated across elements.

        Valid for analyses that do not depend on cross-address
        interleaving (single-word-confined fault evaluation).
        """
        return [step for e in self.elements for step in e.steps]


def _compile(test: MarchTest, width: int) -> MarchProgram:
    elements = []
    for ei, element in enumerate(test.elements):
        ops = []
        steps = []
        last_read: int | None = None
        for oi, op in enumerate(element.ops):
            mask = op.data.mask.resolve(width)
            if op.is_read:
                derive_from: int | None = None
                last_read = oi
            else:
                derive_from = last_read
            ops.append(
                ProgramOp(oi, op.is_read, op.is_relative, mask, derive_from, str(op))
            )
            derivable = op.is_read or not op.is_relative or derive_from is not None
            steps.append((op.is_read, op.is_relative, mask, derivable))
        elements.append(
            ProgramElement(
                ei,
                element.order is AddressOrder.DOWN,
                tuple(ops),
                tuple(steps),
            )
        )
    return MarchProgram(test.name, width, (1 << width) - 1, tuple(elements))


@functools.lru_cache(maxsize=512)
def _compile_cached(test: MarchTest, width: int) -> MarchProgram:
    return _compile(test, width)


def compile_march(test: MarchTest, width: int) -> MarchProgram:
    """Lower *test* to a :class:`MarchProgram` at *width* (cached)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return _compile_cached(test, width)


# ---------------------------------------------------------------------------
# Symbolic (width-unresolved) programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolicElement:
    """One march element with *unresolved* data masks.

    ``steps`` mirrors :attr:`ProgramElement.steps` except that the data
    mask stays a width-polymorphic :class:`~repro.core.ops.Mask`:
    ``(is_read, relative, mask, derivable)``.
    """

    index: int
    descending: bool
    steps: tuple[tuple[bool, bool, Mask, bool], ...]

    @property
    def n_reads(self) -> int:
        return sum(1 for is_read, _, _, _ in self.steps if is_read)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class SymbolicProgram:
    """A march test lowered against *no* width at all.

    The IR the width-generic symbolic engine consumes: the element /
    derive-link structure of :class:`MarchProgram`, with every data
    mask kept as a :class:`~repro.core.ops.Mask` whose per-bit values
    are width-independent (``Mask.bit_at``).  ``at_width`` recovers the
    ordinary concrete program for cross-checking.
    """

    name: str
    elements: tuple[SymbolicElement, ...]
    test: MarchTest = field(compare=False)

    def __iter__(self) -> Iterator[SymbolicElement]:
        return iter(self.elements)

    @property
    def op_count(self) -> int:
        return sum(len(e) for e in self.elements)

    @property
    def n_reads(self) -> int:
        return sum(e.n_reads for e in self.elements)

    @property
    def derivable(self) -> bool:
        """True when every relative write has a feeding read (same
        contract as :attr:`MarchProgram.derivable`)."""
        return all(
            derivable for e in self.elements for _, _, _, derivable in e.steps
        )

    @property
    def min_width(self) -> int:
        """Smallest word width every mask of the program resolves at
        (``bit(j)`` patterns need ``width > j``; everything else fits
        any width)."""
        return max(
            (mask.min_width for e in self.elements for _, _, mask, _ in e.steps),
            default=1,
        )

    def at_width(self, width: int) -> MarchProgram:
        """The concrete :class:`MarchProgram` of the same test."""
        return compile_march(self.test, width)

    def bit_plan(
        self, position: int
    ) -> tuple[tuple[tuple[bool, bool, int, bool], ...], ...]:
        """Per-element step tuples with the mask reduced to its bit at
        *position* — the width-generic single-bit view of the program
        (cached per position)."""
        return _bit_plan(self, position)

    def bit_signature(self, position: int) -> tuple[int, ...]:
        """The flattened tuple of every step mask's bit at *position*.

        Two positions with equal signatures are indistinguishable to
        the program, so any per-bit fault evaluation can be shared
        between them (cached per position).
        """
        return _bit_signature(self, position)


@functools.lru_cache(maxsize=4096)
def _bit_plan(program: SymbolicProgram, position: int):
    return tuple(
        tuple(
            (is_read, relative, mask.bit_at(position), derivable)
            for is_read, relative, mask, derivable in element.steps
        )
        for element in program.elements
    )


@functools.lru_cache(maxsize=4096)
def _bit_signature(program: SymbolicProgram, position: int) -> tuple[int, ...]:
    return tuple(
        mask.bit_at(position)
        for element in program.elements
        for _, _, mask, _ in element.steps
    )


@functools.lru_cache(maxsize=256)
def compile_symbolic(test: MarchTest) -> SymbolicProgram:
    """Lower *test* to a :class:`SymbolicProgram` (cached).

    The lowering mirrors :func:`compile_march` — address orders become
    descriptors and derived writes get their data-flow link — but the
    data masks stay symbolic, so the one program stands for every word
    width at once.
    """
    elements = []
    for ei, element in enumerate(test.elements):
        steps = []
        saw_read = False
        for op in element.ops:
            if op.is_read:
                saw_read = True
            derivable = op.is_read or not op.is_relative or saw_read
            steps.append((op.is_read, op.is_relative, op.data.mask, derivable))
        elements.append(
            SymbolicElement(ei, element.order is AddressOrder.DOWN, tuple(steps))
        )
    return SymbolicProgram(test.name, tuple(elements), test)


def pack_words(words: Sequence[int], width: int) -> int:
    """Pack a word list into one big integer, address-major.

    Bit ``addr * width + bit`` of the result is bit ``bit`` of
    ``words[addr]`` — the bit-plane layout the batch engine's
    word-parallel evaluation operates on.

    Combined pairwise (divide and conquer) so megaword memories pack in
    O(n log n) big-int bit work; the naive ``|= word << (addr*width)``
    accumulation re-touches the whole accumulator per word, which is
    quadratic and dominates context construction at n_words >= 2**20.
    """
    chunks = list(words)
    if not chunks:
        return 0
    span = width
    while len(chunks) > 1:
        paired = [
            chunks[i] | (chunks[i + 1] << span)
            for i in range(0, len(chunks) - 1, 2)
        ]
        if len(chunks) % 2:
            paired.append(chunks[-1])
        chunks = paired
        span *= 2
    return chunks[0]


def replicate_mask(mask: int, n_words: int, width: int) -> int:
    """Replicate a *width*-bit mask across *n_words* packed lanes."""
    if n_words == 1:
        return mask
    repunit = ((1 << (n_words * width)) - 1) // ((1 << width) - 1)
    return mask * repunit
