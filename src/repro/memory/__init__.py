"""Word-oriented memory model, fault models, and fault injection."""

from .faults import (
    FAULT_KINDS,
    AddressDecoderFault,
    Cell,
    CouplingFault,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from .injection import (
    FaultyMemory,
    all_cells,
    enumerate_address_faults,
    enumerate_inter_word_cf,
    enumerate_intra_word_cf,
    enumerate_read_disturb,
    enumerate_stuck_at,
    enumerate_transition,
    standard_fault_universe,
)
from .model import Memory, words_equal
from .traces import AccessEvent, TraceRecorder

__all__ = [
    "AccessEvent",
    "AddressDecoderFault",
    "Cell",
    "CouplingFault",
    "FAULT_KINDS",
    "Fault",
    "FaultyMemory",
    "IdempotentCouplingFault",
    "InversionCouplingFault",
    "Memory",
    "ReadDisturbFault",
    "StateCouplingFault",
    "StuckAtFault",
    "TraceRecorder",
    "TransitionFault",
    "all_cells",
    "enumerate_address_faults",
    "enumerate_inter_word_cf",
    "enumerate_intra_word_cf",
    "enumerate_read_disturb",
    "enumerate_stuck_at",
    "enumerate_transition",
    "standard_fault_universe",
    "words_equal",
]
