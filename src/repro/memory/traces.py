"""Access-trace recording for memory models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol


@dataclass(frozen=True)
class AccessEvent:
    """One memory access: ``kind`` is ``"r"`` or ``"w"``."""

    kind: str
    addr: int
    value: int

    def __str__(self) -> str:
        return f"{self.kind}[{self.addr}]={self.value:#x}"


class Observer(Protocol):
    """Anything that can receive :class:`AccessEvent` notifications."""

    def notify(self, event: AccessEvent) -> None: ...


@dataclass
class TraceRecorder:
    """Observer that stores every access event in order."""

    events: list[AccessEvent] = field(default_factory=list)

    def notify(self, event: AccessEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    @property
    def reads(self) -> list[AccessEvent]:
        return [e for e in self.events if e.kind == "r"]

    @property
    def writes(self) -> list[AccessEvent]:
        return [e for e in self.events if e.kind == "w"]

    def __len__(self) -> int:
        return len(self.events)
