"""Functional model of a word-oriented random-access memory.

The simulator is cycle-less: reads and writes are atomic functional
operations, which is the right abstraction level for March-test theory
(operation counts and functional fault coverage are fully determined by
this model).  Observers can be attached to record access traces; the
fault-injecting variant lives in :mod:`repro.memory.injection`.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .traces import AccessEvent, Observer


class Memory:
    """An ``n_words`` x ``width`` RAM with observer hooks."""

    def __init__(self, n_words: int, width: int, fill: int = 0) -> None:
        if n_words < 1:
            raise ValueError("memory needs at least one word")
        if width < 1:
            raise ValueError("word width must be >= 1")
        self.n_words = n_words
        self.width = width
        self._mask = (1 << width) - 1
        self._words = [fill & self._mask] * n_words
        self._observers: list[Observer] = []
        self.read_count = 0
        self.write_count = 0

    # -- size ------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_words

    @property
    def word_mask(self) -> int:
        return self._mask

    # -- access ----------------------------------------------------------
    def read(self, addr: int) -> int:
        self._check_addr(addr)
        value = self._fetch(addr)
        self.read_count += 1
        if self._observers:
            for obs in self._observers:
                obs.notify(AccessEvent("r", addr, value))
        return value

    def write(self, addr: int, value: int) -> None:
        self._check_addr(addr)
        value &= self._mask
        self._store(addr, value)
        self.write_count += 1
        if self._observers:
            for obs in self._observers:
                obs.notify(AccessEvent("w", addr, value))

    # Internal storage primitives; the fault-injecting subclass overrides
    # these, so observers always see the *requested* access while the
    # stored data reflects fault effects.
    def _fetch(self, addr: int) -> int:
        return self._words[addr]

    def _store(self, addr: int, value: int) -> None:
        self._words[addr] = value

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.n_words:
            raise IndexError(f"address {addr} out of range [0, {self.n_words})")

    # -- bulk content ------------------------------------------------------
    def load(self, words: Sequence[int]) -> None:
        """Replace the entire content (bypasses fault write semantics,
        then re-applies static fault conditions in faulty subclasses)."""
        if len(words) != self.n_words:
            raise ValueError(
                f"expected {self.n_words} words, got {len(words)}"
            )
        self._words = [w & self._mask for w in words]
        self._after_load()

    def fill(self, value: int) -> None:
        self.load([value] * self.n_words)

    def randomize(self, rng: random.Random) -> None:
        """Fill with pseudo-random content (models arbitrary user data)."""
        self.load([rng.randrange(1 << self.width) for _ in range(self.n_words)])

    def snapshot(self) -> list[int]:
        """A copy of the current content."""
        return list(self._words)

    def _after_load(self) -> None:
        """Hook for subclasses to re-establish static fault conditions."""

    # -- cell-level helpers -------------------------------------------------
    def get_bit(self, addr: int, bit: int) -> int:
        self._check_addr(addr)
        self._check_bit(bit)
        return (self._words[addr] >> bit) & 1

    def _check_bit(self, bit: int) -> None:
        if not 0 <= bit < self.width:
            raise IndexError(f"bit {bit} out of range [0, {self.width})")

    # -- observers -----------------------------------------------------------
    def attach(self, observer: Observer) -> None:
        self._observers.append(observer)

    def detach(self, observer: Observer) -> None:
        self._observers.remove(observer)

    # -- misc ------------------------------------------------------------------
    def reset_counters(self) -> None:
        self.read_count = 0
        self.write_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Memory({self.n_words}x{self.width})"


def words_equal(a: Iterable[int], b: Iterable[int]) -> bool:
    """Element-wise equality of two content snapshots."""
    return list(a) == list(b)
